//! The remote scrape plane: one reflective port a collector dials over
//! the ORB wire to pull everything observable out of a live process.
//!
//! The monitor port ([`crate::monitor`]) answers a composition tool's
//! questions about *structure* — instances, wiring, metrics. The
//! observability port answers an operator's questions about *behaviour at
//! a distance*: the trace ring (non-consuming, so a scrape never steals
//! events from a local observer), the flight-recorder inventory, the
//! resilience counters, and the tracing gate itself — togglable remotely,
//! so a collector can light up tracing on a misbehaving process, scrape a
//! window, and turn it back off. [`Framework::install_observability`]
//! both installs the component *and* exports its port under
//! [`OBSERVABILITY_EXPORT_KEY`], so a single `serve_tcp`/`serve_tcp_mux`
//! call afterwards puts the scrape plane on the network over the very
//! transports the components themselves use.

use crate::framework::Framework;
use crate::monitor::MonitorPort;
use cca_core::{CcaError, CcaServices, Component};
use cca_sidl::{DynObject, DynValue, SidlError};
use std::sync::Arc;

/// The SIDL type of the scrape port.
pub const OBSERVABILITY_PORT_TYPE: &str = "cca.ports.ObservabilityPort";

/// Default instance name [`Framework::install_observability`] registers
/// under.
pub const OBSERVABILITY_INSTANCE: &str = "cca-observability";

/// ORB key the scrape port is exported under —
/// `"{OBSERVABILITY_INSTANCE}/observability"`. A remote collector reaches
/// it with `ObjRef::new(OBSERVABILITY_EXPORT_KEY, transport)`.
pub const OBSERVABILITY_EXPORT_KEY: &str = "cca-observability/observability";

/// SIDL declaration of the scrape interface, deposited into the
/// repository by [`Framework::install_observability`] so reflective
/// callers can `invoke_checked` against real metadata.
pub const OBSERVABILITY_SIDL: &str = "
package cca.ports {
    // Remote scrape plane: everything observable in one process, pulled
    // over the wire through dynamic invocation alone.
    interface ObservabilityPort {
        // {\"tracing\":…,\"counters\":…,\"flight\":{…},\"metrics\":{…},
        //  \"resilience\":{…}} — one self-describing scrape.
        string snapshotJson();
        // Non-consuming trace-ring snapshot as JSON Lines (same format
        // the flight recorder and Perfetto merge consume).
        string traceJsonl();
        // {\"enabled\":…,\"incidents\":[…]} — flight-recorder inventory.
        string flightJson();
        // Global resilience counters plus live breaker states.
        string resilienceJson();
        // Flip the span tracer at runtime, from across the network.
        void setTracing(in bool on);
    }
}
";

fn js(s: &str) -> String {
    cca_obs::trace::escape_json(s)
}

/// The scrape port object. Structure queries delegate to an internal
/// [`MonitorPort`] (same weak-reference discipline: the port never keeps
/// its framework alive); behaviour queries read the process-global
/// tracer, flight recorder, and resilience counters directly.
pub struct ObservabilityPort {
    monitor: Arc<MonitorPort>,
}

impl ObservabilityPort {
    /// Creates a scrape port watching `framework`.
    pub fn new(framework: &Arc<Framework>) -> Arc<Self> {
        Arc::new(ObservabilityPort {
            monitor: MonitorPort::new(framework),
        })
    }

    /// One self-describing scrape: flag gates, flight inventory,
    /// per-instance port metrics, resilience counters, and the
    /// repository's deposit/lookup/discovery counters.
    pub fn snapshot_json(&self) -> Result<String, SidlError> {
        Ok(format!(
            "{{\"tracing\":{},\"counters\":{},\"flight\":{},\"metrics\":{},\"resilience\":{},\
             \"repo\":{}}}",
            cca_obs::tracing_enabled(),
            cca_obs::counters_enabled(),
            self.flight_json(),
            self.monitor.metrics_json()?,
            self.monitor.resilience_json()?,
            cca_obs::repo().snapshot().to_json(),
        ))
    }

    /// The trace ring as JSON Lines, **without consuming it** — local
    /// drains (flight recorder, monitor) still see every event.
    pub fn trace_jsonl(&self) -> String {
        cca_obs::to_jsonl(&cca_obs::snapshot())
    }

    /// Flight-recorder inventory: whether it is armed and which incident
    /// files this process currently retains.
    pub fn flight_json(&self) -> String {
        let incidents: Vec<String> = cca_obs::flight::incidents()
            .iter()
            .map(|p| format!("\"{}\"", js(&p.display().to_string())))
            .collect();
        format!(
            "{{\"enabled\":{},\"incidents\":[{}]}}",
            cca_obs::flight::enabled(),
            incidents.join(",")
        )
    }
}

impl DynObject for ObservabilityPort {
    fn sidl_type(&self) -> &str {
        OBSERVABILITY_PORT_TYPE
    }

    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "snapshotJson" => Ok(DynValue::Str(self.snapshot_json()?)),
            "traceJsonl" => Ok(DynValue::Str(self.trace_jsonl())),
            "flightJson" => Ok(DynValue::Str(self.flight_json())),
            "resilienceJson" => Ok(DynValue::Str(self.monitor.resilience_json()?)),
            "setTracing" => {
                let on = args
                    .first()
                    .ok_or_else(|| SidlError::invoke("setTracing needs (on)"))?
                    .as_bool()?;
                cca_obs::set_tracing(on);
                Ok(DynValue::Void)
            }
            other => Err(SidlError::invoke(format!(
                "{OBSERVABILITY_PORT_TYPE} has no method '{other}'"
            ))),
        }
    }
}

/// The component wrapper providing the scrape port (instance name
/// [`OBSERVABILITY_INSTANCE`], port name `"observability"`).
pub struct ObservabilityComponent {
    port: Arc<ObservabilityPort>,
}

impl Component for ObservabilityComponent {
    fn component_type(&self) -> &str {
        "cca.ObservabilityComponent"
    }

    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let dynamic: Arc<dyn DynObject> = Arc::clone(&self.port) as Arc<dyn DynObject>;
        services.add_provides_port(
            cca_core::PortHandle::new(
                "observability",
                OBSERVABILITY_PORT_TYPE,
                Arc::clone(&dynamic),
            )
            .with_dynamic(dynamic),
        )
    }
}

impl Framework {
    /// Installs the scrape plane: deposits [`OBSERVABILITY_SIDL`] into the
    /// repository (idempotently), adds an [`ObservabilityComponent`]
    /// instance named [`OBSERVABILITY_INSTANCE`], and exports its port
    /// under [`OBSERVABILITY_EXPORT_KEY`] so the next
    /// [`serve_tcp`](Framework::serve_tcp) /
    /// [`serve_tcp_mux`](Framework::serve_tcp_mux) call makes the process
    /// remotely scrapeable.
    ///
    /// Returns the port object for in-process callers.
    pub fn install_observability(self: &Arc<Self>) -> Result<Arc<ObservabilityPort>, CcaError> {
        let known = self
            .repository()
            .with_catalog(|c| c.reflection().type_info(OBSERVABILITY_PORT_TYPE).is_some());
        if !known {
            self.repository()
                .deposit_sidl(OBSERVABILITY_SIDL)
                .map_err(|e| CcaError::Framework(format!("observability SIDL rejected: {e}")))?;
        }
        let port = ObservabilityPort::new(self);
        self.add_instance(
            OBSERVABILITY_INSTANCE,
            Arc::new(ObservabilityComponent {
                port: Arc::clone(&port),
            }),
        )?;
        let key = self.export_port(OBSERVABILITY_INSTANCE, "observability")?;
        debug_assert_eq!(key, OBSERVABILITY_EXPORT_KEY);
        Ok(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::PortHandle;
    use cca_data::TypeMap;
    use cca_repository::Repository;
    use cca_sidl::{compile, invoke_checked, Reflection};

    // The scrape tests never call through the port; a marker trait is
    // enough to give the provider a typed provides slot.
    trait Echo: Send + Sync {}
    struct E;
    impl Echo for E {}
    struct Provider;
    impl Component for Provider {
        fn component_type(&self) -> &str {
            "t.Provider"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            let port: Arc<dyn Echo> = Arc::new(E);
            s.add_provides_port(PortHandle::new("out", "t.Echo", port))
        }
    }
    struct User;
    impl Component for User {
        fn component_type(&self) -> &str {
            "t.User"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            s.register_uses_port("in", "t.Echo", TypeMap::new())
        }
    }

    fn wired_framework() -> Arc<Framework> {
        let fw = Framework::new(Repository::new());
        fw.add_instance("p0", Arc::new(Provider)).unwrap();
        fw.add_instance("u0", Arc::new(User)).unwrap();
        fw.connect("u0", "in", "p0", "out").unwrap();
        fw
    }

    #[test]
    fn install_registers_exports_and_scrapes() {
        let fw = wired_framework();
        let obs = fw.install_observability().unwrap();
        // Installed and exported in one step.
        assert!(fw
            .orb()
            .keys()
            .contains(&OBSERVABILITY_EXPORT_KEY.to_string()));
        // Second install fails on the duplicate instance, not the SIDL.
        assert!(matches!(
            fw.install_observability(),
            Err(CcaError::ComponentAlreadyExists(_))
        ));
        let snap = obs.snapshot_json().unwrap();
        assert!(snap.contains("\"tracing\":"), "{snap}");
        assert!(snap.contains("\"flight\":{\"enabled\":"), "{snap}");
        assert!(snap.contains("\"u0\""), "{snap}");
        assert!(snap.contains("\"resilience\":{"), "{snap}");
        assert!(snap.contains("\"repo\":{\"deposits\""), "{snap}");
    }

    #[test]
    fn scrape_is_reachable_through_deposited_reflection() {
        let fw = wired_framework();
        fw.install_observability().unwrap();
        let handle = fw
            .services(OBSERVABILITY_INSTANCE)
            .unwrap()
            .get_provides_port("observability")
            .unwrap();
        let target = handle.dynamic().unwrap();
        let reflection = Reflection::from_model(&compile(OBSERVABILITY_SIDL).unwrap());
        let info = reflection.type_info(OBSERVABILITY_PORT_TYPE).unwrap();

        let r = invoke_checked(&**target, info.method("snapshotJson").unwrap(), vec![]).unwrap();
        assert!(r.as_str().unwrap().contains("\"metrics\""));
        let r = invoke_checked(&**target, info.method("flightJson").unwrap(), vec![]).unwrap();
        assert!(r.as_str().unwrap().contains("\"incidents\""));
        // Arity checking comes from the deposited metadata.
        assert!(invoke_checked(&**target, info.method("setTracing").unwrap(), vec![]).is_err());
    }

    #[test]
    fn trace_scrape_does_not_consume_the_ring() {
        let fw = wired_framework();
        let obs = fw.install_observability().unwrap();
        obs.invoke("setTracing", vec![DynValue::Bool(true)])
            .unwrap();
        cca_obs::trace_instant("scrape-me");
        let first = obs.trace_jsonl();
        let second = obs.trace_jsonl();
        obs.invoke("setTracing", vec![DynValue::Bool(false)])
            .unwrap();
        cca_obs::drain();
        assert!(first.contains("\"scrape-me\""), "{first}");
        assert!(
            second.contains("\"scrape-me\""),
            "second scrape still sees it"
        );
    }

    #[test]
    fn unknown_method_and_bad_args_error() {
        let fw = wired_framework();
        let obs = fw.install_observability().unwrap();
        assert!(obs.invoke("selfDestruct", vec![]).is_err());
        assert!(obs.invoke("setTracing", vec![]).is_err());
        assert!(obs.invoke("setTracing", vec![DynValue::Long(1)]).is_err());
    }
}
