//! The reference framework: instances, services, builder API.

use crate::collective::PlanCache;
use crate::connect::{ConnectionInfo, ConnectionPolicy};
use crate::event::EventService;
use cca_core::component::GO_PORT_TYPE;
use cca_core::event::SharedListener;
use cca_core::{CcaError, CcaServices, Component, ConfigEvent, GoPort};
use cca_repository::Repository;
use cca_rpc::Orb;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, Weak};

/// One live component instance.
#[derive(Clone)]
pub(crate) struct Instance {
    pub(crate) class: String,
    pub(crate) component: Arc<dyn Component>,
    pub(crate) services: Arc<CcaServices>,
}

/// The CCA-compliant reference framework.
///
/// Holds the component instances of one "scenario" (application assembly),
/// their services handles, the connection table, the builder-event
/// listeners, and an embedded ORB used for proxied connections.
pub struct Framework {
    repository: Arc<Repository>,
    pub(crate) orb: Arc<Orb>,
    pub(crate) instances: RwLock<BTreeMap<String, Instance>>,
    pub(crate) connections: RwLock<Vec<ConnectionInfo>>,
    listeners: RwLock<Vec<SharedListener>>,
    pub(crate) default_policy: ConnectionPolicy,
    /// Compliance flavors this framework offers (§4: "the CCA standard
    /// will allow different flavors of compliance; each component will
    /// specify a minimum flavor of compliance required of a framework").
    flavors: Vec<String>,
    /// Shared M×N redistribution-plan cache: every collective port built
    /// through this framework reuses plans keyed by descriptor pair.
    plan_cache: Arc<PlanCache>,
    /// The topic-based event service. Configuration events are published
    /// here (topics `cca.config.*`) in addition to the typed
    /// [`ConfigListener`](cca_core::event::ConfigListener) path, so
    /// monitors get the registration-order delivery guarantee.
    events: Arc<EventService>,
    /// Self-reference so `&self` methods can hand long-lived callbacks
    /// (breaker observers) a way back to `emit` without keeping the
    /// framework alive.
    pub(crate) myself: Weak<Framework>,
}

impl Framework {
    /// Creates a framework over a repository with direct connections by
    /// default (the high-performance configuration).
    pub fn new(repository: Arc<Repository>) -> Arc<Self> {
        Self::with_policy(repository, ConnectionPolicy::Direct)
    }

    /// Creates a framework with an explicit default connection policy.
    pub fn with_policy(repository: Arc<Repository>, policy: ConnectionPolicy) -> Arc<Self> {
        // Honor CCA_TRACE / CCA_METRICS so observability can be switched on
        // for any framework-hosted run without code changes.
        cca_obs::init_from_env();
        Arc::new_cyclic(|myself| Framework {
            repository,
            orb: Orb::new(),
            instances: RwLock::new(BTreeMap::new()),
            connections: RwLock::new(Vec::new()),
            listeners: RwLock::new(Vec::new()),
            default_policy: policy,
            // The reference framework supports both interaction styles.
            flavors: vec!["in-process".to_string(), "distributed".to_string()],
            plan_cache: Arc::new(PlanCache::new()),
            events: EventService::new(),
            myself: Weak::clone(myself),
        })
    }

    /// The framework-wide redistribution-plan cache. Pass it to
    /// [`crate::MxNPort::with_cache`] so identically distributed couplings
    /// share one plan across components and timesteps.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// The compliance flavors this framework provides.
    pub fn flavors(&self) -> &[String] {
        &self.flavors
    }

    /// The backing repository.
    pub fn repository(&self) -> &Arc<Repository> {
        &self.repository
    }

    /// The framework's embedded ORB (inspectable for tests/monitoring).
    pub fn orb(&self) -> &Arc<Orb> {
        &self.orb
    }

    /// Subscribes a builder/monitor to configuration events.
    pub fn add_listener(&self, listener: SharedListener) {
        self.listeners.write().push(listener);
    }

    /// The framework's topic-based event service. Configuration events are
    /// republished here under `cca.config.*` topics (payload =
    /// [`ConfigEvent::to_typemap`]) with the service's deterministic
    /// registration-order delivery; components may publish their own
    /// topics alongside.
    pub fn event_service(&self) -> &Arc<EventService> {
        &self.events
    }

    pub(crate) fn emit(&self, event: ConfigEvent) {
        cca_obs::trace_instant(event.topic());
        for l in self.listeners.read().iter() {
            l.on_event(&event);
        }
        self.events.publish(event.topic(), &event.to_typemap());
    }

    /// Instantiates a component from the repository under an instance name
    /// and calls its `setServices` (the paper's component-creation
    /// service). If the repository entry declares a required compliance
    /// flavor (`properties["requiresFlavor"]`), the framework must offer
    /// it — §4's minimum-flavor check.
    pub fn create_instance(&self, name: impl Into<String>, class: &str) -> Result<(), CcaError> {
        let entry = self.repository.entry(class)?;
        let required = entry.properties.get_string("requiresFlavor", String::new());
        if !required.is_empty() && !self.flavors.iter().any(|f| f == &required) {
            return Err(CcaError::Framework(format!(
                "component '{class}' requires framework flavor '{required}', but this                  framework offers {:?}",
                self.flavors
            )));
        }
        let component = entry.factory.create();
        self.add_instance(name, component)
    }

    /// Adds an externally constructed component instance (components not
    /// registered in the repository, e.g. ad-hoc test drivers).
    pub fn add_instance(
        &self,
        name: impl Into<String>,
        component: Arc<dyn Component>,
    ) -> Result<(), CcaError> {
        let name = name.into();
        {
            let mut instances = self.instances.write();
            if instances.contains_key(&name) {
                return Err(CcaError::ComponentAlreadyExists(name));
            }
            let services = CcaServices::new(name.clone());
            component.set_services(Arc::clone(&services))?;
            instances.insert(
                name.clone(),
                Instance {
                    class: component.component_type().to_string(),
                    component,
                    services,
                },
            );
        }
        let class = self.instances.read()[&name].class.clone();
        self.emit(ConfigEvent::ComponentAdded {
            instance: name,
            component_type: class,
        });
        Ok(())
    }

    /// Removes an instance: breaks all its connections, calls `release`,
    /// and notifies listeners.
    pub fn destroy_instance(&self, name: &str) -> Result<(), CcaError> {
        // Break connections involving the instance first.
        let involving: Vec<ConnectionInfo> = self
            .connections
            .read()
            .iter()
            .filter(|c| c.user == name || c.provider == name)
            .cloned()
            .collect();
        for c in involving {
            self.disconnect(&c.user, &c.uses_port, &c.provider)?;
        }
        let instance = self
            .instances
            .write()
            .remove(name)
            .ok_or_else(|| CcaError::ComponentNotFound(name.to_string()))?;
        instance.component.release();
        self.emit(ConfigEvent::ComponentRemoved {
            instance: name.to_string(),
        });
        Ok(())
    }

    /// The services handle of an instance (framework/builder-side access).
    pub fn services(&self, name: &str) -> Result<Arc<CcaServices>, CcaError> {
        self.instances
            .read()
            .get(name)
            .map(|i| Arc::clone(&i.services))
            .ok_or_else(|| CcaError::ComponentNotFound(name.to_string()))
    }

    /// The component object of an instance.
    pub fn component(&self, name: &str) -> Result<Arc<dyn Component>, CcaError> {
        self.instances
            .read()
            .get(name)
            .map(|i| Arc::clone(&i.component))
            .ok_or_else(|| CcaError::ComponentNotFound(name.to_string()))
    }

    /// Instance names in sorted order.
    pub fn instance_names(&self) -> Vec<String> {
        self.instances.read().keys().cloned().collect()
    }

    /// The SIDL class of an instance.
    pub fn class_of(&self, name: &str) -> Result<String, CcaError> {
        self.instances
            .read()
            .get(name)
            .map(|i| i.class.clone())
            .ok_or_else(|| CcaError::ComponentNotFound(name.to_string()))
    }

    /// Reports a component failure to all listeners (the Configuration
    /// API's "notifying a builder of a component failure").
    pub fn report_failure(&self, instance: &str, reason: impl Into<String>) {
        self.emit(ConfigEvent::ComponentFailed {
            instance: instance.to_string(),
            reason: reason.into(),
        });
    }

    /// Finds the named instance's `GoPort` provides port and runs it —
    /// how a builder launches the assembled application.
    pub fn run_go(&self, instance: &str, port_name: &str) -> Result<(), CcaError> {
        let services = self.services(instance)?;
        let handle = services.get_provides_port(port_name)?;
        if handle.port_type() != GO_PORT_TYPE {
            return Err(CcaError::IncompatiblePorts {
                uses_type: GO_PORT_TYPE.to_string(),
                provides_type: handle.port_type().to_string(),
            });
        }
        let go: Arc<dyn GoPort> = handle.typed()?;
        match go.go() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.report_failure(instance, e.to_string());
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::event::RecordingListener;
    use cca_core::PortHandle;
    use cca_data::TypeMap;
    use cca_repository::{ComponentEntry, PortSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub(crate) struct Echo {
        pub calls: AtomicUsize,
    }

    pub(crate) trait EchoPort: Send + Sync {
        fn ping(&self) -> usize;
    }

    impl EchoPort for Echo {
        fn ping(&self) -> usize {
            self.calls.fetch_add(1, Ordering::SeqCst) + 1
        }
    }

    #[test]
    fn echo_port_counts() {
        let e = Echo {
            calls: AtomicUsize::new(0),
        };
        assert_eq!(e.ping(), 1);
        assert_eq!(e.ping(), 2);
    }

    impl Component for Echo {
        fn component_type(&self) -> &str {
            "demo.Echo"
        }
        fn set_services(&self, _services: Arc<CcaServices>) -> Result<(), CcaError> {
            Ok(())
        }
    }

    fn repo_with_echo() -> Arc<Repository> {
        let repo = Repository::new();
        repo.register_component(ComponentEntry {
            class: "demo.Echo".into(),
            description: "echo".into(),
            provides: vec![PortSpec::new("echo", "demo.EchoPort")],
            uses: vec![],
            properties: TypeMap::new(),
            factory: Arc::new(|| {
                Arc::new(Echo {
                    calls: AtomicUsize::new(0),
                }) as Arc<dyn Component>
            }),
        })
        .unwrap();
        repo
    }

    #[test]
    fn create_and_destroy_emit_events() {
        let fw = Framework::new(repo_with_echo());
        let rec = RecordingListener::new();
        fw.add_listener(rec.clone());
        fw.create_instance("echo0", "demo.Echo").unwrap();
        assert_eq!(fw.instance_names(), vec!["echo0"]);
        assert_eq!(fw.class_of("echo0").unwrap(), "demo.Echo");
        fw.destroy_instance("echo0").unwrap();
        assert!(fw.instance_names().is_empty());
        let events = rec.events();
        assert!(matches!(events[0], ConfigEvent::ComponentAdded { .. }));
        assert!(matches!(events[1], ConfigEvent::ComponentRemoved { .. }));
    }

    #[test]
    fn config_events_route_through_event_service() {
        let fw = Framework::new(repo_with_echo());
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        fw.event_service().subscribe(
            "cca.config.*",
            Arc::new(move |topic: &str, body: &TypeMap| {
                log2.lock().push(format!(
                    "{topic}:{}",
                    body.get_string("instance", "?".into())
                ));
            }),
        );
        fw.create_instance("echo0", "demo.Echo").unwrap();
        fw.destroy_instance("echo0").unwrap();
        assert_eq!(
            log.lock().as_slice(),
            [
                "cca.config.component_added:echo0",
                "cca.config.component_removed:echo0"
            ]
        );
    }

    #[test]
    fn duplicate_instance_names_rejected() {
        let fw = Framework::new(repo_with_echo());
        fw.create_instance("e", "demo.Echo").unwrap();
        assert!(matches!(
            fw.create_instance("e", "demo.Echo"),
            Err(CcaError::ComponentAlreadyExists(_))
        ));
    }

    #[test]
    fn unknown_class_and_instance_errors() {
        let fw = Framework::new(repo_with_echo());
        assert!(fw.create_instance("x", "demo.Missing").is_err());
        assert!(fw.services("ghost").is_err());
        assert!(fw.destroy_instance("ghost").is_err());
        assert!(fw.class_of("ghost").is_err());
    }

    #[test]
    fn failure_reporting_reaches_listeners() {
        let fw = Framework::new(repo_with_echo());
        let rec = RecordingListener::new();
        fw.add_listener(rec.clone());
        fw.report_failure("mesh0", "out of memory");
        assert!(matches!(
            rec.events()[0],
            ConfigEvent::ComponentFailed { .. }
        ));
    }

    #[test]
    fn run_go_drives_a_go_port() {
        use cca_core::component::GO_PORT_TYPE;
        struct Driver {
            ran: AtomicUsize,
        }
        impl Component for Driver {
            fn component_type(&self) -> &str {
                "demo.Driver"
            }
            fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
                Ok(())
            }
        }
        impl GoPort for Driver {
            fn go(&self) -> Result<(), CcaError> {
                self.ran.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }
        let fw = Framework::new(Repository::new());
        let driver = Arc::new(Driver {
            ran: AtomicUsize::new(0),
        });
        fw.add_instance("driver0", driver.clone()).unwrap();
        let go: Arc<dyn GoPort> = driver.clone();
        fw.services("driver0")
            .unwrap()
            .add_provides_port(PortHandle::new("go", GO_PORT_TYPE, go))
            .unwrap();
        fw.run_go("driver0", "go").unwrap();
        assert_eq!(driver.ran.load(Ordering::SeqCst), 1);
        // Wrong port type is rejected.
        let echo: Arc<dyn EchoPort> = Arc::new(Echo {
            calls: AtomicUsize::new(0),
        });
        fw.services("driver0")
            .unwrap()
            .add_provides_port(PortHandle::new("not_go", "demo.EchoPort", echo))
            .unwrap();
        assert!(fw.run_go("driver0", "not_go").is_err());
    }

    #[test]
    fn failing_go_reports_failure() {
        use cca_core::component::GO_PORT_TYPE;
        struct Bad;
        impl Component for Bad {
            fn component_type(&self) -> &str {
                "demo.Bad"
            }
            fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
                Ok(())
            }
        }
        impl GoPort for Bad {
            fn go(&self) -> Result<(), CcaError> {
                Err(CcaError::Framework("simulated crash".into()))
            }
        }
        let fw = Framework::new(Repository::new());
        let rec = RecordingListener::new();
        fw.add_listener(rec.clone());
        let bad = Arc::new(Bad);
        fw.add_instance("bad0", bad.clone()).unwrap();
        let go: Arc<dyn GoPort> = bad;
        fw.services("bad0")
            .unwrap()
            .add_provides_port(PortHandle::new("go", GO_PORT_TYPE, go))
            .unwrap();
        assert!(fw.run_go("bad0", "go").is_err());
        assert!(rec
            .events()
            .iter()
            .any(|e| matches!(e, ConfigEvent::ComponentFailed { .. })));
    }
}

#[cfg(test)]
mod flavor_tests {
    use super::*;
    use cca_data::TypeMap;
    use cca_repository::ComponentEntry;

    struct Nop;
    impl Component for Nop {
        fn component_type(&self) -> &str {
            "t.Nop"
        }
        fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
            Ok(())
        }
    }

    fn entry(class: &str, flavor: Option<&str>) -> ComponentEntry {
        let mut properties = TypeMap::new();
        if let Some(f) = flavor {
            properties.put_string("requiresFlavor", f.into());
        }
        ComponentEntry {
            class: class.into(),
            description: String::new(),
            provides: vec![],
            uses: vec![],
            properties,
            factory: Arc::new(|| Arc::new(Nop) as Arc<dyn Component>),
        }
    }

    #[test]
    fn satisfied_flavor_requirements_instantiate() {
        let repo = Repository::new();
        repo.register_component(entry("t.Any", None)).unwrap();
        repo.register_component(entry("t.Local", Some("in-process")))
            .unwrap();
        repo.register_component(entry("t.Remote", Some("distributed")))
            .unwrap();
        let fw = Framework::new(repo);
        assert_eq!(fw.flavors(), ["in-process", "distributed"]);
        fw.create_instance("a", "t.Any").unwrap();
        fw.create_instance("l", "t.Local").unwrap();
        fw.create_instance("r", "t.Remote").unwrap();
    }

    #[test]
    fn unsupported_flavor_is_refused() {
        let repo = Repository::new();
        repo.register_component(entry("t.Gpu", Some("gpu-offload")))
            .unwrap();
        let fw = Framework::new(repo);
        let err = fw.create_instance("g", "t.Gpu").unwrap_err();
        assert!(err.to_string().contains("gpu-offload"), "{err}");
        assert!(fw.instance_names().is_empty());
    }
}
