#![warn(missing_docs)]
//! # cca-framework — a CCA-compliant reference framework
//!
//! The paper (§4): "A component framework is said to be CCA compliant if it
//! conforms to these standards — that is, provides the required CCA
//! services and implements the required CCA interfaces." This crate is the
//! reference implementation the paper says is "tracking the evolution of
//! the Common Component Architecture" — a Ccaffeine-style in-process
//! framework:
//!
//! * [`framework`] — the [`Framework`] itself: component instantiation
//!   from the repository, per-instance [`cca_core::CcaServices`], the
//!   Configuration/Builder API (add/remove/redirect/failure events), and
//!   `go`-port driving.
//! * [`connect`] — the connection machinery. The framework owns the
//!   direct-vs-proxy decision ("port connection is the responsibility of
//!   the framework; therefore, a particular component may find itself
//!   connected in a variety of different ways depending on its environment
//!   and mode of use", §6.1): [`ConnectionPolicy::Direct`] hands the
//!   provider's own object across; [`ConnectionPolicy::Proxied`] routes
//!   the same port through the `cca-rpc` ORB without either component
//!   knowing.
//! * [`collective`] — collective ports (§6.3): M×N data redistribution
//!   between differently-distributed parallel components, executed over
//!   `cca-parallel` communicators or in-memory for same-address-space
//!   connections.
//! * [`observability`] — the remote scrape plane: a reflective
//!   `ObservabilityPort` exposing the trace ring, flight-recorder
//!   inventory, and resilience counters over the same wire transports the
//!   components use.
//! * [`discovery`] — the remote discovery plane: the sharded repository's
//!   search API (exact lookup, trigram fuzzy search with paged results,
//!   catalog statistics) as a reflective `DiscoveryPort` other frameworks
//!   dial over the wire (PR 10).
//! * [`bulk`] — the bulk data plane's endpoints: [`BulkRedistSender`]
//!   streams a compiled M×N plan as raw slabs over any transport, and
//!   [`BulkLandingZone`] scatters them into destination storage with
//!   resume watermarks (experiment E15).
//! * [`fleet`] — the supervised multi-process worker fleet: ranks as
//!   child processes joined over `tcp+mux://`, crash detection via
//!   connection death, circuit-breaker quarantine with
//!   decorrelated-jitter restarts, and checkpoint-rollback rejoin so a
//!   `kill -9` mid-timestep converges instead of hanging (PR 9).

pub mod bulk;
pub mod collective;
pub mod connect;
pub mod discovery;
pub mod event;
pub mod fleet;
pub mod framework;
pub mod monitor;
pub mod observability;
pub mod script;

pub use bulk::{BulkLandingZone, BulkRedistSender};
pub use collective::{MxNPort, PlanCache};
pub use connect::{ConnectionInfo, ConnectionPolicy, RemoteTransportKind};
pub use discovery::{
    DiscoveryComponent, DiscoveryPort, DISCOVERY_EXPORT_KEY, DISCOVERY_INSTANCE,
    DISCOVERY_PORT_TYPE, DISCOVERY_SIDL,
};
pub use event::{EventListener, EventService, SubscriptionId};
pub use fleet::{
    fleet_rank_env, rank_backoff_seed, ExecLauncher, FleetConfig, FleetEvent, FleetHub,
    FleetRankEnv, FleetSupervisor, HubLink, LaunchSpec, MockLauncher, MockProcess, ProcessHandle,
    RankLauncher, RestartBackoff,
};
pub use framework::Framework;
pub use monitor::{
    MonitorComponent, MonitorPort, MONITOR_INSTANCE, MONITOR_PORT_TYPE, MONITOR_SIDL,
};
pub use observability::{
    ObservabilityComponent, ObservabilityPort, OBSERVABILITY_EXPORT_KEY, OBSERVABILITY_INSTANCE,
    OBSERVABILITY_PORT_TYPE, OBSERVABILITY_SIDL,
};
pub use script::{parse_script, Command};
