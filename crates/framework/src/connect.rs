//! Connection machinery: type checking, direct vs proxied hand-off,
//! disconnection and redirection.
//!
//! Figure 3's step (2): "At the framework's option, either the interface or
//! a proxy for the interface can be given to Component 2 through its
//! CCAServices handle." The option is [`ConnectionPolicy`]; components on
//! both ends are oblivious to the choice.

use crate::framework::Framework;
use cca_core::resilience::{BreakerObserver, BreakerState, CallPolicy, Clock};
use cca_core::{CcaError, ConfigEvent, PortHandle};
use cca_rpc::transport::Dispatcher;
use cca_rpc::{
    DeadlineTransport, LoopbackTransport, MuxServer, MuxTransport, ObjRef, RemotePortProxy,
    TcpServer, TcpTransport, Transport,
};
use cca_sidl::DynObject;
use std::collections::BTreeMap;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// How the framework realizes a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnectionPolicy {
    /// Hand the provider's own object across (§6.2 direct connect): a call
    /// is one virtual dispatch, "no penalty for using the provides/uses
    /// component connection mechanism".
    #[default]
    Direct,
    /// Interpose the framework ORB: the uses side receives a proxy whose
    /// every call is marshaled through `cca-rpc`. This is what a real
    /// framework does when the two components live in different address
    /// spaces; here it also serves as the measurable baseline (E3).
    Proxied,
}

/// Which TCP client a remote connection rides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemoteTransportKind {
    /// The PR-5 pooled transport: one in-flight request per pooled
    /// connection, checked out for the duration of the call. Simple and
    /// predictable; the default.
    #[default]
    Pooled,
    /// The multiplexed transport: concurrent calls pipeline over a small
    /// fixed connection set, with replies routed by frame request id
    /// (`cca_rpc::MuxTransport`). The right choice when many components or
    /// threads share one remote provider.
    Mux,
}

/// A record of one live connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionInfo {
    /// Using component instance.
    pub user: String,
    /// Uses port name on the user.
    pub uses_port: String,
    /// Providing component instance.
    pub provider: String,
    /// Provides port name on the provider.
    pub provides_port: String,
    /// The SIDL type carried.
    pub port_type: String,
    /// How the connection was realized.
    pub policy: ConnectionPolicy,
}

/// Watches one connection's circuit breaker and republishes its state
/// transitions as configuration events, so builders and monitors see
/// quarantine/recovery exactly like connect/disconnect.
struct QuarantineObserver {
    framework: Weak<Framework>,
    user: String,
    uses_port: String,
    provider: String,
}

impl BreakerObserver for QuarantineObserver {
    fn on_transition(&self, _from: BreakerState, to: BreakerState, consecutive_failures: u64) {
        let Some(fw) = self.framework.upgrade() else {
            return;
        };
        match to {
            BreakerState::Open => {
                // A quarantine is the incident the flight recorder exists
                // for: capture the trailing trace ring before anyone asks.
                if cca_obs::flight::enabled() {
                    cca_obs::flight::record_incident(
                        "ProviderQuarantined",
                        &format!(
                            "{}.{} -> {} after {consecutive_failures} consecutive failures",
                            self.user, self.uses_port, self.provider
                        ),
                    );
                }
                fw.emit(ConfigEvent::ProviderQuarantined {
                    user: self.user.clone(),
                    uses_port: self.uses_port.clone(),
                    provider: self.provider.clone(),
                    consecutive_failures,
                })
            }
            BreakerState::Closed => fw.emit(ConfigEvent::ProviderRecovered {
                user: self.user.clone(),
                uses_port: self.uses_port.clone(),
                provider: self.provider.clone(),
            }),
            // Half-open is an internal probing state, not a configuration
            // change; monitors read it live via `breaker_states`.
            BreakerState::HalfOpen => {}
        }
    }
}

impl Framework {
    /// Connects `user.uses_port` to `provider.provides_port` with the
    /// framework's default policy.
    pub fn connect(
        &self,
        user: &str,
        uses_port: &str,
        provider: &str,
        provides_port: &str,
    ) -> Result<(), CcaError> {
        self.connect_with(
            user,
            uses_port,
            provider,
            provides_port,
            self.default_policy,
        )
    }

    /// Connects with an explicit policy.
    pub fn connect_with(
        &self,
        user: &str,
        uses_port: &str,
        provider: &str,
        provides_port: &str,
        policy: ConnectionPolicy,
    ) -> Result<(), CcaError> {
        let _span = cca_obs::span("framework.connect");
        let user_services = self.services(user)?;
        let provider_services = self.services(provider)?;
        let uses_type = user_services.uses_port_type(uses_port)?;
        let handle = provider_services.get_provides_port(provides_port)?;
        let provides_type = handle.port_type().to_string();

        // Port compatibility = object-oriented type compatibility (§6).
        let compatible = if provides_type == uses_type {
            true
        } else {
            self.repository().is_subtype_of(&provides_type, &uses_type)
        };
        if !compatible {
            return Err(CcaError::IncompatiblePorts {
                uses_type,
                provides_type,
            });
        }

        let provider_metrics = Arc::clone(handle.metrics());
        // A call policy on the uses slot shapes how the connection is
        // delivered: deadlines wrap the proxy transport, and a breaker
        // policy attaches a per-connection circuit breaker whose state
        // transitions are published as configuration events.
        let slot_policy = user_services.call_policy(uses_port)?;
        let deadline = slot_policy
            .as_ref()
            .and_then(|p| p.deadline_ns().map(|d| (d, Arc::clone(p.clock()))));
        let mut delivered = match policy {
            ConnectionPolicy::Direct => handle,
            ConnectionPolicy::Proxied => {
                self.proxy_handle(provider, provides_port, &handle, deadline)?
            }
        };
        if let Some(breaker) = slot_policy.as_ref().and_then(|p| p.new_breaker()) {
            breaker.set_observer(Arc::new(QuarantineObserver {
                framework: Weak::clone(&self.myself),
                user: user.to_string(),
                uses_port: uses_port.to_string(),
                provider: provider.to_string(),
            }));
            delivered = delivered.with_breaker(Arc::new(breaker));
        }
        user_services.connect_uses(uses_port, delivered)?;
        let provider_fan_out = {
            let mut connections = self.connections.write();
            connections.push(ConnectionInfo {
                user: user.to_string(),
                uses_port: uses_port.to_string(),
                provider: provider.to_string(),
                provides_port: provides_port.to_string(),
                port_type: provides_type.clone(),
                policy,
            });
            connections
                .iter()
                .filter(|c| c.provider == provider && c.provides_port == provides_port)
                .count() as u64
        };
        // Provider-side view: how many uses slots this provides port now
        // feeds (the uses slot records its own side in `connect_uses`).
        provider_metrics.record_connect(provider_fan_out);
        self.emit(ConfigEvent::Connected {
            user: user.to_string(),
            uses_port: uses_port.to_string(),
            provider: provider.to_string(),
            provides_port: provides_port.to_string(),
            port_type: provides_type,
        });
        Ok(())
    }

    /// Builds the proxied version of a provides port: the provider's
    /// dynamic facade is registered with the framework ORB and the user
    /// receives a handle whose object *is* the proxy. When the uses slot's
    /// call policy carries a deadline, every ORB round trip is bounded by
    /// it — a wedged transport surfaces as `DeadlineExceeded`, not a hang.
    fn proxy_handle(
        &self,
        provider: &str,
        provides_port: &str,
        handle: &PortHandle,
        deadline: Option<(u64, Arc<dyn Clock>)>,
    ) -> Result<PortHandle, CcaError> {
        let servant = handle.dynamic().cloned().ok_or_else(|| {
            CcaError::Framework(format!(
                "provides port '{provides_port}' of '{provider}' has no dynamic facade; \
                 proxied connections need one (attach the SIDL skeleton with \
                 PortHandle::with_dynamic)"
            ))
        })?;
        let key = format!("{provider}/{provides_port}");
        self.orb.register(key.clone(), servant);
        let mut transport: Arc<dyn Transport> = LoopbackTransport::new(Arc::clone(&self.orb) as _);
        if let Some((deadline_ns, clock)) = deadline {
            transport = DeadlineTransport::new(transport, deadline_ns, clock);
        }
        let proxy = RemotePortProxy::new(handle.port_type(), ObjRef::new(key, transport));
        let dyn_proxy: Arc<dyn DynObject> = proxy;
        Ok(PortHandle::new(
            handle.port_name(),
            handle.port_type(),
            Arc::clone(&dyn_proxy),
        )
        .with_dynamic(dyn_proxy)
        .with_properties(handle.properties().clone()))
    }

    /// Breaks the connection between `user.uses_port` and `provider`.
    pub fn disconnect(&self, user: &str, uses_port: &str, provider: &str) -> Result<(), CcaError> {
        let _span = cca_obs::span("framework.disconnect");
        let mut connections = self.connections.write();
        // Position among this uses-port's connections = index in the slot.
        let mut slot_index = 0usize;
        let mut found = None;
        for (i, c) in connections.iter().enumerate() {
            if c.user == user && c.uses_port == uses_port {
                if c.provider == provider {
                    found = Some((i, slot_index));
                    break;
                }
                slot_index += 1;
            }
        }
        let (vec_index, slot_index) = found.ok_or_else(|| {
            CcaError::PortNotConnected(format!("{user}.{uses_port} -> {provider}"))
        })?;
        self.services(user)?
            .disconnect_uses(uses_port, slot_index)?;
        let removed = connections.remove(vec_index);
        let provider_fan_out = connections
            .iter()
            .filter(|c| c.provider == provider && c.provides_port == removed.provides_port)
            .count() as u64;
        drop(connections);
        // Best-effort provider-side bookkeeping: the provides port may have
        // been removed (or the whole instance destroyed) already.
        if let Ok(services) = self.services(provider) {
            if let Ok(handle) = services.get_provides_port(&removed.provides_port) {
                handle.metrics().record_disconnect(1, provider_fan_out);
            }
        }
        self.emit(ConfigEvent::Disconnected {
            user: user.to_string(),
            uses_port: uses_port.to_string(),
            provider: provider.to_string(),
        });
        Ok(())
    }

    /// Atomically swaps the provider behind a uses port — the Configuration
    /// API's "redirecting interactions between components". The new
    /// connection takes the old one's position, preserving fan-out order.
    pub fn redirect(
        &self,
        user: &str,
        uses_port: &str,
        old_provider: &str,
        new_provider: &str,
        new_provides_port: &str,
    ) -> Result<(), CcaError> {
        self.disconnect(user, uses_port, old_provider)?;
        self.connect(user, uses_port, new_provider, new_provides_port)?;
        self.emit(ConfigEvent::Redirected {
            user: user.to_string(),
            uses_port: uses_port.to_string(),
            old_provider: old_provider.to_string(),
            new_provider: new_provider.to_string(),
        });
        Ok(())
    }

    /// A snapshot of all live connections.
    pub fn connections(&self) -> Vec<ConnectionInfo> {
        self.connections.read().clone()
    }

    /// Installs `policy` on `user.uses_port` and then connects it to
    /// `provider.provides_port` — the one-call way to make a resilient
    /// connection. The policy governs this and every later connection of
    /// the slot (each gets its own breaker; retry/deadline are per-call).
    pub fn connect_with_call_policy(
        &self,
        user: &str,
        uses_port: &str,
        provider: &str,
        provides_port: &str,
        call_policy: CallPolicy,
    ) -> Result<(), CcaError> {
        self.services(user)?
            .set_call_policy(uses_port, Arc::new(call_policy))?;
        self.connect(user, uses_port, provider, provides_port)
    }

    /// Live breaker state per connection: `None` for connections without a
    /// call policy, otherwise `(state, consecutive_failures)`. The slot
    /// index of each connection is its position among that uses port's
    /// connections (the same ordering `disconnect` uses).
    pub fn breaker_states(&self) -> Vec<(ConnectionInfo, Option<(BreakerState, u64)>)> {
        let connections = self.connections.read().clone();
        let mut slot_counters: BTreeMap<(String, String), usize> = BTreeMap::new();
        connections
            .into_iter()
            .map(|c| {
                let slot_key = (c.user.clone(), c.uses_port.clone());
                let index = *slot_counters
                    .entry(slot_key)
                    .and_modify(|i| *i += 1)
                    .or_insert(0);
                let state = self
                    .services(&c.user)
                    .ok()
                    .and_then(|s| s.connection_breaker(&c.uses_port, index).ok().flatten())
                    .map(|b| (b.state(), b.consecutive_failures()));
                (c, state)
            })
            .collect()
    }

    // -- remote connections -------------------------------------------------

    /// Publishes a provides port for remote callers: registers the port's
    /// dynamic facade with the framework ORB under the key
    /// `"{provider}/{provides_port}"` and returns that key. Pair with
    /// [`serve_tcp`](Self::serve_tcp) to put the ORB on the network; a
    /// remote framework then reaches the port via
    /// [`connect_remote`](Self::connect_remote) with the returned key.
    pub fn export_port(&self, provider: &str, provides_port: &str) -> Result<String, CcaError> {
        let handle = self.services(provider)?.get_provides_port(provides_port)?;
        let servant = handle.dynamic().cloned().ok_or_else(|| {
            CcaError::Framework(format!(
                "provides port '{provides_port}' of '{provider}' has no dynamic facade; \
                 remote export needs one (attach the SIDL skeleton with \
                 PortHandle::with_dynamic)"
            ))
        })?;
        let key = format!("{provider}/{provides_port}");
        self.orb.register(key.clone(), servant);
        Ok(key)
    }

    /// Serves this framework's ORB over TCP: every port already exported
    /// (via [`export_port`](Self::export_port) or a proxied connection)
    /// becomes remotely invocable. Bind to `"127.0.0.1:0"` for an
    /// ephemeral port and read the real one off the returned server.
    pub fn serve_tcp(&self, addr: &str) -> Result<Arc<TcpServer>, CcaError> {
        TcpServer::bind(addr, Arc::clone(&self.orb) as Arc<dyn Dispatcher>)
            .map_err(|e| CcaError::Framework(format!("serve tcp://{addr}: {e}")))
    }

    /// Serves this framework's ORB over multiplexed TCP: the same exported
    /// ports as [`serve_tcp`](Self::serve_tcp), dispatched through the
    /// same ORB, but from an event-driven [`MuxServer`] whose thread
    /// budget does not grow with the number of peers. A remote framework
    /// reaches it with [`connect_remote_with`](Self::connect_remote_with)
    /// and [`RemoteTransportKind::Mux`] for pipelining — though the pooled
    /// client interoperates too (the wire format is identical).
    pub fn serve_tcp_mux(&self, addr: &str) -> Result<Arc<MuxServer>, CcaError> {
        MuxServer::bind(addr, Arc::clone(&self.orb) as Arc<dyn Dispatcher>)
            .map_err(|e| CcaError::Framework(format!("serve tcp+mux://{addr}: {e}")))
    }

    /// Connects `user.uses_port` to a port exported by a *remote*
    /// framework: `addr` is the remote [`serve_tcp`](Self::serve_tcp)
    /// address and `remote_key` the key its `export_port` returned. The
    /// user receives an ordinary [`PortHandle`] whose dynamic facade
    /// marshals every call over TCP — the same shape as a local proxied
    /// connection, so the component cannot tell (§6.2).
    ///
    /// The uses slot's [`CallPolicy`] applies unchanged: a deadline both
    /// bounds each round trip on the policy clock *and* becomes the socket
    /// read/write timeout, and a breaker policy attaches a circuit breaker
    /// that quarantines the remote provider on connection failures exactly
    /// like a wedged local one (its transitions are published as
    /// configuration events, labelled `tcp://{addr}/{remote_key}`).
    ///
    /// Trust edge: the remote port's type cannot be checked against the
    /// local repository without a network round trip, so the uses slot's
    /// declared type is taken at face value — a mismatch surfaces at call
    /// time as a remote dispatch error, not at connect time.
    pub fn connect_remote(
        &self,
        user: &str,
        uses_port: &str,
        addr: &str,
        remote_key: &str,
    ) -> Result<(), CcaError> {
        self.connect_remote_with(
            user,
            uses_port,
            addr,
            remote_key,
            RemoteTransportKind::Pooled,
        )
    }

    /// [`connect_remote`](Self::connect_remote) with an explicit transport
    /// choice. [`RemoteTransportKind::Mux`] pipelines this slot's calls
    /// (and those of every other mux slot aimed at the same address by
    /// other threads) over the multiplexed client; connection failures
    /// carry the same `cca.rpc.ConnectionFailure` type either way, so
    /// breaker quarantine/recovery behaves identically. Mux connections
    /// are labelled `tcp+mux://{addr}/{remote_key}` in connection records
    /// and configuration events.
    ///
    /// Incarnation audit (PR 9): the `tcp+mux://{addr}/{remote_key}`
    /// label names an *address*, not a process. If the provider behind
    /// it is a supervised fleet child, the label outlives any one
    /// incarnation: a restarted rank gets the same address back, and a
    /// label recorded while incarnation *k* was alive must never satisfy
    /// a lookup after *k* died. This layer cannot tell incarnations
    /// apart (the socket reconnects transparently), so fleet-routed
    /// lookups go through
    /// [`FleetHub::resolve_provider`](crate::fleet::FleetHub::resolve_provider),
    /// which records `(rank, incarnation)` at every `Join` handshake and
    /// refuses entries whose registering incarnation is dead or
    /// superseded. Non-fleet remotes keep the existing behaviour: a dead
    /// peer trips the breaker to `Open` via `cca.rpc.ConnectionFailure`,
    /// so stale addresses quarantine rather than resolve.
    pub fn connect_remote_with(
        &self,
        user: &str,
        uses_port: &str,
        addr: &str,
        remote_key: &str,
        kind: RemoteTransportKind,
    ) -> Result<(), CcaError> {
        let _span = cca_obs::span("framework.connect_remote");
        let user_services = self.services(user)?;
        let uses_type = user_services.uses_port_type(uses_port)?;
        let slot_policy = user_services.call_policy(uses_port)?;
        let deadline = slot_policy
            .as_ref()
            .and_then(|p| p.deadline_ns().map(|d| (d, Arc::clone(p.clock()))));

        let (mut transport, provider_label): (Arc<dyn Transport>, String) = match kind {
            RemoteTransportKind::Pooled => {
                let mut tcp = TcpTransport::new(addr);
                if let Some((deadline_ns, _)) = &deadline {
                    tcp = tcp.with_io_timeout(Duration::from_nanos(*deadline_ns));
                }
                (Arc::new(tcp), format!("tcp://{addr}/{remote_key}"))
            }
            RemoteTransportKind::Mux => {
                let mut mux = MuxTransport::new(addr);
                if let Some((deadline_ns, _)) = &deadline {
                    mux = mux.with_io_timeout(Duration::from_nanos(*deadline_ns));
                }
                (Arc::new(mux), format!("tcp+mux://{addr}/{remote_key}"))
            }
        };
        if let Some((deadline_ns, clock)) = deadline {
            transport = DeadlineTransport::new(transport, deadline_ns, clock);
        }
        let proxy = RemotePortProxy::new(&uses_type, ObjRef::new(remote_key, transport));
        let dyn_proxy: Arc<dyn DynObject> = proxy;
        let mut delivered = PortHandle::new(remote_key, uses_type.as_str(), Arc::clone(&dyn_proxy))
            .with_dynamic(dyn_proxy);
        if let Some(breaker) = slot_policy.as_ref().and_then(|p| p.new_breaker()) {
            breaker.set_observer(Arc::new(QuarantineObserver {
                framework: Weak::clone(&self.myself),
                user: user.to_string(),
                uses_port: uses_port.to_string(),
                provider: provider_label.clone(),
            }));
            delivered = delivered.with_breaker(Arc::new(breaker));
        }
        user_services.connect_uses(uses_port, delivered)?;
        self.connections.write().push(ConnectionInfo {
            user: user.to_string(),
            uses_port: uses_port.to_string(),
            provider: provider_label.clone(),
            provides_port: remote_key.to_string(),
            port_type: uses_type.clone(),
            policy: ConnectionPolicy::Proxied,
        });
        self.emit(ConfigEvent::Connected {
            user: user.to_string(),
            uses_port: uses_port.to_string(),
            provider: provider_label,
            provides_port: remote_key.to_string(),
            port_type: uses_type,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::event::RecordingListener;
    use cca_core::{CcaServices, Component};
    use cca_data::TypeMap;
    use cca_repository::Repository;
    use cca_sidl::{DynValue, SidlError};
    use std::sync::atomic::{AtomicUsize, Ordering};

    // A provider component exposing a typed port plus a dynamic facade.
    trait CounterPort: Send + Sync {
        fn bump(&self) -> usize;
    }

    struct Counter {
        count: AtomicUsize,
        label: String,
    }

    impl CounterPort for Counter {
        fn bump(&self) -> usize {
            self.count.fetch_add(1, Ordering::SeqCst) + 1
        }
    }

    impl DynObject for Counter {
        fn sidl_type(&self) -> &str {
            "demo.CounterPort"
        }
        fn invoke(&self, method: &str, _args: Vec<DynValue>) -> Result<DynValue, SidlError> {
            match method {
                "bump" => Ok(DynValue::Long(self.bump() as i64)),
                "label" => Ok(DynValue::Str(self.label.clone())),
                other => Err(SidlError::invoke(format!("no method '{other}'"))),
            }
        }
    }

    struct Provider {
        counter: Arc<Counter>,
    }

    impl Component for Provider {
        fn component_type(&self) -> &str {
            "demo.Provider"
        }
        fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
            let typed: Arc<dyn CounterPort> = self.counter.clone();
            let dynamic: Arc<dyn DynObject> = self.counter.clone();
            services.add_provides_port(
                PortHandle::new("counter", "demo.CounterPort", typed).with_dynamic(dynamic),
            )
        }
    }

    struct User;
    impl Component for User {
        fn component_type(&self) -> &str {
            "demo.User"
        }
        fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
            services.register_uses_port("input", "demo.CounterPort", TypeMap::new())
        }
    }

    fn setup(policy: ConnectionPolicy) -> (Arc<Framework>, Arc<Counter>) {
        let fw = Framework::with_policy(Repository::new(), policy);
        let counter = Arc::new(Counter {
            count: AtomicUsize::new(0),
            label: "c0".into(),
        });
        fw.add_instance(
            "provider0",
            Arc::new(Provider {
                counter: counter.clone(),
            }),
        )
        .unwrap();
        fw.add_instance("user0", Arc::new(User)).unwrap();
        (fw, counter)
    }

    #[test]
    fn direct_connection_hands_over_the_object() {
        let (fw, counter) = setup(ConnectionPolicy::Direct);
        fw.connect("user0", "input", "provider0", "counter")
            .unwrap();
        let port: Arc<dyn CounterPort> =
            fw.services("user0").unwrap().get_port_as("input").unwrap();
        assert_eq!(port.bump(), 1);
        assert_eq!(counter.count.load(Ordering::SeqCst), 1);
        let info = &fw.connections()[0];
        assert_eq!(info.policy, ConnectionPolicy::Direct);
        assert_eq!(info.port_type, "demo.CounterPort");
    }

    #[test]
    fn proxied_connection_is_transparent_to_dynamic_callers() {
        let (fw, counter) = setup(ConnectionPolicy::Proxied);
        fw.connect("user0", "input", "provider0", "counter")
            .unwrap();
        let handle = fw.services("user0").unwrap().get_port("input").unwrap();
        // The typed fast path is unavailable through a proxy...
        assert!(handle.typed::<dyn CounterPort>().is_err());
        // ...but the dynamic port behaves identically to the local one.
        let port = handle.dynamic().unwrap();
        let r = port.invoke("bump", vec![]).unwrap();
        assert!(matches!(r, DynValue::Long(1)));
        assert_eq!(counter.count.load(Ordering::SeqCst), 1);
        // The ORB now holds the servant under provider0/counter.
        assert_eq!(fw.orb().keys(), vec!["provider0/counter".to_string()]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let fw = Framework::new(Repository::new());
        struct WrongUser;
        impl Component for WrongUser {
            fn component_type(&self) -> &str {
                "demo.WrongUser"
            }
            fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
                services.register_uses_port("input", "demo.OtherPort", TypeMap::new())
            }
        }
        let counter = Arc::new(Counter {
            count: AtomicUsize::new(0),
            label: "c".into(),
        });
        fw.add_instance("p", Arc::new(Provider { counter }))
            .unwrap();
        fw.add_instance("u", Arc::new(WrongUser)).unwrap();
        assert!(matches!(
            fw.connect("u", "input", "p", "counter"),
            Err(CcaError::IncompatiblePorts { .. })
        ));
    }

    #[test]
    fn subtype_connection_allowed_via_repository() {
        let repo = Repository::new();
        repo.deposit_sidl(
            "package demo {
                interface BasePort { void bump(); }
                class CounterPort implements-all BasePort { }
            }",
        )
        .unwrap();
        let fw = Framework::new(repo);
        struct BaseUser;
        impl Component for BaseUser {
            fn component_type(&self) -> &str {
                "demo.BaseUser"
            }
            fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
                services.register_uses_port("input", "demo.BasePort", TypeMap::new())
            }
        }
        let counter = Arc::new(Counter {
            count: AtomicUsize::new(0),
            label: "c".into(),
        });
        fw.add_instance("p", Arc::new(Provider { counter }))
            .unwrap();
        fw.add_instance("u", Arc::new(BaseUser)).unwrap();
        // demo.CounterPort is-a demo.BasePort per the deposited SIDL.
        fw.connect("u", "input", "p", "counter").unwrap();
    }

    #[test]
    fn disconnect_and_redirect() {
        let (fw, _c0) = setup(ConnectionPolicy::Direct);
        // Second provider with its own counter.
        let c1 = Arc::new(Counter {
            count: AtomicUsize::new(100),
            label: "c1".into(),
        });
        fw.add_instance(
            "provider1",
            Arc::new(Provider {
                counter: c1.clone(),
            }),
        )
        .unwrap();
        let rec = RecordingListener::new();
        fw.add_listener(rec.clone());

        fw.connect("user0", "input", "provider0", "counter")
            .unwrap();
        fw.redirect("user0", "input", "provider0", "provider1", "counter")
            .unwrap();
        let port: Arc<dyn CounterPort> =
            fw.services("user0").unwrap().get_port_as("input").unwrap();
        assert_eq!(port.bump(), 101); // c1's counter
        assert_eq!(fw.connections().len(), 1);
        assert_eq!(fw.connections()[0].provider, "provider1");
        assert!(rec
            .events()
            .iter()
            .any(|e| matches!(e, ConfigEvent::Redirected { .. })));

        fw.disconnect("user0", "input", "provider1").unwrap();
        assert!(fw.connections().is_empty());
        assert!(fw.services("user0").unwrap().get_port("input").is_err());
        // Disconnecting again errors.
        assert!(fw.disconnect("user0", "input", "provider1").is_err());
    }

    #[test]
    fn fan_out_connections_disconnect_by_provider() {
        let (fw, _c0) = setup(ConnectionPolicy::Direct);
        let c1 = Arc::new(Counter {
            count: AtomicUsize::new(0),
            label: "c1".into(),
        });
        fw.add_instance("provider1", Arc::new(Provider { counter: c1 }))
            .unwrap();
        fw.connect("user0", "input", "provider0", "counter")
            .unwrap();
        fw.connect("user0", "input", "provider1", "counter")
            .unwrap();
        assert_eq!(
            fw.services("user0")
                .unwrap()
                .get_ports("input")
                .unwrap()
                .len(),
            2
        );
        fw.disconnect("user0", "input", "provider0").unwrap();
        let remaining = fw.connections();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].provider, "provider1");
    }

    #[test]
    fn destroying_instance_breaks_its_connections() {
        let (fw, _c) = setup(ConnectionPolicy::Direct);
        fw.connect("user0", "input", "provider0", "counter")
            .unwrap();
        fw.destroy_instance("provider0").unwrap();
        assert!(fw.connections().is_empty());
        assert!(fw.services("user0").unwrap().get_port("input").is_err());
    }

    #[test]
    fn quarantine_and_recovery_publish_config_events() {
        use cca_core::resilience::{BreakerPolicy, CallPolicy, MockClock};

        let (fw, _c0) = setup(ConnectionPolicy::Direct);
        let c1 = Arc::new(Counter {
            count: AtomicUsize::new(0),
            label: "c1".into(),
        });
        fw.add_instance("provider1", Arc::new(Provider { counter: c1 }))
            .unwrap();
        let rec = RecordingListener::new();
        fw.add_listener(rec.clone());

        let clock = MockClock::new();
        let policy = CallPolicy::with_clock(clock.clone()).with_breaker(BreakerPolicy {
            failure_threshold: 2,
            cooldown_ns: 1_000,
        });
        fw.connect_with_call_policy("user0", "input", "provider0", "counter", policy)
            .unwrap();
        fw.connect("user0", "input", "provider1", "counter")
            .unwrap();

        let services = fw.services("user0").unwrap();
        assert_eq!(services.get_ports("input").unwrap().len(), 2);

        // Trip provider0's breaker: two consecutive failures.
        let breaker = services.connection_breaker("input", 0).unwrap().unwrap();
        breaker.record_failure();
        breaker.record_failure();

        let quarantined = rec.events().iter().any(|e| {
            matches!(
                e,
                ConfigEvent::ProviderQuarantined { provider, consecutive_failures: 2, .. }
                    if provider == "provider0"
            )
        });
        assert!(quarantined, "breaker opening published a quarantine event");

        // Fan-out now transparently skips the quarantined provider (§6.1:
        // zero-or-more providers, so a thinner fan-out stays legal).
        assert_eq!(services.get_ports("input").unwrap().len(), 1);
        let states = fw.breaker_states();
        assert_eq!(states.len(), 2);
        assert_eq!(
            states[0].1.map(|(s, _)| s),
            Some(cca_core::resilience::BreakerState::Open)
        );

        // After the cooldown, the half-open probe succeeds and the
        // recovery is published.
        clock.advance_ns(2_000);
        assert!(breaker.admit(), "half-open grants one probe");
        breaker.record_success();
        assert!(rec.events().iter().any(|e| {
            matches!(e, ConfigEvent::ProviderRecovered { provider, .. } if provider == "provider0")
        }));
        assert_eq!(services.get_ports("input").unwrap().len(), 2);
    }

    #[test]
    fn proxied_deadline_turns_a_wedge_into_deadline_exceeded() {
        use cca_core::resilience::{CallPolicy, Clock, MockClock, DEADLINE_EXCEPTION_TYPE};

        // A servant that models a wedge by charging the simulated clock.
        struct WedgedServant {
            clock: Arc<MockClock>,
        }
        impl DynObject for WedgedServant {
            fn sidl_type(&self) -> &str {
                "demo.CounterPort"
            }
            fn invoke(&self, _m: &str, _a: Vec<DynValue>) -> Result<DynValue, SidlError> {
                self.clock.advance_ns(50_000);
                Ok(DynValue::Long(1))
            }
        }
        struct WedgedProvider {
            clock: Arc<MockClock>,
        }
        impl Component for WedgedProvider {
            fn component_type(&self) -> &str {
                "demo.WedgedProvider"
            }
            fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
                let servant = Arc::new(WedgedServant {
                    clock: self.clock.clone(),
                });
                let dynamic: Arc<dyn DynObject> = servant;
                services.add_provides_port(
                    PortHandle::new("counter", "demo.CounterPort", Arc::clone(&dynamic))
                        .with_dynamic(dynamic),
                )
            }
        }

        let fw = Framework::with_policy(Repository::new(), ConnectionPolicy::Proxied);
        let clock = MockClock::new();
        fw.add_instance(
            "wedged",
            Arc::new(WedgedProvider {
                clock: clock.clone(),
            }),
        )
        .unwrap();
        fw.add_instance("user0", Arc::new(User)).unwrap();

        let policy = CallPolicy::with_clock(clock.clone()).with_deadline_ns(1_000);
        fw.connect_with_call_policy("user0", "input", "wedged", "counter", policy)
            .unwrap();

        let handle = fw.services("user0").unwrap().get_port("input").unwrap();
        let err = handle
            .dynamic()
            .unwrap()
            .invoke("bump", vec![])
            .unwrap_err();
        match &err {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, DEADLINE_EXCEPTION_TYPE);
            }
            other => panic!("expected a deadline exception, got {other:?}"),
        }
        // The wedge charged simulated time; the caller got an error, not a
        // hang, and crossing into the port layer keeps the meaning.
        assert!(clock.now_ns() >= 50_000);
        let cca: CcaError = err.into();
        assert!(matches!(cca, CcaError::DeadlineExceeded(_)));
    }

    #[test]
    fn proxied_connection_requires_dynamic_facade() {
        let fw = Framework::with_policy(Repository::new(), ConnectionPolicy::Proxied);
        struct NoDynProvider;
        impl Component for NoDynProvider {
            fn component_type(&self) -> &str {
                "demo.NoDyn"
            }
            fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
                let typed: Arc<dyn CounterPort> = Arc::new(Counter {
                    count: AtomicUsize::new(0),
                    label: String::new(),
                });
                services.add_provides_port(PortHandle::new("counter", "demo.CounterPort", typed))
            }
        }
        fw.add_instance("p", Arc::new(NoDynProvider)).unwrap();
        fw.add_instance("u", Arc::new(User)).unwrap();
        let err = fw.connect("u", "input", "p", "counter").unwrap_err();
        assert!(err.to_string().contains("dynamic facade"));
    }
}
