//! Connection machinery: type checking, direct vs proxied hand-off,
//! disconnection and redirection.
//!
//! Figure 3's step (2): "At the framework's option, either the interface or
//! a proxy for the interface can be given to Component 2 through its
//! CCAServices handle." The option is [`ConnectionPolicy`]; components on
//! both ends are oblivious to the choice.

use crate::framework::Framework;
use cca_core::{CcaError, ConfigEvent, PortHandle};
use cca_rpc::{ObjRef, RemotePortProxy};
use cca_sidl::DynObject;
use std::sync::Arc;

/// How the framework realizes a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnectionPolicy {
    /// Hand the provider's own object across (§6.2 direct connect): a call
    /// is one virtual dispatch, "no penalty for using the provides/uses
    /// component connection mechanism".
    #[default]
    Direct,
    /// Interpose the framework ORB: the uses side receives a proxy whose
    /// every call is marshaled through `cca-rpc`. This is what a real
    /// framework does when the two components live in different address
    /// spaces; here it also serves as the measurable baseline (E3).
    Proxied,
}

/// A record of one live connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionInfo {
    /// Using component instance.
    pub user: String,
    /// Uses port name on the user.
    pub uses_port: String,
    /// Providing component instance.
    pub provider: String,
    /// Provides port name on the provider.
    pub provides_port: String,
    /// The SIDL type carried.
    pub port_type: String,
    /// How the connection was realized.
    pub policy: ConnectionPolicy,
}

impl Framework {
    /// Connects `user.uses_port` to `provider.provides_port` with the
    /// framework's default policy.
    pub fn connect(
        &self,
        user: &str,
        uses_port: &str,
        provider: &str,
        provides_port: &str,
    ) -> Result<(), CcaError> {
        self.connect_with(user, uses_port, provider, provides_port, self.default_policy)
    }

    /// Connects with an explicit policy.
    pub fn connect_with(
        &self,
        user: &str,
        uses_port: &str,
        provider: &str,
        provides_port: &str,
        policy: ConnectionPolicy,
    ) -> Result<(), CcaError> {
        let _span = cca_obs::span("framework.connect");
        let user_services = self.services(user)?;
        let provider_services = self.services(provider)?;
        let uses_type = user_services.uses_port_type(uses_port)?;
        let handle = provider_services.get_provides_port(provides_port)?;
        let provides_type = handle.port_type().to_string();

        // Port compatibility = object-oriented type compatibility (§6).
        let compatible = if provides_type == uses_type {
            true
        } else {
            self.repository().is_subtype_of(&provides_type, &uses_type)
        };
        if !compatible {
            return Err(CcaError::IncompatiblePorts {
                uses_type,
                provides_type,
            });
        }

        let provider_metrics = Arc::clone(handle.metrics());
        let delivered = match policy {
            ConnectionPolicy::Direct => handle,
            ConnectionPolicy::Proxied => self.proxy_handle(provider, provides_port, &handle)?,
        };
        user_services.connect_uses(uses_port, delivered)?;
        let provider_fan_out = {
            let mut connections = self.connections.write();
            connections.push(ConnectionInfo {
                user: user.to_string(),
                uses_port: uses_port.to_string(),
                provider: provider.to_string(),
                provides_port: provides_port.to_string(),
                port_type: provides_type.clone(),
                policy,
            });
            connections
                .iter()
                .filter(|c| c.provider == provider && c.provides_port == provides_port)
                .count() as u64
        };
        // Provider-side view: how many uses slots this provides port now
        // feeds (the uses slot records its own side in `connect_uses`).
        provider_metrics.record_connect(provider_fan_out);
        self.emit(ConfigEvent::Connected {
            user: user.to_string(),
            uses_port: uses_port.to_string(),
            provider: provider.to_string(),
            provides_port: provides_port.to_string(),
            port_type: provides_type,
        });
        Ok(())
    }

    /// Builds the proxied version of a provides port: the provider's
    /// dynamic facade is registered with the framework ORB and the user
    /// receives a handle whose object *is* the proxy.
    fn proxy_handle(
        &self,
        provider: &str,
        provides_port: &str,
        handle: &PortHandle,
    ) -> Result<PortHandle, CcaError> {
        let servant = handle.dynamic().cloned().ok_or_else(|| {
            CcaError::Framework(format!(
                "provides port '{provides_port}' of '{provider}' has no dynamic facade; \
                 proxied connections need one (attach the SIDL skeleton with \
                 PortHandle::with_dynamic)"
            ))
        })?;
        let key = format!("{provider}/{provides_port}");
        self.orb.register(key.clone(), servant);
        let proxy =
            RemotePortProxy::new(handle.port_type(), ObjRef::loopback(key, Arc::clone(&self.orb)));
        let dyn_proxy: Arc<dyn DynObject> = proxy;
        Ok(
            PortHandle::new(handle.port_name(), handle.port_type(), Arc::clone(&dyn_proxy))
                .with_dynamic(dyn_proxy)
                .with_properties(handle.properties().clone()),
        )
    }

    /// Breaks the connection between `user.uses_port` and `provider`.
    pub fn disconnect(
        &self,
        user: &str,
        uses_port: &str,
        provider: &str,
    ) -> Result<(), CcaError> {
        let _span = cca_obs::span("framework.disconnect");
        let mut connections = self.connections.write();
        // Position among this uses-port's connections = index in the slot.
        let mut slot_index = 0usize;
        let mut found = None;
        for (i, c) in connections.iter().enumerate() {
            if c.user == user && c.uses_port == uses_port {
                if c.provider == provider {
                    found = Some((i, slot_index));
                    break;
                }
                slot_index += 1;
            }
        }
        let (vec_index, slot_index) = found.ok_or_else(|| {
            CcaError::PortNotConnected(format!("{user}.{uses_port} -> {provider}"))
        })?;
        self.services(user)?.disconnect_uses(uses_port, slot_index)?;
        let removed = connections.remove(vec_index);
        let provider_fan_out = connections
            .iter()
            .filter(|c| c.provider == provider && c.provides_port == removed.provides_port)
            .count() as u64;
        drop(connections);
        // Best-effort provider-side bookkeeping: the provides port may have
        // been removed (or the whole instance destroyed) already.
        if let Ok(services) = self.services(provider) {
            if let Ok(handle) = services.get_provides_port(&removed.provides_port) {
                handle.metrics().record_disconnect(1, provider_fan_out);
            }
        }
        self.emit(ConfigEvent::Disconnected {
            user: user.to_string(),
            uses_port: uses_port.to_string(),
            provider: provider.to_string(),
        });
        Ok(())
    }

    /// Atomically swaps the provider behind a uses port — the Configuration
    /// API's "redirecting interactions between components". The new
    /// connection takes the old one's position, preserving fan-out order.
    pub fn redirect(
        &self,
        user: &str,
        uses_port: &str,
        old_provider: &str,
        new_provider: &str,
        new_provides_port: &str,
    ) -> Result<(), CcaError> {
        self.disconnect(user, uses_port, old_provider)?;
        self.connect(user, uses_port, new_provider, new_provides_port)?;
        self.emit(ConfigEvent::Redirected {
            user: user.to_string(),
            uses_port: uses_port.to_string(),
            old_provider: old_provider.to_string(),
            new_provider: new_provider.to_string(),
        });
        Ok(())
    }

    /// A snapshot of all live connections.
    pub fn connections(&self) -> Vec<ConnectionInfo> {
        self.connections.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::event::RecordingListener;
    use cca_core::{CcaServices, Component};
    use cca_data::TypeMap;
    use cca_repository::Repository;
    use cca_sidl::{DynValue, SidlError};
    use std::sync::atomic::{AtomicUsize, Ordering};

    // A provider component exposing a typed port plus a dynamic facade.
    trait CounterPort: Send + Sync {
        fn bump(&self) -> usize;
    }

    struct Counter {
        count: AtomicUsize,
        label: String,
    }

    impl CounterPort for Counter {
        fn bump(&self) -> usize {
            self.count.fetch_add(1, Ordering::SeqCst) + 1
        }
    }

    impl DynObject for Counter {
        fn sidl_type(&self) -> &str {
            "demo.CounterPort"
        }
        fn invoke(&self, method: &str, _args: Vec<DynValue>) -> Result<DynValue, SidlError> {
            match method {
                "bump" => Ok(DynValue::Long(self.bump() as i64)),
                "label" => Ok(DynValue::Str(self.label.clone())),
                other => Err(SidlError::invoke(format!("no method '{other}'"))),
            }
        }
    }

    struct Provider {
        counter: Arc<Counter>,
    }

    impl Component for Provider {
        fn component_type(&self) -> &str {
            "demo.Provider"
        }
        fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
            let typed: Arc<dyn CounterPort> = self.counter.clone();
            let dynamic: Arc<dyn DynObject> = self.counter.clone();
            services.add_provides_port(
                PortHandle::new("counter", "demo.CounterPort", typed).with_dynamic(dynamic),
            )
        }
    }

    struct User;
    impl Component for User {
        fn component_type(&self) -> &str {
            "demo.User"
        }
        fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
            services.register_uses_port("input", "demo.CounterPort", TypeMap::new())
        }
    }

    fn setup(policy: ConnectionPolicy) -> (Arc<Framework>, Arc<Counter>) {
        let fw = Framework::with_policy(Repository::new(), policy);
        let counter = Arc::new(Counter {
            count: AtomicUsize::new(0),
            label: "c0".into(),
        });
        fw.add_instance(
            "provider0",
            Arc::new(Provider {
                counter: counter.clone(),
            }),
        )
        .unwrap();
        fw.add_instance("user0", Arc::new(User)).unwrap();
        (fw, counter)
    }

    #[test]
    fn direct_connection_hands_over_the_object() {
        let (fw, counter) = setup(ConnectionPolicy::Direct);
        fw.connect("user0", "input", "provider0", "counter").unwrap();
        let port: Arc<dyn CounterPort> = fw
            .services("user0")
            .unwrap()
            .get_port_as("input")
            .unwrap();
        assert_eq!(port.bump(), 1);
        assert_eq!(counter.count.load(Ordering::SeqCst), 1);
        let info = &fw.connections()[0];
        assert_eq!(info.policy, ConnectionPolicy::Direct);
        assert_eq!(info.port_type, "demo.CounterPort");
    }

    #[test]
    fn proxied_connection_is_transparent_to_dynamic_callers() {
        let (fw, counter) = setup(ConnectionPolicy::Proxied);
        fw.connect("user0", "input", "provider0", "counter").unwrap();
        let handle = fw.services("user0").unwrap().get_port("input").unwrap();
        // The typed fast path is unavailable through a proxy...
        assert!(handle.typed::<dyn CounterPort>().is_err());
        // ...but the dynamic port behaves identically to the local one.
        let port = handle.dynamic().unwrap();
        let r = port.invoke("bump", vec![]).unwrap();
        assert!(matches!(r, DynValue::Long(1)));
        assert_eq!(counter.count.load(Ordering::SeqCst), 1);
        // The ORB now holds the servant under provider0/counter.
        assert_eq!(fw.orb().keys(), vec!["provider0/counter".to_string()]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let fw = Framework::new(Repository::new());
        struct WrongUser;
        impl Component for WrongUser {
            fn component_type(&self) -> &str {
                "demo.WrongUser"
            }
            fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
                services.register_uses_port("input", "demo.OtherPort", TypeMap::new())
            }
        }
        let counter = Arc::new(Counter {
            count: AtomicUsize::new(0),
            label: "c".into(),
        });
        fw.add_instance("p", Arc::new(Provider { counter })).unwrap();
        fw.add_instance("u", Arc::new(WrongUser)).unwrap();
        assert!(matches!(
            fw.connect("u", "input", "p", "counter"),
            Err(CcaError::IncompatiblePorts { .. })
        ));
    }

    #[test]
    fn subtype_connection_allowed_via_repository() {
        let repo = Repository::new();
        repo.deposit_sidl(
            "package demo {
                interface BasePort { void bump(); }
                class CounterPort implements-all BasePort { }
            }",
        )
        .unwrap();
        let fw = Framework::new(repo);
        struct BaseUser;
        impl Component for BaseUser {
            fn component_type(&self) -> &str {
                "demo.BaseUser"
            }
            fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
                services.register_uses_port("input", "demo.BasePort", TypeMap::new())
            }
        }
        let counter = Arc::new(Counter {
            count: AtomicUsize::new(0),
            label: "c".into(),
        });
        fw.add_instance("p", Arc::new(Provider { counter })).unwrap();
        fw.add_instance("u", Arc::new(BaseUser)).unwrap();
        // demo.CounterPort is-a demo.BasePort per the deposited SIDL.
        fw.connect("u", "input", "p", "counter").unwrap();
    }

    #[test]
    fn disconnect_and_redirect() {
        let (fw, _c0) = setup(ConnectionPolicy::Direct);
        // Second provider with its own counter.
        let c1 = Arc::new(Counter {
            count: AtomicUsize::new(100),
            label: "c1".into(),
        });
        fw.add_instance("provider1", Arc::new(Provider { counter: c1.clone() }))
            .unwrap();
        let rec = RecordingListener::new();
        fw.add_listener(rec.clone());

        fw.connect("user0", "input", "provider0", "counter").unwrap();
        fw.redirect("user0", "input", "provider0", "provider1", "counter")
            .unwrap();
        let port: Arc<dyn CounterPort> = fw
            .services("user0")
            .unwrap()
            .get_port_as("input")
            .unwrap();
        assert_eq!(port.bump(), 101); // c1's counter
        assert_eq!(fw.connections().len(), 1);
        assert_eq!(fw.connections()[0].provider, "provider1");
        assert!(rec
            .events()
            .iter()
            .any(|e| matches!(e, ConfigEvent::Redirected { .. })));

        fw.disconnect("user0", "input", "provider1").unwrap();
        assert!(fw.connections().is_empty());
        assert!(fw.services("user0").unwrap().get_port("input").is_err());
        // Disconnecting again errors.
        assert!(fw.disconnect("user0", "input", "provider1").is_err());
    }

    #[test]
    fn fan_out_connections_disconnect_by_provider() {
        let (fw, _c0) = setup(ConnectionPolicy::Direct);
        let c1 = Arc::new(Counter {
            count: AtomicUsize::new(0),
            label: "c1".into(),
        });
        fw.add_instance("provider1", Arc::new(Provider { counter: c1 }))
            .unwrap();
        fw.connect("user0", "input", "provider0", "counter").unwrap();
        fw.connect("user0", "input", "provider1", "counter").unwrap();
        assert_eq!(
            fw.services("user0").unwrap().get_ports("input").unwrap().len(),
            2
        );
        fw.disconnect("user0", "input", "provider0").unwrap();
        let remaining = fw.connections();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].provider, "provider1");
    }

    #[test]
    fn destroying_instance_breaks_its_connections() {
        let (fw, _c) = setup(ConnectionPolicy::Direct);
        fw.connect("user0", "input", "provider0", "counter").unwrap();
        fw.destroy_instance("provider0").unwrap();
        assert!(fw.connections().is_empty());
        assert!(fw.services("user0").unwrap().get_port("input").is_err());
    }

    #[test]
    fn proxied_connection_requires_dynamic_facade() {
        let fw = Framework::with_policy(Repository::new(), ConnectionPolicy::Proxied);
        struct NoDynProvider;
        impl Component for NoDynProvider {
            fn component_type(&self) -> &str {
                "demo.NoDyn"
            }
            fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
                let typed: Arc<dyn CounterPort> = Arc::new(Counter {
                    count: AtomicUsize::new(0),
                    label: String::new(),
                });
                services.add_provides_port(PortHandle::new("counter", "demo.CounterPort", typed))
            }
        }
        fw.add_instance("p", Arc::new(NoDynProvider)).unwrap();
        fw.add_instance("u", Arc::new(User)).unwrap();
        let err = fw.connect("u", "input", "p", "counter").unwrap_err();
        assert!(err.to_string().contains("dynamic facade"));
    }
}
