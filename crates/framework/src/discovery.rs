//! The remote discovery plane: the repository's search API as a
//! reflective port any framework can dial over the wire.
//!
//! Figure 2's repository is only useful if other frameworks can *search*
//! it — "the functionality necessary to search a framework repository
//! for components" (§4). The discovery port puts exactly that on the
//! network: exact class lookup, trigram fuzzy search with scored paged
//! results (a [`cca_repository::QueryCursor`] rides the wire as an
//! opaque string), and the catalog's scale statistics, all through
//! dynamic invocation over the same `tcp`/`tcp+mux` transports the
//! components themselves use. [`Framework::install_discovery`] mirrors
//! [`Framework::install_observability`]: deposit the SIDL, add the
//! component instance, export the port under [`DISCOVERY_EXPORT_KEY`],
//! and the next `serve_tcp`/`serve_tcp_mux` call makes the catalog
//! remotely searchable.

use crate::framework::Framework;
use cca_core::{CcaError, CcaServices, Component};
use cca_repository::{FuzzyQuery, QueryCursor, QueryPage, Repository};
use cca_sidl::{DynObject, DynValue, SidlError};
use std::sync::Arc;

/// The SIDL type of the discovery port.
pub const DISCOVERY_PORT_TYPE: &str = "cca.ports.DiscoveryPort";

/// Default instance name [`Framework::install_discovery`] registers under.
pub const DISCOVERY_INSTANCE: &str = "cca-discovery";

/// ORB key the discovery port is exported under —
/// `"{DISCOVERY_INSTANCE}/discovery"`. A remote framework reaches it with
/// `ObjRef::new(DISCOVERY_EXPORT_KEY, transport)`.
pub const DISCOVERY_EXPORT_KEY: &str = "cca-discovery/discovery";

/// SIDL declaration of the discovery interface, deposited into the
/// repository by [`Framework::install_discovery`] so reflective callers
/// can `invoke_checked` against real metadata.
pub const DISCOVERY_SIDL: &str = "
package cca.ports {
    // Remote repository search: exact lookup, fuzzy discovery with
    // scored paged results, and catalog statistics.
    interface DiscoveryPort {
        // Number of registered component classes.
        long componentCount();
        // {\"found\":…,\"class\":…,\"description\":…,\"provides\":[…],
        //  \"uses\":[…]} — exact class lookup.
        string lookupJson(in string className);
        // {\"hits\":[{\"class\":…,\"score\":…}…],\"matched\":…,
        //  \"cursor\":…} — first page of a fuzzy query.
        string searchJson(in string needle, in long limit);
        // Continuation: same shape, resumed after an opaque cursor from
        // a previous page.
        string pageJson(in string needle, in long limit, in string cursor);
        // {\"components\":…,\"shards\":…,\"generations\":[…],
        //  \"counters\":{…}} — catalog scale statistics.
        string statsJson();
    }
}
";

fn js(s: &str) -> String {
    cca_obs::trace::escape_json(s)
}

fn page_json(page: &QueryPage) -> String {
    let hits: Vec<String> = page
        .hits
        .iter()
        .map(|h| format!("{{\"class\":\"{}\",\"score\":{}}}", js(&h.class), h.score))
        .collect();
    let cursor = match &page.next {
        Some(c) => format!("\"{}\"", js(&c.encode())),
        None => "null".to_string(),
    };
    format!(
        "{{\"hits\":[{}],\"matched\":{},\"cursor\":{}}}",
        hits.join(","),
        page.matched,
        cursor
    )
}

/// The discovery port object. Holds the repository directly (not the
/// framework): the catalog outliving its framework is fine, and lookup
/// traffic never touches instance state.
pub struct DiscoveryPort {
    repository: Arc<Repository>,
}

impl DiscoveryPort {
    /// Creates a discovery port over `repository`.
    pub fn new(repository: Arc<Repository>) -> Arc<Self> {
        Arc::new(DiscoveryPort { repository })
    }

    /// Exact class lookup as self-describing JSON.
    pub fn lookup_json(&self, class: &str) -> String {
        match self.repository.entry(class) {
            Ok(e) => {
                let ports = |specs: &[cca_repository::PortSpec]| {
                    specs
                        .iter()
                        .map(|p| {
                            format!(
                                "{{\"name\":\"{}\",\"type\":\"{}\"}}",
                                js(&p.name),
                                js(&p.port_type)
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    "{{\"found\":true,\"class\":\"{}\",\"description\":\"{}\",\
                     \"provides\":[{}],\"uses\":[{}]}}",
                    js(&e.class),
                    js(&e.description),
                    ports(&e.provides),
                    ports(&e.uses)
                )
            }
            Err(_) => format!("{{\"found\":false,\"class\":\"{}\"}}", js(class)),
        }
    }

    /// First page of a fuzzy query.
    pub fn search_json(&self, needle: &str, limit: usize) -> String {
        page_json(
            &self
                .repository
                .fuzzy(&FuzzyQuery::new(needle).with_limit(limit)),
        )
    }

    /// Continuation page: `cursor` is the opaque string a previous page
    /// returned. Junk cursors error rather than silently restarting the
    /// walk from the top.
    pub fn page_json(&self, needle: &str, limit: usize, cursor: &str) -> Result<String, SidlError> {
        let cursor = QueryCursor::parse(cursor)
            .ok_or_else(|| SidlError::invoke(format!("unparseable query cursor '{cursor}'")))?;
        Ok(page_json(&self.repository.fuzzy(
            &FuzzyQuery::new(needle).with_limit(limit).after(cursor),
        )))
    }

    /// Catalog scale statistics: entry count, shard layout, per-shard
    /// publication generations, and the global repository counters.
    pub fn stats_json(&self) -> String {
        let generations: Vec<String> = self
            .repository
            .generations()
            .iter()
            .map(u64::to_string)
            .collect();
        format!(
            "{{\"components\":{},\"shards\":{},\"generations\":[{}],\"counters\":{}}}",
            self.repository.len(),
            self.repository.shard_count(),
            generations.join(","),
            cca_obs::repo().snapshot().to_json()
        )
    }
}

impl DynObject for DiscoveryPort {
    fn sidl_type(&self) -> &str {
        DISCOVERY_PORT_TYPE
    }

    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        let arg = |i: usize, what: &str| {
            args.get(i)
                .ok_or_else(|| SidlError::invoke(format!("{method} needs ({what})")))
        };
        match method {
            "componentCount" => Ok(DynValue::Long(self.repository.len() as i64)),
            "lookupJson" => Ok(DynValue::Str(
                self.lookup_json(arg(0, "className")?.as_str()?),
            )),
            "searchJson" => {
                let needle = arg(0, "needle, limit")?.as_str()?.to_string();
                let limit = arg(1, "needle, limit")?.as_long()?.max(1) as usize;
                Ok(DynValue::Str(self.search_json(&needle, limit)))
            }
            "pageJson" => {
                let needle = arg(0, "needle, limit, cursor")?.as_str()?.to_string();
                let limit = arg(1, "needle, limit, cursor")?.as_long()?.max(1) as usize;
                let cursor = arg(2, "needle, limit, cursor")?.as_str()?.to_string();
                Ok(DynValue::Str(self.page_json(&needle, limit, &cursor)?))
            }
            "statsJson" => Ok(DynValue::Str(self.stats_json())),
            other => Err(SidlError::invoke(format!(
                "{DISCOVERY_PORT_TYPE} has no method '{other}'"
            ))),
        }
    }
}

/// The component wrapper providing the discovery port (instance name
/// [`DISCOVERY_INSTANCE`], port name `"discovery"`).
pub struct DiscoveryComponent {
    port: Arc<DiscoveryPort>,
}

impl Component for DiscoveryComponent {
    fn component_type(&self) -> &str {
        "cca.DiscoveryComponent"
    }

    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let dynamic: Arc<dyn DynObject> = Arc::clone(&self.port) as Arc<dyn DynObject>;
        services.add_provides_port(
            cca_core::PortHandle::new("discovery", DISCOVERY_PORT_TYPE, Arc::clone(&dynamic))
                .with_dynamic(dynamic),
        )
    }
}

impl Framework {
    /// Installs the discovery plane: deposits [`DISCOVERY_SIDL`] into the
    /// repository (idempotently), adds a [`DiscoveryComponent`] instance
    /// named [`DISCOVERY_INSTANCE`], and exports its port under
    /// [`DISCOVERY_EXPORT_KEY`] so the next
    /// [`serve_tcp`](Framework::serve_tcp) /
    /// [`serve_tcp_mux`](Framework::serve_tcp_mux) call makes the catalog
    /// remotely searchable.
    ///
    /// Returns the port object for in-process callers.
    pub fn install_discovery(self: &Arc<Self>) -> Result<Arc<DiscoveryPort>, CcaError> {
        let known = self
            .repository()
            .with_catalog(|c| c.reflection().type_info(DISCOVERY_PORT_TYPE).is_some());
        if !known {
            self.repository()
                .deposit_sidl(DISCOVERY_SIDL)
                .map_err(|e| CcaError::Framework(format!("discovery SIDL rejected: {e}")))?;
        }
        let port = DiscoveryPort::new(Arc::clone(self.repository()));
        self.add_instance(
            DISCOVERY_INSTANCE,
            Arc::new(DiscoveryComponent {
                port: Arc::clone(&port),
            }),
        )?;
        let key = self.export_port(DISCOVERY_INSTANCE, "discovery")?;
        debug_assert_eq!(key, DISCOVERY_EXPORT_KEY);
        Ok(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_data::TypeMap;
    use cca_repository::{ComponentEntry, PortSpec};
    use cca_sidl::{compile, invoke_checked, Reflection};

    struct Nop;
    impl Component for Nop {
        fn component_type(&self) -> &str {
            "t.Nop"
        }
        fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
            Ok(())
        }
    }

    fn entry(class: &str, desc: &str) -> ComponentEntry {
        ComponentEntry {
            class: class.into(),
            description: desc.into(),
            provides: vec![PortSpec::new("solve", "esi.Solver")],
            uses: vec![],
            properties: TypeMap::new(),
            factory: Arc::new(|| Arc::new(Nop) as Arc<dyn Component>),
        }
    }

    fn fw_with_catalog() -> Arc<Framework> {
        let repo = Repository::new();
        repo.register_component(entry("esi.KrylovCg", "conjugate gradient solver"))
            .unwrap();
        repo.register_component(entry("esi.KrylovGmres", "restarted gmres solver"))
            .unwrap();
        repo.register_component(entry("viz.Plot", "line plots"))
            .unwrap();
        Framework::new(repo)
    }

    #[test]
    fn install_registers_exports_and_answers() {
        let fw = fw_with_catalog();
        let disc = fw.install_discovery().unwrap();
        assert!(fw.orb().keys().contains(&DISCOVERY_EXPORT_KEY.to_string()));
        // Second install fails on the duplicate instance, not the SIDL.
        assert!(matches!(
            fw.install_discovery(),
            Err(CcaError::ComponentAlreadyExists(_))
        ));
        let found = disc.lookup_json("esi.KrylovCg");
        assert!(found.contains("\"found\":true"), "{found}");
        assert!(found.contains("\"esi.Solver\""), "{found}");
        let missing = disc.lookup_json("esi.Missing");
        assert!(missing.contains("\"found\":false"), "{missing}");
        let stats = disc.stats_json();
        assert!(stats.contains("\"components\":3"), "{stats}");
        assert!(stats.contains("\"counters\":{\"deposits\""), "{stats}");
    }

    #[test]
    fn search_and_paging_over_dynamic_invocation() {
        let fw = fw_with_catalog();
        fw.install_discovery().unwrap();
        let handle = fw
            .services(DISCOVERY_INSTANCE)
            .unwrap()
            .get_provides_port("discovery")
            .unwrap();
        let target = handle.dynamic().unwrap();
        let reflection = Reflection::from_model(&compile(DISCOVERY_SIDL).unwrap());
        let info = reflection.type_info(DISCOVERY_PORT_TYPE).unwrap();

        let r = invoke_checked(
            &**target,
            info.method("searchJson").unwrap(),
            vec![DynValue::Str("krylov".into()), DynValue::Long(1)],
        )
        .unwrap();
        let first = r.as_str().unwrap().to_string();
        assert!(first.contains("\"esi.KrylovCg\""), "{first}");
        assert!(first.contains("\"matched\":2"), "{first}");
        // Pull the cursor out and continue the walk over the wire shape.
        let cursor = first
            .split("\"cursor\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("first page leaves a cursor")
            .to_string();
        let r = invoke_checked(
            &**target,
            info.method("pageJson").unwrap(),
            vec![
                DynValue::Str("krylov".into()),
                DynValue::Long(1),
                DynValue::Str(cursor),
            ],
        )
        .unwrap();
        let second = r.as_str().unwrap();
        assert!(second.contains("\"esi.KrylovGmres\""), "{second}");
        assert!(second.contains("\"cursor\":null"), "{second}");

        let r = invoke_checked(&**target, info.method("componentCount").unwrap(), vec![]).unwrap();
        assert_eq!(r.as_long().unwrap(), 3);
    }

    #[test]
    fn unknown_method_bad_args_and_junk_cursor_error() {
        let fw = fw_with_catalog();
        let disc = fw.install_discovery().unwrap();
        assert!(disc.invoke("selfDestruct", vec![]).is_err());
        assert!(disc.invoke("lookupJson", vec![]).is_err());
        assert!(disc
            .invoke("searchJson", vec![DynValue::Str("x".into())])
            .is_err());
        assert!(disc
            .invoke(
                "pageJson",
                vec![
                    DynValue::Str("krylov".into()),
                    DynValue::Long(5),
                    DynValue::Str("not-a-cursor".into()),
                ],
            )
            .is_err());
    }
}
