//! The reflective `MonitorPort` — Fig. 2's builder-style introspection as
//! an ordinary CCA port.
//!
//! §5 motivates SIDL reflection with exactly this use: "components and the
//! associated composition tools and frameworks must discover, query, and
//! execute methods at run time." The monitor is that story closed end to
//! end: the framework installs a component whose provides port is reachable
//! **only** through the dynamic-invocation machinery (`cca_sidl::DynObject`
//! plus [`MONITOR_SIDL`] reflection metadata), and through it any tool —
//! a GUI builder, a remote proxy via the ORB, a script — can ask the live
//! assembly for its instance list, connection graph, per-port metrics, and
//! trace buffers without compile-time knowledge of this crate.
//!
//! `examples/monitoring.rs` drives the whole surface via
//! `cca_sidl::invoke_checked` only, as a composition tool would.

use crate::framework::Framework;
use cca_core::{CcaError, CcaServices, Component};
use cca_sidl::{DynObject, DynValue, SidlError};
use std::sync::{Arc, Weak};

/// The SIDL type of the monitor's provides port.
pub const MONITOR_PORT_TYPE: &str = "cca.ports.MonitorPort";

/// Default instance name [`Framework::install_monitor`] registers under.
pub const MONITOR_INSTANCE: &str = "cca-monitor";

/// SIDL declaration of the monitor interface. Deposited into the
/// repository by [`Framework::install_monitor`] so reflective callers can
/// `invoke_checked` against real metadata.
pub const MONITOR_SIDL: &str = "
package cca.ports {
    // Live-assembly introspection: every method returns JSON so callers
    // need nothing beyond the dynamic-invocation machinery.
    interface MonitorPort {
        // [{\"name\":…,\"class\":…}] for every live instance.
        string instances();
        // {\"instances\":[…],\"connections\":[…]} — the live wiring graph.
        string connectionGraph();
        // {instance: [{\"port\":…,\"kind\":…,\"metrics\":{…}}]} for all ports.
        string metricsJson();
        // Total observed invocations of one port of one instance.
        long callCount(in string instance, in string port);
        // Live subscription count of the framework event service.
        long eventSubscriptions();
        // Flip the per-port counter gate at runtime.
        void setCounters(in bool on);
        // Flip the span/event tracer at runtime.
        void setTracing(in bool on);
        // Drain buffered trace events: format is \"jsonl\" or \"chrome\".
        string drainTrace(in string format);
        // {\"counters\":{…},\"breakers\":[…]} — global resilience counters
        // plus the live circuit-breaker state of every connection.
        string resilienceJson();
    }
}
";

fn js(s: &str) -> String {
    cca_obs::trace::escape_json(s)
}

/// The monitor's port object: a [`DynObject`] over a weak framework
/// reference (weak, so the monitor never keeps its own framework alive —
/// the framework owns the monitor, not vice versa).
pub struct MonitorPort {
    framework: Weak<Framework>,
}

impl MonitorPort {
    /// Creates a monitor port watching `framework`.
    pub fn new(framework: &Arc<Framework>) -> Arc<Self> {
        Arc::new(MonitorPort {
            framework: Arc::downgrade(framework),
        })
    }

    fn framework(&self) -> Result<Arc<Framework>, SidlError> {
        self.framework
            .upgrade()
            .ok_or_else(|| SidlError::invoke("monitored framework no longer exists"))
    }

    /// JSON array of `{"name", "class"}` for every live instance.
    pub fn instances_json(&self) -> Result<String, SidlError> {
        let fw = self.framework()?;
        let items: Vec<String> = fw
            .instance_names()
            .into_iter()
            .map(|name| {
                let class = fw.class_of(&name).unwrap_or_default();
                format!(
                    "{{\"name\":\"{}\",\"class\":\"{}\"}}",
                    js(&name),
                    js(&class)
                )
            })
            .collect();
        Ok(format!("[{}]", items.join(",")))
    }

    /// The live connection graph: instances as nodes, connections as edges.
    pub fn connection_graph_json(&self) -> Result<String, SidlError> {
        let fw = self.framework()?;
        let edges: Vec<String> = fw
            .connections()
            .into_iter()
            .map(|c| {
                format!(
                    "{{\"user\":\"{}\",\"usesPort\":\"{}\",\"provider\":\"{}\",\
                     \"providesPort\":\"{}\",\"portType\":\"{}\",\"policy\":\"{:?}\"}}",
                    js(&c.user),
                    js(&c.uses_port),
                    js(&c.provider),
                    js(&c.provides_port),
                    js(&c.port_type),
                    c.policy
                )
            })
            .collect();
        Ok(format!(
            "{{\"instances\":{},\"connections\":[{}]}}",
            self.instances_json()?,
            edges.join(",")
        ))
    }

    /// Per-port metrics of every instance, keyed by instance name.
    pub fn metrics_json(&self) -> Result<String, SidlError> {
        let fw = self.framework()?;
        let mut per_instance = Vec::new();
        for name in fw.instance_names() {
            let services = fw
                .services(&name)
                .map_err(|e| SidlError::invoke(e.to_string()))?;
            let ports: Vec<String> = services
                .metrics_snapshot()
                .into_iter()
                .map(|(port, kind, snap)| {
                    format!(
                        "{{\"port\":\"{}\",\"kind\":\"{kind}\",\"metrics\":{}}}",
                        js(&port),
                        snap.to_json()
                    )
                })
                .collect();
            per_instance.push(format!("\"{}\":[{}]", js(&name), ports.join(",")));
        }
        Ok(format!("{{{}}}", per_instance.join(",")))
    }

    /// Total observed invocations of `port` on `instance`.
    pub fn call_count(&self, instance: &str, port: &str) -> Result<i64, SidlError> {
        let fw = self.framework()?;
        let services = fw
            .services(instance)
            .map_err(|e| SidlError::invoke(e.to_string()))?;
        let metrics = services
            .port_metrics(port)
            .map_err(|e| SidlError::invoke(e.to_string()))?;
        Ok(metrics.calls() as i64)
    }

    /// Global resilience counters plus the live breaker state of every
    /// connection (state `"none"` for connections without a call policy).
    pub fn resilience_json(&self) -> Result<String, SidlError> {
        let fw = self.framework()?;
        let breakers: Vec<String> = fw
            .breaker_states()
            .into_iter()
            .map(|(c, state)| {
                let (state_str, failures) = match state {
                    Some((s, f)) => (s.as_str(), f),
                    None => ("none", 0),
                };
                format!(
                    "{{\"user\":\"{}\",\"usesPort\":\"{}\",\"provider\":\"{}\",\
                     \"state\":\"{state_str}\",\"consecutiveFailures\":{failures}}}",
                    js(&c.user),
                    js(&c.uses_port),
                    js(&c.provider),
                )
            })
            .collect();
        Ok(format!(
            "{{\"counters\":{},\"breakers\":[{}]}}",
            cca_obs::resilience().snapshot().to_json(),
            breakers.join(",")
        ))
    }

    /// Drains the tracer: `"chrome"` renders a Chrome `trace_event`
    /// document, anything else JSON Lines.
    pub fn drain_trace(&self, format: &str) -> String {
        let events = cca_obs::drain();
        if format == "chrome" {
            cca_obs::to_chrome_trace(&events)
        } else {
            cca_obs::to_jsonl(&events)
        }
    }
}

impl DynObject for MonitorPort {
    fn sidl_type(&self) -> &str {
        MONITOR_PORT_TYPE
    }

    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "instances" => Ok(DynValue::Str(self.instances_json()?)),
            "connectionGraph" => Ok(DynValue::Str(self.connection_graph_json()?)),
            "metricsJson" => Ok(DynValue::Str(self.metrics_json()?)),
            "callCount" => {
                let instance = args
                    .first()
                    .ok_or_else(|| SidlError::invoke("callCount needs (instance, port)"))?
                    .as_str()?;
                let port = args
                    .get(1)
                    .ok_or_else(|| SidlError::invoke("callCount needs (instance, port)"))?
                    .as_str()?;
                Ok(DynValue::Long(self.call_count(instance, port)?))
            }
            "eventSubscriptions" => {
                let fw = self.framework()?;
                Ok(DynValue::Long(
                    fw.event_service().subscription_count() as i64
                ))
            }
            "setCounters" => {
                let on = args
                    .first()
                    .ok_or_else(|| SidlError::invoke("setCounters needs (on)"))?
                    .as_bool()?;
                cca_obs::set_counters(on);
                Ok(DynValue::Void)
            }
            "setTracing" => {
                let on = args
                    .first()
                    .ok_or_else(|| SidlError::invoke("setTracing needs (on)"))?
                    .as_bool()?;
                cca_obs::set_tracing(on);
                Ok(DynValue::Void)
            }
            "resilienceJson" => Ok(DynValue::Str(self.resilience_json()?)),
            "drainTrace" => {
                let format = args
                    .first()
                    .ok_or_else(|| SidlError::invoke("drainTrace needs (format)"))?
                    .as_str()?;
                Ok(DynValue::Str(self.drain_trace(format)))
            }
            other => Err(SidlError::invoke(format!(
                "{MONITOR_PORT_TYPE} has no method '{other}'"
            ))),
        }
    }
}

/// The component wrapper that provides the monitor port (instance name
/// [`MONITOR_INSTANCE`], port name `"monitor"`).
pub struct MonitorComponent {
    port: Arc<MonitorPort>,
}

impl Component for MonitorComponent {
    fn component_type(&self) -> &str {
        "cca.MonitorComponent"
    }

    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let dynamic: Arc<dyn DynObject> = Arc::clone(&self.port) as Arc<dyn DynObject>;
        services.add_provides_port(
            cca_core::PortHandle::new("monitor", MONITOR_PORT_TYPE, Arc::clone(&dynamic))
                .with_dynamic(dynamic),
        )
    }
}

impl Framework {
    /// Installs the monitoring component: deposits [`MONITOR_SIDL`] into
    /// the repository (idempotently) and adds a [`MonitorComponent`]
    /// instance named [`MONITOR_INSTANCE`] whose `"monitor"` provides port
    /// answers the [`MONITOR_PORT_TYPE`] interface via dynamic invocation.
    ///
    /// Returns the port object for in-process callers; reflective tools
    /// reach the same object with
    /// `framework.services(MONITOR_INSTANCE)?.get_provides_port("monitor")`.
    pub fn install_monitor(self: &Arc<Self>) -> Result<Arc<MonitorPort>, CcaError> {
        let known = self
            .repository()
            .with_catalog(|c| c.reflection().type_info(MONITOR_PORT_TYPE).is_some());
        if !known {
            self.repository()
                .deposit_sidl(MONITOR_SIDL)
                .map_err(|e| CcaError::Framework(format!("monitor SIDL rejected: {e}")))?;
        }
        let port = MonitorPort::new(self);
        self.add_instance(
            MONITOR_INSTANCE,
            Arc::new(MonitorComponent {
                port: Arc::clone(&port),
            }),
        )?;
        Ok(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::PortHandle;
    use cca_data::TypeMap;
    use cca_repository::Repository;
    use cca_sidl::{compile, invoke_checked, Reflection};

    trait Echo: Send + Sync {
        fn ping(&self) -> i64;
    }
    struct E;
    impl Echo for E {
        fn ping(&self) -> i64 {
            1
        }
    }

    struct Provider;
    impl Component for Provider {
        fn component_type(&self) -> &str {
            "t.Provider"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            let port: Arc<dyn Echo> = Arc::new(E);
            s.add_provides_port(PortHandle::new("out", "t.Echo", port))
        }
    }
    struct User;
    impl Component for User {
        fn component_type(&self) -> &str {
            "t.User"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            s.register_uses_port("in", "t.Echo", TypeMap::new())
        }
    }

    fn wired_framework() -> Arc<Framework> {
        let fw = Framework::new(Repository::new());
        fw.add_instance("p0", Arc::new(Provider)).unwrap();
        fw.add_instance("u0", Arc::new(User)).unwrap();
        fw.connect("u0", "in", "p0", "out").unwrap();
        fw
    }

    #[test]
    fn install_is_idempotent_in_sidl_but_not_instances() {
        let fw = wired_framework();
        let monitor = fw.install_monitor().unwrap();
        // Second install fails on the duplicate instance name, not on a
        // duplicate SIDL deposit.
        assert!(matches!(
            fw.install_monitor(),
            Err(CcaError::ComponentAlreadyExists(_))
        ));
        assert!(monitor.instances_json().unwrap().contains("cca-monitor"));
    }

    #[test]
    fn monitor_reports_graph_and_metrics() {
        let fw = wired_framework();
        let monitor = fw.install_monitor().unwrap();
        let graph = monitor.connection_graph_json().unwrap();
        assert!(graph.contains("\"user\":\"u0\""));
        assert!(graph.contains("\"provider\":\"p0\""));
        assert!(graph.contains("\"policy\":\"Direct\""));
        let metrics = monitor.metrics_json().unwrap();
        assert!(metrics.contains("\"u0\""));
        assert!(metrics.contains("\"kind\":\"uses\""));
        // Counter-gated call counting observed through the monitor.
        cca_obs::set_counters(true);
        let services = fw.services("u0").unwrap();
        let port: Arc<dyn Echo> = services.get_port_as("in").unwrap();
        assert_eq!(port.ping(), 1);
        cca_obs::set_counters(false);
        assert!(monitor.call_count("u0", "in").unwrap() >= 1);
        assert!(monitor.call_count("ghost", "in").is_err());
        assert!(monitor.call_count("u0", "ghost").is_err());
    }

    #[test]
    fn dynamic_invocation_against_deposited_reflection() {
        let fw = wired_framework();
        fw.install_monitor().unwrap();
        // Reach the port the way a composition tool does: reflection from
        // the SIDL text + checked dynamic invocation, no Rust types.
        let handle = fw
            .services(MONITOR_INSTANCE)
            .unwrap()
            .get_provides_port("monitor")
            .unwrap();
        let target = handle.dynamic().unwrap();
        let reflection = Reflection::from_model(&compile(MONITOR_SIDL).unwrap());
        let info = reflection.type_info(MONITOR_PORT_TYPE).unwrap();

        let r = invoke_checked(&**target, info.method("instances").unwrap(), vec![]).unwrap();
        assert!(r.as_str().unwrap().contains("\"u0\""));

        let r = invoke_checked(
            &**target,
            info.method("callCount").unwrap(),
            vec![DynValue::Str("u0".into()), DynValue::Str("in".into())],
        )
        .unwrap();
        assert!(r.as_long().unwrap() >= 0);

        // Arity/type checking comes from the deposited metadata.
        assert!(invoke_checked(&**target, info.method("callCount").unwrap(), vec![]).is_err());
        let r = invoke_checked(
            &**target,
            info.method("eventSubscriptions").unwrap(),
            vec![],
        );
        assert!(r.unwrap().as_long().unwrap() >= 0);
    }

    #[test]
    fn monitor_shows_live_breaker_state() {
        use cca_core::resilience::{BreakerPolicy, CallPolicy, MockClock};

        let fw = Framework::new(Repository::new());
        fw.add_instance("p0", Arc::new(Provider)).unwrap();
        fw.add_instance("u0", Arc::new(User)).unwrap();
        let clock = MockClock::new();
        let policy =
            CallPolicy::with_clock(clock.clone()).with_breaker(BreakerPolicy::new(3, 1_000));
        fw.connect_with_call_policy("u0", "in", "p0", "out", policy)
            .unwrap();
        let monitor = fw.install_monitor().unwrap();

        let json = monitor.resilience_json().unwrap();
        assert!(json.contains("\"state\":\"closed\""), "{json}");
        assert!(json.contains("\"breaker_opens\""), "{json}");

        // Trip the breaker; the monitor reflects it live.
        let breaker = fw
            .services("u0")
            .unwrap()
            .connection_breaker("in", 0)
            .unwrap()
            .unwrap();
        for _ in 0..3 {
            breaker.record_failure();
        }
        let json = monitor.resilience_json().unwrap();
        assert!(json.contains("\"state\":\"open\""), "{json}");
        assert!(json.contains("\"consecutiveFailures\":3"), "{json}");

        // The reflective path reaches the same method via deposited SIDL.
        let handle = fw
            .services(MONITOR_INSTANCE)
            .unwrap()
            .get_provides_port("monitor")
            .unwrap();
        let target = handle.dynamic().unwrap();
        let reflection = Reflection::from_model(&compile(MONITOR_SIDL).unwrap());
        let info = reflection.type_info(MONITOR_PORT_TYPE).unwrap();
        let r = invoke_checked(&**target, info.method("resilienceJson").unwrap(), vec![]).unwrap();
        assert!(r.as_str().unwrap().contains("\"breakers\""));
    }

    #[test]
    fn monitor_does_not_keep_framework_alive() {
        let fw = wired_framework();
        let monitor = fw.install_monitor().unwrap();
        drop(fw);
        assert!(monitor.instances_json().is_err());
        assert!(monitor
            .framework()
            .err()
            .unwrap()
            .to_string()
            .contains("no longer exists"));
    }

    #[test]
    fn unknown_method_and_bad_args_error() {
        let fw = wired_framework();
        let monitor = fw.install_monitor().unwrap();
        assert!(monitor.invoke("selfDestruct", vec![]).is_err());
        assert!(monitor.invoke("setTracing", vec![]).is_err());
        assert!(monitor
            .invoke("setTracing", vec![DynValue::Long(1)])
            .is_err());
        assert!(monitor.invoke("drainTrace", vec![]).is_err());
    }
}
