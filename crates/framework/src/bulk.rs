//! The framework ends of the bulk data plane: streaming M×N
//! redistribution as raw slabs (experiment E15).
//!
//! `cca-rpc`'s [`bulk`](cca_rpc::bulk) module defines the wire artifacts —
//! the slab layout, the ack, the [`BulkSink`] a `MuxServer` dispatches
//! `Bulk` frames into. This module supplies the two endpoints that speak
//! that protocol *about a plan*:
//!
//! * [`BulkRedistSender`] — the source side. For every transfer a source
//!   rank owes under a [`CompiledPlan`], it walks the plan's precomputed
//!   [`WireLayout`] chunk boundaries, gathers each chunk straight from the
//!   rank's local array storage into one header-prefixed slab (no
//!   per-element tag/length framing, no intermediate typed buffer), and
//!   sends it through any [`Transport`] — normally a
//!   [`BulkChannel`](cca_rpc::BulkChannel) over the mux, optionally under
//!   a `DeadlineTransport` so a wedged receiver costs a typed
//!   `cca.rpc.DeadlineExceeded`, not a hung writer.
//! * [`BulkLandingZone`] — the destination side. Installed as the server's
//!   [`BulkSink`], it validates each slab against the plan (generation,
//!   transfer index, element tag, declared total), scatters the body
//!   bytes directly into the destination rank's local slice via the
//!   transfer's precomputed `dst_offsets`, and answers with a [`BulkAck`]
//!   carrying the transfer's contiguous-landing watermark.
//!
//! The watermark is the resilience contract: the sender records
//! `acked_through` after every chunk, so when a connection dies
//! mid-stream (PR 3's typed connection errors, the breaker, quarantine)
//! the *next* `send` call resumes from the watermark instead of byte
//! zero. Replayed chunks are idempotent — scattering the same bytes to
//! the same offsets twice is a no-op — so at-least-once delivery is safe.
//!
//! Memory stays O(chunk) on both sides: [`BulkRedistSender::send`] holds
//! one slab at a time (stop-and-wait per chunk, which also lets the mux
//! server's write-buffer cap exert backpressure), and the receiver
//! scatters out of the frame's own buffer without staging. The
//! throughput path, [`BulkRedistSender::send_pipelined`], trades the
//! single-slab bound for a fixed window of in-flight slabs — O(window ×
//! chunk), still independent of the array size — so the gather, the
//! wire, and the receiver's scatter overlap instead of serializing on
//! loopback round trips (E15 gates the resulting speedup).

use bytes::Bytes;
use cca_data::{CompiledPlan, WireLayout};
use cca_obs::span;
use cca_obs::BulkMetrics;
use cca_rpc::{
    BulkAck, BulkChannel, BulkElem, BulkError, BulkSink, PendingReply, SlabHeader, Transport,
    BULK_EXCEPTION_TYPE, BULK_SLAB_HEADER_LEN,
};
use cca_sidl::SidlError;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// The source-rank end of a bulk redistribution stream.
///
/// One sender serves one source rank of one compiled plan. It is
/// deliberately `&mut self` — a rank streams its transfers sequentially
/// (stop-and-wait per chunk keeps peak memory at one slab); different
/// ranks use different senders, possibly over different connections of
/// the same [`cca_rpc::MuxTransport`].
pub struct BulkRedistSender<T: BulkElem> {
    compiled: Arc<CompiledPlan>,
    layout: WireLayout,
    generation: u64,
    src_rank: usize,
    /// Global transfer indices originating at `src_rank`, in plan order.
    transfer_ids: Vec<u32>,
    /// Per-entry resume watermark (bytes contiguously acked), parallel to
    /// `transfer_ids`. Survives failed `send` calls — that is the point.
    acked: Vec<u64>,
    peak_buffer_bytes: usize,
    metrics: Arc<BulkMetrics>,
    /// The element type is compile-time only: it fixes the wire tag and
    /// the gather width, no storage.
    _elem: std::marker::PhantomData<T>,
}

impl<T: BulkElem> BulkRedistSender<T> {
    /// Builds a sender for `src_rank` under `compiled`, streaming in
    /// element-aligned chunks of (at most) `chunk_bytes`. Both sides must
    /// construct their layout from the same plan and chunk size —
    /// boundaries are never negotiated on the wire.
    pub fn new(
        compiled: Arc<CompiledPlan>,
        generation: u64,
        chunk_bytes: usize,
        src_rank: usize,
    ) -> Self {
        let layout = compiled.wire_layout(T::SIZE, chunk_bytes);
        let transfer_ids: Vec<u32> = compiled
            .transfers()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.src_rank == src_rank)
            .map(|(i, _)| i as u32)
            .collect();
        let acked = vec![0u64; transfer_ids.len()];
        BulkRedistSender {
            compiled,
            layout,
            generation,
            src_rank,
            transfer_ids,
            acked,
            peak_buffer_bytes: 0,
            metrics: BulkMetrics::new(),
            _elem: std::marker::PhantomData,
        }
    }

    /// Streams every not-yet-acked chunk of every transfer this rank owes.
    /// `data` is the rank's local buffer under the source descriptor. On
    /// error (connection drop, deadline, injected fault) the watermarks
    /// keep everything acked so far; calling `send` again resumes from
    /// the last acked chunk of the interrupted transfer.
    pub fn send(&mut self, channel: &dyn Transport, data: &[T]) -> Result<(), SidlError> {
        let _s = span("bulk.send");
        let expected = self.compiled.src_count(self.src_rank);
        if data.len() != expected {
            return Err(SidlError::user(
                BULK_EXCEPTION_TYPE,
                format!(
                    "source rank {} buffer has {} elements, plan says {expected}",
                    self.src_rank,
                    data.len()
                ),
            ));
        }
        for local in 0..self.transfer_ids.len() {
            let t = self.transfer_ids[local] as usize;
            let total = self.layout.transfer_bytes(t);
            let resume_from = self.acked[local];
            if resume_from >= total {
                continue; // already fully acked
            }
            if resume_from > 0 {
                let remaining = self.layout.chunk_count(t)
                    - (resume_from / self.layout.chunk_bytes() as u64) as usize;
                self.metrics.record_resume(remaining as u64);
            }
            self.stream_transfer(channel, data, local, t, total, resume_from)?;
        }
        Ok(())
    }

    /// Streams like [`send`](Self::send) but keeps up to `window` slabs in
    /// flight at once, so the chunk gather, the wire transfer, and the
    /// receiver's scatter overlap instead of paying one full round trip
    /// per chunk — the throughput path E15 measures. Peak resident payload
    /// memory is `window` slabs: larger than stop-and-wait's single slab,
    /// still independent of the array size.
    ///
    /// The resume contract is unchanged — every ack raises the
    /// contiguous-landing watermark and a failure leaves it positioned for
    /// the next call to continue. One caveat: a failure can lose acks that
    /// were still in flight, so a resumed stream may re-send a chunk the
    /// receiver already landed. Replays are idempotent by design;
    /// [`send`](Self::send) remains the path with the
    /// exactly-once-per-chunk guarantee.
    pub fn send_pipelined(
        &mut self,
        channel: &BulkChannel,
        data: &[T],
        window: usize,
    ) -> Result<(), SidlError> {
        let _s = span("bulk.send_pipelined");
        let expected = self.compiled.src_count(self.src_rank);
        if data.len() != expected {
            return Err(SidlError::user(
                BULK_EXCEPTION_TYPE,
                format!(
                    "source rank {} buffer has {} elements, plan says {expected}",
                    self.src_rank,
                    data.len()
                ),
            ));
        }
        let window = window.max(1);
        for local in 0..self.transfer_ids.len() {
            let t = self.transfer_ids[local] as usize;
            let total = self.layout.transfer_bytes(t);
            let resume_from = self.acked[local];
            if resume_from >= total {
                continue; // already fully acked
            }
            if resume_from > 0 {
                let remaining = self.layout.chunk_count(t)
                    - (resume_from / self.layout.chunk_bytes() as u64) as usize;
                self.metrics.record_resume(remaining as u64);
            }
            self.stream_transfer_windowed(channel, data, local, t, total, resume_from, window)?;
        }
        Ok(())
    }

    /// Streams one transfer from `resume_from` with a window of in-flight
    /// slabs. The watermark only ever advances on decoded acks, so the
    /// error path needs no special casing: outstanding slabs are abandoned
    /// (their acks, if any, are lost) and the next call resumes from
    /// whatever was contiguously acknowledged.
    #[allow(clippy::too_many_arguments)]
    fn stream_transfer_windowed(
        &mut self,
        channel: &BulkChannel,
        data: &[T],
        local: usize,
        t: usize,
        total: u64,
        resume_from: u64,
        window: usize,
    ) -> Result<(), SidlError> {
        let compiled = Arc::clone(&self.compiled);
        let transfer = &compiled.transfers()[t];
        let header = SlabHeader {
            generation: self.generation,
            transfer: t as u32,
            tag: T::TAG,
            chunk_offset: 0,
            total_bytes: total,
        };
        let mut wm = resume_from;
        let mut outcome: Result<(), SidlError> = Ok(());
        // Oldest-first `(payload_len, pending)` pairs; resident bytes are
        // everything submitted but not yet retired.
        let mut in_flight: VecDeque<(usize, PendingReply)> = VecDeque::with_capacity(window);
        let mut resident = 0usize;
        let mut chunks = self.layout.chunks_from(t, resume_from);
        loop {
            while outcome.is_ok() && in_flight.len() < window {
                let Some((offset, len)) = chunks.next() else {
                    break;
                };
                let first = offset as usize / T::SIZE;
                let count = len / T::SIZE;
                resident += BULK_SLAB_HEADER_LEN + len;
                self.peak_buffer_bytes = self.peak_buffer_bytes.max(resident);
                // The slab is built in place on the connection's write
                // queue: header, then the chunk's elements gathered in
                // maximal contiguous runs (block redistributions are
                // almost entirely runs, so the inner loop is a straight
                // sequential copy the compiler vectorizes).
                let submitted = channel.submit_with(BULK_SLAB_HEADER_LEN + len, |slab| {
                    SlabHeader {
                        chunk_offset: offset,
                        ..header
                    }
                    .encode_into(slab);
                    let offs = &transfer.src_offsets[first..first + count];
                    let body = &mut slab[BULK_SLAB_HEADER_LEN..];
                    let mut i = 0;
                    while i < count {
                        let start = offs[i];
                        let mut run = 1;
                        while i + run < count && offs[i + run] == start + run {
                            run += 1;
                        }
                        let dst = body[i * T::SIZE..(i + run) * T::SIZE].chunks_exact_mut(T::SIZE);
                        for (x, b) in data[start..start + run].iter().zip(dst) {
                            x.write_le(b);
                        }
                        i += run;
                    }
                });
                match submitted {
                    Ok(pending) => in_flight.push_back((len, pending)),
                    Err(e) => {
                        resident -= BULK_SLAB_HEADER_LEN + len;
                        outcome = Err(e);
                    }
                }
            }
            let Some((len, pending)) = in_flight.pop_front() else {
                break;
            };
            let sample = resident as u64;
            resident -= BULK_SLAB_HEADER_LEN + len;
            let reply = match pending.wait_timed() {
                Ok((reply, _)) => reply,
                Err(e) => {
                    outcome = Err(e);
                    // Abandon the rest of the window: their acks are lost
                    // (the resume may replay those chunks — idempotent).
                    in_flight.clear();
                    break;
                }
            };
            self.metrics.record_chunk_sent(len as u64, sample);
            let ack = match BulkAck::decode(reply.as_slice()) {
                Ok(a) => a,
                Err(e) => {
                    outcome = Err(e.into());
                    in_flight.clear();
                    break;
                }
            };
            if ack.generation != self.generation {
                outcome = Err(BulkError::GenerationMismatch {
                    got: ack.generation,
                    want: self.generation,
                }
                .into());
                in_flight.clear();
                break;
            }
            if ack.transfer as usize != t {
                outcome = Err(BulkError::BadTransfer {
                    got: ack.transfer,
                    count: self.layout.transfer_count(),
                }
                .into());
                in_flight.clear();
                break;
            }
            wm = wm.max(ack.acked_through);
        }
        self.acked[local] = wm;
        outcome
    }

    /// Streams one transfer from `resume_from`, updating the watermark
    /// after every acked chunk (including on the error path).
    fn stream_transfer(
        &mut self,
        channel: &dyn Transport,
        data: &[T],
        local: usize,
        t: usize,
        total: u64,
        resume_from: u64,
    ) -> Result<(), SidlError> {
        let transfer = &self.compiled.transfers()[t];
        let header = SlabHeader {
            generation: self.generation,
            transfer: t as u32,
            tag: T::TAG,
            chunk_offset: 0,
            total_bytes: total,
        };
        let mut wm = resume_from;
        let mut outcome = Ok(());
        for (offset, len) in self.layout.chunks_from(t, resume_from) {
            let first = offset as usize / T::SIZE;
            let count = len / T::SIZE;
            // One slab: 32-byte header, then the chunk's elements gathered
            // straight from local storage through the precomputed offsets.
            let mut slab = vec![0u8; BULK_SLAB_HEADER_LEN + len];
            SlabHeader {
                chunk_offset: offset,
                ..header
            }
            .encode_into(&mut slab);
            for i in 0..count {
                data[transfer.src_offsets[first + i]]
                    .write_le(&mut slab[BULK_SLAB_HEADER_LEN + i * T::SIZE..]);
            }
            self.peak_buffer_bytes = self.peak_buffer_bytes.max(slab.len());
            let buffer_bytes = slab.len() as u64;
            let reply = match channel.call(Bytes::from(slab)) {
                Ok(r) => r,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            };
            self.metrics.record_chunk_sent(len as u64, buffer_bytes);
            let ack = match BulkAck::decode(reply.as_slice()) {
                Ok(a) => a,
                Err(e) => {
                    outcome = Err(e.into());
                    break;
                }
            };
            if ack.generation != self.generation {
                outcome = Err(BulkError::GenerationMismatch {
                    got: ack.generation,
                    want: self.generation,
                }
                .into());
                break;
            }
            if ack.transfer as usize != t {
                outcome = Err(BulkError::BadTransfer {
                    got: ack.transfer,
                    count: self.layout.transfer_count(),
                }
                .into());
                break;
            }
            wm = wm.max(ack.acked_through);
        }
        self.acked[local] = wm;
        outcome
    }

    /// True once every transfer this rank owes is fully acked.
    pub fn is_complete(&self) -> bool {
        self.transfer_ids
            .iter()
            .zip(self.acked.iter())
            .all(|(&t, &wm)| wm >= self.layout.transfer_bytes(t as usize))
    }

    /// Largest payload memory this sender ever held resident — one slab
    /// (header + chunk) under [`send`](Self::send), up to `window` slabs
    /// under [`send_pipelined`](Self::send_pipelined). The E15
    /// memory-boundedness assertion reads this.
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buffer_bytes
    }

    /// The resume watermark of local transfer `i` (bytes acked).
    pub fn acked_through(&self, i: usize) -> u64 {
        self.acked[i]
    }

    /// Number of transfers this rank owes.
    pub fn transfer_count(&self) -> usize {
        self.transfer_ids.len()
    }

    /// Zeroes every watermark so the same arrays can be streamed again
    /// (bench iterations, repeated timesteps).
    pub fn reset(&mut self) {
        for wm in &mut self.acked {
            *wm = 0;
        }
    }

    /// This sender's throughput/resume counters.
    pub fn metrics(&self) -> &Arc<BulkMetrics> {
        &self.metrics
    }
}

/// The destination end: a [`BulkSink`] that lands slabs for *all*
/// destination ranks of one compiled plan into framework-owned buffers.
///
/// Scatter happens under one mutex — the dispatch workers' decode and
/// validation run concurrently, and the critical section is a straight
/// offset-indexed copy. Replays (chunks re-sent after a lost ack) are
/// idempotent.
pub struct BulkLandingZone<T: BulkElem> {
    compiled: Arc<CompiledPlan>,
    layout: WireLayout,
    generation: u64,
    metrics: Arc<BulkMetrics>,
    state: Mutex<LandingState<T>>,
}

struct LandingState<T> {
    /// One buffer per destination rank, sized by the plan.
    dst: Vec<Vec<T>>,
    /// Per-transfer contiguous-landing watermark in bytes.
    watermarks: Vec<u64>,
    /// Per-transfer chunk-landed flags. Pipelined senders race the
    /// server's dispatch pool, so chunks can scatter out of order; the
    /// flags let the watermark absorb landed-ahead chunks the moment the
    /// gap before them fills.
    landed: Vec<Vec<bool>>,
}

impl<T: BulkElem> BulkLandingZone<T> {
    /// Builds a landing zone for `compiled` at `generation`, expecting
    /// chunks laid out with `chunk_bytes` (must match the sender's).
    pub fn new(compiled: Arc<CompiledPlan>, generation: u64, chunk_bytes: usize) -> Arc<Self> {
        let layout = compiled.wire_layout(T::SIZE, chunk_bytes);
        let dst = (0..compiled.dst_ranks())
            .map(|r| vec![T::default(); compiled.dst_count(r)])
            .collect();
        let watermarks = vec![0u64; layout.transfer_count()];
        let landed = (0..layout.transfer_count())
            .map(|t| vec![false; layout.chunk_count(t)])
            .collect();
        Arc::new(BulkLandingZone {
            compiled,
            layout,
            generation,
            metrics: BulkMetrics::new(),
            state: Mutex::new(LandingState {
                dst,
                watermarks,
                landed,
            }),
        })
    }

    /// True once every transfer in the plan has landed contiguously.
    pub fn is_complete(&self) -> bool {
        let st = self.state.lock();
        st.watermarks
            .iter()
            .enumerate()
            .all(|(t, &wm)| wm >= self.layout.transfer_bytes(t))
    }

    /// The contiguous-landing watermark of transfer `t` (bytes).
    pub fn watermark(&self, t: usize) -> u64 {
        self.state.lock().watermarks[t]
    }

    /// Runs `f` over the destination buffers (one per destination rank)
    /// without copying them out.
    pub fn with_buffers<R>(&self, f: impl FnOnce(&[Vec<T>]) -> R) -> R {
        f(&self.state.lock().dst)
    }

    /// Clones the destination buffers out (tests; prefer
    /// [`with_buffers`](Self::with_buffers) for large arrays).
    pub fn snapshot_buffers(&self) -> Vec<Vec<T>> {
        self.state.lock().dst.clone()
    }

    /// Zeroes the watermarks (keeping the buffers) so the next stream
    /// starts fresh — bench iterations, repeated timesteps.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        for wm in &mut st.watermarks {
            *wm = 0;
        }
        for flags in &mut st.landed {
            flags.iter_mut().for_each(|f| *f = false);
        }
    }

    /// This landing zone's throughput counters.
    pub fn metrics(&self) -> &Arc<BulkMetrics> {
        &self.metrics
    }
}

impl<T: BulkElem> BulkSink for BulkLandingZone<T> {
    fn receive(&self, payload: Bytes) -> Result<Vec<u8>, SidlError> {
        let _s = span("bulk.land");
        let (header, body) = SlabHeader::decode(&payload)?;
        if header.generation != self.generation {
            return Err(BulkError::GenerationMismatch {
                got: header.generation,
                want: self.generation,
            }
            .into());
        }
        let t = header.transfer as usize;
        if t >= self.layout.transfer_count() {
            return Err(BulkError::BadTransfer {
                got: header.transfer,
                count: self.layout.transfer_count(),
            }
            .into());
        }
        if header.tag != T::TAG {
            return Err(BulkError::TagMismatch {
                got: header.tag,
                want: T::TAG,
            }
            .into());
        }
        let want_total = self.layout.transfer_bytes(t);
        if header.total_bytes != want_total {
            return Err(BulkError::TotalMismatch {
                got: header.total_bytes,
                want: want_total,
            }
            .into());
        }
        let transfer = &self.compiled.transfers()[t];
        let first = header.chunk_offset as usize / T::SIZE;
        let count = body.len() / T::SIZE;
        let raw = body.as_slice();
        let end = header.chunk_offset + body.len() as u64;
        let acked_through = {
            let mut st = self.state.lock();
            // Scatter straight from the frame's bytes into the destination
            // rank's local slice — the only copy on the receive path.
            // Like the gather, offsets are walked in maximal contiguous
            // runs so the hot loop is a straight sequential copy.
            let dst_local = &mut st.dst[transfer.dst_rank];
            let offs = &transfer.dst_offsets[first..first + count];
            let mut i = 0;
            while i < count {
                let start = offs[i];
                let mut run = 1;
                while i + run < count && offs[i + run] == start + run {
                    run += 1;
                }
                let src = raw[i * T::SIZE..(i + run) * T::SIZE].chunks_exact(T::SIZE);
                for (slot, b) in dst_local[start..start + run].iter_mut().zip(src) {
                    *slot = T::read_le(b);
                }
                i += run;
            }
            // A slab that is exactly one layout chunk marks its flag;
            // anything else (hand-built slabs at odd offsets) can only
            // extend the watermark contiguously.
            let chunk_bytes = self.layout.chunk_bytes() as u64;
            let idx = (header.chunk_offset / chunk_bytes) as usize;
            if header.chunk_offset == idx as u64 * chunk_bytes
                && end == (header.chunk_offset + chunk_bytes).min(want_total)
            {
                st.landed[t][idx] = true;
            }
            let st = &mut *st;
            let wm = &mut st.watermarks[t];
            if header.chunk_offset <= *wm && end > *wm {
                *wm = end;
            }
            // Absorb chunks that landed ahead of the gap this slab just
            // filled (out-of-order scatter under a pipelined sender).
            let flags = &st.landed[t];
            let mut i = (*wm / chunk_bytes) as usize;
            while i < flags.len() && flags[i] {
                *wm = (chunk_bytes * (i as u64 + 1)).min(want_total);
                i += 1;
            }
            *wm
        };
        self.metrics.record_chunk_landed(body.len() as u64);
        Ok(BulkAck {
            generation: self.generation,
            transfer: header.transfer,
            acked_through,
        }
        .encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::resilience::{Clock, MockClock, DEADLINE_EXCEPTION_TYPE};
    use cca_data::{DistArrayDesc, Distribution, RedistPlan};
    use cca_rpc::DeadlineTransport;

    fn block_desc(n: usize, p: usize) -> DistArrayDesc {
        DistArrayDesc::new(&[n], Distribution::block_1d(p, 1).unwrap()).unwrap()
    }

    fn compiled_4_to_3(n: usize) -> Arc<CompiledPlan> {
        let src = block_desc(n, 4);
        let dst = block_desc(n, 3);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        Arc::new(plan.compile().unwrap())
    }

    /// A loopback channel: every slab goes straight into the zone, like a
    /// mux round trip with zero network.
    struct ZoneChannel<T: BulkElem>(Arc<BulkLandingZone<T>>);

    impl<T: BulkElem> Transport for ZoneChannel<T> {
        fn call(&self, request: Bytes) -> Result<Bytes, SidlError> {
            self.0.receive(request).map(Bytes::from)
        }
    }

    fn source_buffers(compiled: &CompiledPlan) -> Vec<Vec<f64>> {
        // Tag each element with a value derived from (rank, offset) so
        // misplaced scatters are visible.
        (0..compiled.src_ranks())
            .map(|r| {
                (0..compiled.src_count(r))
                    .map(|i| (r * 1000 + i) as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn streamed_redistribution_matches_in_process_apply() {
        let compiled = compiled_4_to_3(101);
        let zone = BulkLandingZone::<f64>::new(Arc::clone(&compiled), 7, 48);
        let channel = ZoneChannel(Arc::clone(&zone));
        let src = source_buffers(&compiled);
        for (rank, data) in src.iter().enumerate() {
            let mut sender = BulkRedistSender::<f64>::new(Arc::clone(&compiled), 7, 48, rank);
            sender.send(&channel, data).unwrap();
            assert!(sender.is_complete());
            // One slab at a time: header + at most one 48-byte-aligned chunk.
            assert!(sender.peak_buffer_bytes() <= BULK_SLAB_HEADER_LEN + 48);
        }
        assert!(zone.is_complete());
        let expected = compiled.apply(&src).unwrap();
        assert_eq!(zone.snapshot_buffers(), expected);
        assert_eq!(
            zone.metrics().bytes_landed(),
            compiled
                .transfers()
                .iter()
                .map(|t| (t.count() * 8) as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn replayed_chunks_are_idempotent_and_acks_carry_watermarks() {
        let compiled = compiled_4_to_3(40);
        let zone = BulkLandingZone::<f64>::new(Arc::clone(&compiled), 1, 16);
        let channel = ZoneChannel(Arc::clone(&zone));
        let src = source_buffers(&compiled);
        let mut sender = BulkRedistSender::<f64>::new(Arc::clone(&compiled), 1, 16, 0);
        sender.send(&channel, &src[0]).unwrap();
        let landed = zone.snapshot_buffers();
        // Stream rank 0 again from scratch: same bytes, same offsets.
        sender.reset();
        sender.send(&channel, &src[0]).unwrap();
        assert_eq!(zone.snapshot_buffers(), landed);
        assert!(
            sender.metrics().resumed_chunks() == 0,
            "reset is not resume"
        );
    }

    #[test]
    fn mismatched_generation_tag_transfer_and_total_are_typed() {
        let compiled = compiled_4_to_3(24);
        let zone = BulkLandingZone::<f64>::new(Arc::clone(&compiled), 5, 64);
        let total = compiled.wire_layout(8, 64).transfer_bytes(0);
        let mk = |generation: u64, transfer: u32, tag, total_bytes| {
            let h = SlabHeader {
                generation,
                transfer,
                tag,
                chunk_offset: 0,
                total_bytes,
            };
            let mut raw = vec![0u8; BULK_SLAB_HEADER_LEN + 8];
            h.encode_into(&mut raw);
            Bytes::from(raw)
        };
        let expect_type = |r: Result<Vec<u8>, SidlError>| match r {
            Err(SidlError::UserException { exception_type, .. }) => {
                assert_eq!(exception_type, BULK_EXCEPTION_TYPE)
            }
            other => panic!("expected bulk protocol error, got {other:?}"),
        };
        expect_type(zone.receive(mk(6, 0, cca_rpc::ElemTag::F64, total)));
        expect_type(zone.receive(mk(5, 999, cca_rpc::ElemTag::F64, total)));
        expect_type(zone.receive(mk(5, 0, cca_rpc::ElemTag::I64, total)));
        expect_type(zone.receive(mk(5, 0, cca_rpc::ElemTag::F64, total + 8)));
        // Nothing landed from any of those.
        assert_eq!(zone.metrics().chunks_landed(), 0);
        assert_eq!(zone.watermark(0), 0);
    }

    /// A channel that charges the shared clock and never delivers — a
    /// wedged receiver. Under a deadline the sender must surface
    /// `cca.rpc.DeadlineExceeded` instead of hanging, and keep its
    /// watermark so a later retry resumes.
    struct WedgedChannel {
        clock: Arc<MockClock>,
        charge_ns: u64,
    }

    impl Transport for WedgedChannel {
        fn call(&self, _request: Bytes) -> Result<Bytes, SidlError> {
            self.clock.advance_ns(self.charge_ns);
            Err(SidlError::user(
                cca_rpc::CONNECTION_EXCEPTION_TYPE,
                "receiver wedged, connection reset",
            ))
        }
    }

    #[test]
    fn wedged_receiver_becomes_deadline_exceeded_not_a_hang() {
        let compiled = compiled_4_to_3(64);
        let clock = MockClock::new();
        let wedged = Arc::new(WedgedChannel {
            clock: Arc::clone(&clock),
            charge_ns: 5_000_000,
        });
        let deadline = DeadlineTransport::new(wedged, 1_000_000, clock as Arc<dyn Clock>);
        let src = source_buffers(&compiled);
        let mut sender = BulkRedistSender::<f64>::new(Arc::clone(&compiled), 1, 32, 0);
        let err = sender.send(deadline.as_ref(), &src[0]).unwrap_err();
        match err {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, DEADLINE_EXCEPTION_TYPE)
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert_eq!(deadline.deadline_hits(), 1, "exactly one chunk was charged");
        assert!(!sender.is_complete());
        assert_eq!(
            sender.acked_through(0),
            0,
            "nothing acked, resume from zero"
        );
    }

    #[test]
    fn interrupted_stream_resumes_from_the_watermark() {
        let compiled = compiled_4_to_3(80);
        let zone = BulkLandingZone::<f64>::new(Arc::clone(&compiled), 2, 24);
        let src = source_buffers(&compiled);

        /// Fails every call after the first `allow`.
        struct Flaky<T: BulkElem> {
            inner: ZoneChannel<T>,
            allow: std::sync::atomic::AtomicU64,
        }
        impl<T: BulkElem> Transport for Flaky<T> {
            fn call(&self, request: Bytes) -> Result<Bytes, SidlError> {
                use std::sync::atomic::Ordering;
                let budget = self
                    .allow
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
                if budget.is_err() {
                    return Err(SidlError::user(
                        cca_rpc::CONNECTION_EXCEPTION_TYPE,
                        "mid-stream drop",
                    ));
                }
                self.inner.call(request)
            }
        }

        let mut sender = BulkRedistSender::<f64>::new(Arc::clone(&compiled), 2, 24, 1);
        let chunk_total: usize = {
            let layout = compiled.wire_layout(8, 24);
            compiled
                .transfers()
                .iter()
                .enumerate()
                .filter(|(_, t)| t.src_rank == 1)
                .map(|(i, _)| layout.chunk_count(i))
                .sum()
        };
        assert!(chunk_total >= 2, "topology must need several chunks");

        // First attempt: allow exactly one chunk through, then drop.
        let flaky = Flaky {
            inner: ZoneChannel(Arc::clone(&zone)),
            allow: std::sync::atomic::AtomicU64::new(1),
        };
        let err = sender.send(&flaky, &src[1]).unwrap_err();
        assert!(matches!(err, SidlError::UserException { .. }));
        assert!(!sender.is_complete());
        let after_first = sender.metrics().chunks_sent();
        assert_eq!(after_first, 1);

        // Retry over a healthy channel: resumes, never resends chunk 0.
        let healthy = ZoneChannel(Arc::clone(&zone));
        sender.send(&healthy, &src[1]).unwrap();
        assert!(sender.is_complete());
        assert_eq!(
            sender.metrics().chunks_sent() as usize,
            chunk_total,
            "resume sent exactly the missing chunks"
        );
        assert!(sender.metrics().resumed_chunks() > 0);

        // Landed data for rank 1's transfers matches the in-process path.
        let expected = compiled.apply(&src).unwrap();
        zone.with_buffers(|bufs| {
            for t in compiled.sends_from(1) {
                for (&s, &d) in t.src_offsets.iter().zip(t.dst_offsets.iter()) {
                    assert_eq!(bufs[t.dst_rank][d], src[1][s]);
                    assert_eq!(bufs[t.dst_rank][d], expected[t.dst_rank][d]);
                }
            }
        });
    }
}
