//! Supervised multi-process worker fleet (PR 9).
//!
//! The paper's frameworks run SPMD components inside one process per
//! rank; this module makes the framework the *parent* of that fleet. A
//! [`FleetSupervisor`] launches each rank as a child process (re-exec of
//! the current binary with `CCA_FLEET_*` env, or a scripted
//! [`MockLauncher`] under test). Children dial back over `tcp+mux://`
//! and register with a [`cca_rpc::FrameKind::Join`] handshake; after the
//! join, **the connection is the liveness signal**: a `kill -9` tears the
//! socket, the mux server reports [`SessionSink::disconnected`], and the
//! hub bumps the group *generation* — survivors parked in a collective
//! get a typed [`ParallelError::Interrupted`] instead of a hang, roll
//! back to the last committed checkpoint, and resynchronize with the
//! restarted rank.
//!
//! Pieces:
//!
//! * [`FleetHub`] — parent-side mailbox switchboard. Implements both the
//!   rpc [`Dispatcher`] (compact fleet ops: send/recv/checkpoint/
//!   restore/resync/result/lookup) and [`SessionSink`] (join/leave
//!   handshakes, death detection). All state is generation-tagged: a
//!   non-clean disconnect of a joined rank purges in-flight mail and
//!   staged checkpoints and bumps the generation, so no pre-death bytes
//!   can leak into the replayed epoch.
//! * [`HubLink`] — child-side [`WireLink`]: routes
//!   [`cca_parallel::Comm`] collectives through the hub with a
//!   long-poll recv, plus the checkpoint/restore/resync side-band.
//! * [`FleetSupervisor`] — launch, waitpid-style exit polling, per-rank
//!   [`CircuitBreaker`] quarantine, decorrelated-jitter
//!   [`RestartBackoff`] on a mockable [`Clock`], rejoin bookkeeping,
//!   and zombie-free [`FleetSupervisor::shutdown`].
//!
//! Provider labels follow incarnations: the hub's label registry
//! ([`FleetHub::resolve_provider`]) refuses entries registered by a dead
//! or superseded incarnation, closing the stale-label hole audited in
//! [`crate::connect`] (a `tcp+mux://` label from a dead process must not
//! satisfy a lookup).

use crate::framework::Framework;
use bytes::Bytes;
use cca_core::resilience::{BreakerPolicy, BreakerState, CircuitBreaker, Clock, SplitMix64};
use cca_core::ConfigEvent;
use cca_parallel::{Comm, ParallelError, WireLink, WireMsg};
use cca_rpc::transport::Dispatcher;
use cca_rpc::{MuxServer, MuxServerConfig, MuxTransport, SessionSink};
use cca_sidl::SidlError;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// Env var carrying the child's rank (presence marks a fleet child).
pub const FLEET_RANK_ENV: &str = "CCA_FLEET_RANK";
/// Env var carrying the fleet size.
pub const FLEET_SIZE_ENV: &str = "CCA_FLEET_SIZE";
/// Env var carrying the hub's `host:port`.
pub const FLEET_ADDR_ENV: &str = "CCA_FLEET_ADDR";
/// Env var carrying the child's incarnation number (1 = first launch).
pub const FLEET_INCARNATION_ENV: &str = "CCA_FLEET_INCARNATION";

/// The identity a fleet child reads from its environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetRankEnv {
    /// This child's rank in `0..size`.
    pub rank: u32,
    /// Fleet size.
    pub size: u32,
    /// Hub address to dial back to.
    pub addr: String,
    /// Incarnation (1 = first launch, bumped on every restart).
    pub incarnation: u32,
}

/// Reads the fleet identity from the environment; `None` means this
/// process is not a supervised fleet child.
pub fn fleet_rank_env() -> Option<FleetRankEnv> {
    let rank = std::env::var(FLEET_RANK_ENV).ok()?.parse().ok()?;
    let size = std::env::var(FLEET_SIZE_ENV).ok()?.parse().ok()?;
    let addr = std::env::var(FLEET_ADDR_ENV).ok()?;
    let incarnation = std::env::var(FLEET_INCARNATION_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    Some(FleetRankEnv {
        rank,
        size,
        addr,
        incarnation,
    })
}

/// Per-rank backoff seed: decorrelates rank restart schedules from one
/// fleet seed so deaths don't produce lock-step restart convoys.
pub fn rank_backoff_seed(fleet_seed: u64, rank: usize) -> u64 {
    SplitMix64::new(fleet_seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

// ---------------------------------------------------------------------------
// Wire ops between HubLink (child) and FleetHub (parent)
// ---------------------------------------------------------------------------

/// Compact fleet op codec. Every request is `[op u8]` + LE fields; every
/// reply opens `[status u8][generation u64]` so a child learns about a
/// rollback from *any* op it happens to be in.
pub(crate) mod ops {
    pub const OP_SEND: u8 = 1;
    pub const OP_RECV: u8 = 2;
    pub const OP_CHECKPOINT: u8 = 3;
    pub const OP_RESTORE: u8 = 4;
    pub const OP_RESYNC: u8 = 5;
    pub const OP_RESULT: u8 = 6;
    pub const OP_LOOKUP: u8 = 7;

    /// Op succeeded; any payload follows the status header.
    pub const ST_OK: u8 = 0;
    /// Nothing available (empty mailbox, no committed checkpoint, peers
    /// not yet resynced, unknown label) — poll again.
    pub const ST_EMPTY: u8 = 1;
    /// The request carried a stale generation; the header's generation
    /// is the one to adopt before replaying.
    pub const ST_STALE: u8 = 2;

    /// Join accepted.
    pub const JOIN_OK: u8 = 0;
    /// Rank outside `0..size`.
    pub const JOIN_BAD_RANK: u8 = 1;
    /// The rank already has a live session.
    pub const JOIN_DUPLICATE: u8 = 2;
    /// Incarnation not newer than the last join — a stale process.
    pub const JOIN_STALE_INCARNATION: u8 = 3;

    /// Bounds-checked little-endian cursor.
    pub struct Cur<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Cur<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            Cur { buf, pos: 0 }
        }

        fn take(&mut self, n: usize) -> Option<&'a [u8]> {
            let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
            self.pos += n;
            Some(s)
        }

        pub fn u8(&mut self) -> Option<u8> {
            self.take(1).map(|s| s[0])
        }

        pub fn u16(&mut self) -> Option<u16> {
            self.take(2)
                .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
        }

        pub fn u32(&mut self) -> Option<u32> {
            self.take(4)
                .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
        }

        pub fn u64(&mut self) -> Option<u64> {
            self.take(8)
                .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
        }

        pub fn bytes32(&mut self) -> Option<&'a [u8]> {
            let len = self.u32()? as usize;
            self.take(len)
        }

        pub fn bytes16(&mut self) -> Option<&'a [u8]> {
            let len = self.u16()? as usize;
            self.take(len)
        }

        pub fn done(&self) -> bool {
            self.pos == self.buf.len()
        }
    }

    pub fn put_bytes32(out: &mut Vec<u8>, b: &[u8]) {
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        out.extend_from_slice(b);
    }

    pub fn send_req(
        rank: u32,
        gen: u64,
        dst: u32,
        context: u32,
        tag: u64,
        bytes: &[u8],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(30 + bytes.len());
        out.push(OP_SEND);
        out.extend_from_slice(&rank.to_le_bytes());
        out.extend_from_slice(&gen.to_le_bytes());
        out.extend_from_slice(&dst.to_le_bytes());
        out.extend_from_slice(&context.to_le_bytes());
        out.extend_from_slice(&tag.to_le_bytes());
        put_bytes32(&mut out, bytes);
        out
    }

    pub fn recv_req(rank: u32, gen: u64, wait_ms: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        out.push(OP_RECV);
        out.extend_from_slice(&rank.to_le_bytes());
        out.extend_from_slice(&gen.to_le_bytes());
        out.extend_from_slice(&wait_ms.to_le_bytes());
        out
    }

    pub fn checkpoint_req(rank: u32, gen: u64, step: u64, bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(25 + bytes.len());
        out.push(OP_CHECKPOINT);
        out.extend_from_slice(&rank.to_le_bytes());
        out.extend_from_slice(&gen.to_le_bytes());
        out.extend_from_slice(&step.to_le_bytes());
        put_bytes32(&mut out, bytes);
        out
    }

    pub fn plain_req(op: u8, rank: u32, gen: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(13);
        out.push(op);
        out.extend_from_slice(&rank.to_le_bytes());
        out.extend_from_slice(&gen.to_le_bytes());
        out
    }

    pub fn result_req(rank: u32, gen: u64, bytes: &[u8]) -> Vec<u8> {
        let mut out = plain_req(OP_RESULT, rank, gen);
        put_bytes32(&mut out, bytes);
        out
    }

    pub fn lookup_req(label: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + label.len());
        out.push(OP_LOOKUP);
        out.extend_from_slice(&(label.len() as u16).to_le_bytes());
        out.extend_from_slice(label.as_bytes());
        out
    }

    pub fn encode_join_hello(rank: u32, incarnation: u32, labels: &[String]) -> Vec<u8> {
        let mut out = Vec::with_capacity(10 + labels.iter().map(|l| l.len() + 2).sum::<usize>());
        out.extend_from_slice(&rank.to_le_bytes());
        out.extend_from_slice(&incarnation.to_le_bytes());
        out.extend_from_slice(&(labels.len() as u16).to_le_bytes());
        for l in labels {
            out.extend_from_slice(&(l.len() as u16).to_le_bytes());
            out.extend_from_slice(l.as_bytes());
        }
        out
    }

    pub struct JoinAck {
        pub status: u8,
        pub generation: u64,
        pub session: u64,
        pub size: u32,
        /// `u64::MAX` encodes "no committed checkpoint yet".
        pub committed_step: u64,
    }

    pub fn encode_join_ack(ack: &JoinAck) -> Vec<u8> {
        let mut out = Vec::with_capacity(29);
        out.push(ack.status);
        out.extend_from_slice(&ack.generation.to_le_bytes());
        out.extend_from_slice(&ack.session.to_le_bytes());
        out.extend_from_slice(&ack.size.to_le_bytes());
        out.extend_from_slice(&ack.committed_step.to_le_bytes());
        out
    }

    pub fn decode_join_ack(buf: &[u8]) -> Option<JoinAck> {
        let mut c = Cur::new(buf);
        let ack = JoinAck {
            status: c.u8()?,
            generation: c.u64()?,
            session: c.u64()?,
            size: c.u32()?,
            committed_step: c.u64()?,
        };
        c.done().then_some(ack)
    }

    pub fn encode_leave(rank: u32, incarnation: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        out.extend_from_slice(&rank.to_le_bytes());
        out.extend_from_slice(&incarnation.to_le_bytes());
        out
    }
}

// ---------------------------------------------------------------------------
// FleetHub — the parent-side switchboard
// ---------------------------------------------------------------------------

struct HubMsg {
    src: u32,
    context: u32,
    tag: u64,
    bytes: Vec<u8>,
}

struct RankSlot {
    /// Live mux-connection id (the session), `None` when down.
    session: Option<u64>,
    /// Incarnation of the live (or most recent) session.
    incarnation: u32,
    /// Last generation this rank acknowledged via resync.
    resynced_gen: u64,
    /// Rank sent a clean Leave; its disconnect is not a death.
    departed: bool,
    /// Successful joins (1 = initial join, >1 = rejoined after restart).
    joins: u32,
}

struct HubState {
    generation: u64,
    ranks: Vec<RankSlot>,
    mailboxes: Vec<VecDeque<HubMsg>>,
    staged: Vec<Option<(u64, Vec<u8>)>>,
    committed: Option<(u64, Vec<Vec<u8>>)>,
    results: Vec<Option<Vec<u8>>>,
    providers: HashMap<String, (u32, u32)>,
    conn_rank: HashMap<u64, u32>,
    log: Vec<String>,
}

/// Parent-side fleet switchboard: generation-tagged mailboxes, the
/// staged→committed checkpoint store, the resync barrier, final results,
/// and the incarnation-checked provider-label registry.
///
/// Implements [`Dispatcher`] for the compact fleet ops and
/// [`SessionSink`] for join/leave/disconnect, so one
/// [`MuxServer`] serves both.
pub struct FleetHub {
    size: usize,
    state: Mutex<HubState>,
    cv: Condvar,
}

/// Server-side cap on one recv long-poll; children re-poll, so this
/// bounds how long a dispatch thread is parked, not the recv itself.
const MAX_SERVER_WAIT: Duration = Duration::from_millis(15);

impl FleetHub {
    /// A hub for a fleet of `size` ranks at generation 0.
    pub fn new(size: usize) -> Arc<Self> {
        assert!(size > 0, "fleet size must be positive");
        Arc::new(FleetHub {
            size,
            state: Mutex::new(HubState {
                generation: 0,
                ranks: (0..size)
                    .map(|_| RankSlot {
                        session: None,
                        incarnation: 0,
                        resynced_gen: 0,
                        departed: false,
                        joins: 0,
                    })
                    .collect(),
                mailboxes: (0..size).map(|_| VecDeque::new()).collect(),
                staged: vec![None; size],
                committed: None,
                results: vec![None; size],
                providers: HashMap::new(),
                conn_rank: HashMap::new(),
                log: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Fleet size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current group generation (bumped on every non-clean disconnect).
    pub fn generation(&self) -> u64 {
        self.state.lock().unwrap().generation
    }

    /// Whether `rank` has a live joined session.
    pub fn present(&self, rank: usize) -> bool {
        let st = self.state.lock().unwrap();
        st.ranks.get(rank).is_some_and(|r| r.session.is_some())
    }

    /// Whether `rank` left cleanly (Leave frame, not a death).
    pub fn departed(&self, rank: usize) -> bool {
        let st = self.state.lock().unwrap();
        st.ranks.get(rank).is_some_and(|r| r.departed)
    }

    /// Latest join for `rank`: `(incarnation, join_count)`, `None` if the
    /// rank never joined.
    pub fn latest_join(&self, rank: usize) -> Option<(u32, u32)> {
        let st = self.state.lock().unwrap();
        let r = st.ranks.get(rank)?;
        (r.joins > 0).then_some((r.incarnation, r.joins))
    }

    /// Step of the last fully committed checkpoint.
    pub fn committed_step(&self) -> Option<u64> {
        self.state
            .lock()
            .unwrap()
            .committed
            .as_ref()
            .map(|(s, _)| *s)
    }

    /// All ranks' final results, once every rank has deposited one.
    pub fn all_results(&self) -> Option<Vec<Vec<u8>>> {
        let st = self.state.lock().unwrap();
        if st.results.iter().all(|r| r.is_some()) {
            Some(st.results.iter().map(|r| r.clone().unwrap()).collect())
        } else {
            None
        }
    }

    /// Resolves a provider label, refusing entries registered by a dead
    /// or superseded incarnation. This is the regression guard for the
    /// stale-label hole: a `tcp+mux://` label registered by incarnation
    /// *k* must stop resolving the instant that process dies, and must
    /// resolve again once incarnation *k+1* re-registers it.
    pub fn resolve_provider(&self, label: &str) -> Option<(u32, u32)> {
        let st = self.state.lock().unwrap();
        let &(rank, inc) = st.providers.get(label)?;
        let slot = st.ranks.get(rank as usize)?;
        (slot.session.is_some() && !slot.departed && slot.incarnation == inc).then_some((rank, inc))
    }

    /// The hub's structured event-log lines (JSONL), oldest first.
    pub fn log_lines(&self) -> Vec<String> {
        self.state.lock().unwrap().log.clone()
    }

    fn log(st: &mut HubState, event: &str, rank: u32, detail: String) {
        st.log.push(format!(
            "{{\"src\":\"hub\",\"event\":\"{event}\",\"rank\":{rank},\"generation\":{},{detail}}}",
            st.generation
        ));
    }

    fn bad(msg: &str) -> SidlError {
        SidlError::user("cca.fleet.BadOp", msg)
    }

    fn header(status: u8, generation: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(9);
        out.push(status);
        out.extend_from_slice(&generation.to_le_bytes());
        out
    }

    fn check_rank(&self, rank: u32) -> Result<usize, SidlError> {
        let rank = rank as usize;
        if rank >= self.size {
            return Err(Self::bad("rank out of range"));
        }
        Ok(rank)
    }

    fn op_send(&self, c: &mut ops::Cur<'_>) -> Result<Vec<u8>, SidlError> {
        let (rank, gen, dst, context, tag) =
            (|| Some((c.u32()?, c.u64()?, c.u32()?, c.u32()?, c.u64()?)))()
                .ok_or_else(|| Self::bad("truncated send"))?;
        let bytes = c
            .bytes32()
            .ok_or_else(|| Self::bad("truncated send payload"))?;
        let src = self.check_rank(rank)?;
        let dst = self.check_rank(dst)?;
        let mut st = self.state.lock().unwrap();
        if gen != st.generation {
            return Ok(Self::header(ops::ST_STALE, st.generation));
        }
        st.mailboxes[dst].push_back(HubMsg {
            src: src as u32,
            context,
            tag,
            bytes: bytes.to_vec(),
        });
        cca_obs::fleet().record_message_relayed();
        let gen = st.generation;
        drop(st);
        self.cv.notify_all();
        Ok(Self::header(ops::ST_OK, gen))
    }

    fn op_recv(&self, c: &mut ops::Cur<'_>) -> Result<Vec<u8>, SidlError> {
        let (rank, gen, wait_ms) = (|| Some((c.u32()?, c.u64()?, c.u32()?)))()
            .ok_or_else(|| Self::bad("truncated recv"))?;
        let rank = self.check_rank(rank)?;
        let deadline =
            Instant::now() + Duration::from_millis(u64::from(wait_ms)).min(MAX_SERVER_WAIT);
        let mut st = self.state.lock().unwrap();
        loop {
            if gen != st.generation {
                return Ok(Self::header(ops::ST_STALE, st.generation));
            }
            if let Some(msg) = st.mailboxes[rank].pop_front() {
                let mut out = Self::header(ops::ST_OK, st.generation);
                out.extend_from_slice(&msg.src.to_le_bytes());
                out.extend_from_slice(&msg.context.to_le_bytes());
                out.extend_from_slice(&msg.tag.to_le_bytes());
                ops::put_bytes32(&mut out, &msg.bytes);
                return Ok(out);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(Self::header(ops::ST_EMPTY, st.generation));
            }
            st = self.cv.wait_timeout(st, deadline - now).unwrap().0;
        }
    }

    fn op_checkpoint(&self, c: &mut ops::Cur<'_>) -> Result<Vec<u8>, SidlError> {
        let (rank, gen, step) = (|| Some((c.u32()?, c.u64()?, c.u64()?)))()
            .ok_or_else(|| Self::bad("truncated checkpoint"))?;
        let bytes = c
            .bytes32()
            .ok_or_else(|| Self::bad("truncated checkpoint payload"))?;
        let rank = self.check_rank(rank)?;
        let mut st = self.state.lock().unwrap();
        if gen != st.generation {
            return Ok(Self::header(ops::ST_STALE, st.generation));
        }
        st.staged[rank] = Some((step, bytes.to_vec()));
        let all_at_step = st
            .staged
            .iter()
            .all(|s| s.as_ref().is_some_and(|(sstep, _)| *sstep == step));
        if all_at_step {
            let blobs = st
                .staged
                .iter_mut()
                .map(|s| s.take().map(|(_, b)| b).unwrap())
                .collect();
            st.committed = Some((step, blobs));
            cca_obs::fleet().record_checkpoint_committed();
            Self::log(
                &mut st,
                "checkpoint_committed",
                rank as u32,
                format!("\"step\":{step}"),
            );
        }
        Ok(Self::header(ops::ST_OK, st.generation))
    }

    fn op_restore(&self, c: &mut ops::Cur<'_>) -> Result<Vec<u8>, SidlError> {
        let (rank, gen) =
            (|| Some((c.u32()?, c.u64()?)))().ok_or_else(|| Self::bad("truncated restore"))?;
        let rank = self.check_rank(rank)?;
        let st = self.state.lock().unwrap();
        if gen != st.generation {
            return Ok(Self::header(ops::ST_STALE, st.generation));
        }
        match &st.committed {
            Some((step, blobs)) => {
                let mut out = Self::header(ops::ST_OK, st.generation);
                out.extend_from_slice(&step.to_le_bytes());
                ops::put_bytes32(&mut out, &blobs[rank]);
                Ok(out)
            }
            None => Ok(Self::header(ops::ST_EMPTY, st.generation)),
        }
    }

    fn op_resync(&self, c: &mut ops::Cur<'_>) -> Result<Vec<u8>, SidlError> {
        let (rank, gen) =
            (|| Some((c.u32()?, c.u64()?)))().ok_or_else(|| Self::bad("truncated resync"))?;
        let rank = self.check_rank(rank)?;
        let mut st = self.state.lock().unwrap();
        if gen != st.generation {
            return Ok(Self::header(ops::ST_STALE, st.generation));
        }
        st.ranks[rank].resynced_gen = gen;
        let ready = st
            .ranks
            .iter()
            .all(|r| r.departed || (r.session.is_some() && r.resynced_gen == gen));
        let status = if ready { ops::ST_OK } else { ops::ST_EMPTY };
        if ready {
            drop(st);
            self.cv.notify_all();
            return Ok(Self::header(status, gen));
        }
        Ok(Self::header(status, st.generation))
    }

    fn op_result(&self, c: &mut ops::Cur<'_>) -> Result<Vec<u8>, SidlError> {
        let (rank, gen) =
            (|| Some((c.u32()?, c.u64()?)))().ok_or_else(|| Self::bad("truncated result"))?;
        let bytes = c
            .bytes32()
            .ok_or_else(|| Self::bad("truncated result payload"))?;
        let rank = self.check_rank(rank)?;
        let mut st = self.state.lock().unwrap();
        if gen != st.generation {
            return Ok(Self::header(ops::ST_STALE, st.generation));
        }
        st.results[rank] = Some(bytes.to_vec());
        Self::log(
            &mut st,
            "result",
            rank as u32,
            format!("\"len\":{}", bytes.len()),
        );
        Ok(Self::header(ops::ST_OK, st.generation))
    }

    fn op_lookup(&self, c: &mut ops::Cur<'_>) -> Result<Vec<u8>, SidlError> {
        let label = c.bytes16().ok_or_else(|| Self::bad("truncated lookup"))?;
        let label = std::str::from_utf8(label).map_err(|_| Self::bad("label not utf-8"))?;
        let resolved = self.resolve_provider(label);
        let st = self.state.lock().unwrap();
        match resolved {
            Some((rank, inc)) => {
                let mut out = Self::header(ops::ST_OK, st.generation);
                out.extend_from_slice(&rank.to_le_bytes());
                out.extend_from_slice(&inc.to_le_bytes());
                Ok(out)
            }
            None => Ok(Self::header(ops::ST_EMPTY, st.generation)),
        }
    }
}

impl Dispatcher for FleetHub {
    fn dispatch(&self, request: Bytes) -> Result<Bytes, SidlError> {
        let mut c = ops::Cur::new(&request);
        let op = c.u8().ok_or_else(|| Self::bad("empty fleet op"))?;
        let reply = match op {
            ops::OP_SEND => self.op_send(&mut c)?,
            ops::OP_RECV => self.op_recv(&mut c)?,
            ops::OP_CHECKPOINT => self.op_checkpoint(&mut c)?,
            ops::OP_RESTORE => self.op_restore(&mut c)?,
            ops::OP_RESYNC => self.op_resync(&mut c)?,
            ops::OP_RESULT => self.op_result(&mut c)?,
            ops::OP_LOOKUP => self.op_lookup(&mut c)?,
            other => return Err(Self::bad(&format!("unknown fleet op {other}"))),
        };
        Ok(Bytes::from(reply))
    }
}

impl SessionSink for FleetHub {
    fn join(&self, session: u64, hello: Bytes) -> Result<Vec<u8>, SidlError> {
        let mut c = ops::Cur::new(&hello);
        let rank = c.u32().ok_or_else(|| Self::bad("truncated join"))?;
        let incarnation = c.u32().ok_or_else(|| Self::bad("truncated join"))?;
        let nlabels = c.u16().ok_or_else(|| Self::bad("truncated join"))?;
        let mut labels = Vec::with_capacity(nlabels as usize);
        for _ in 0..nlabels {
            let l = c
                .bytes16()
                .ok_or_else(|| Self::bad("truncated join label"))?;
            labels.push(
                std::str::from_utf8(l)
                    .map_err(|_| Self::bad("label not utf-8"))?
                    .to_string(),
            );
        }

        let mut st = self.state.lock().unwrap();
        let refuse = |st: &HubState, status: u8| {
            ops::encode_join_ack(&ops::JoinAck {
                status,
                generation: st.generation,
                session,
                size: self.size as u32,
                committed_step: u64::MAX,
            })
        };
        if rank as usize >= self.size {
            return Ok(refuse(&st, ops::JOIN_BAD_RANK));
        }
        let slot = &st.ranks[rank as usize];
        if slot.session.is_some() {
            return Ok(refuse(&st, ops::JOIN_DUPLICATE));
        }
        if incarnation <= slot.incarnation {
            return Ok(refuse(&st, ops::JOIN_STALE_INCARNATION));
        }
        let slot = &mut st.ranks[rank as usize];
        slot.session = Some(session);
        slot.incarnation = incarnation;
        slot.departed = false;
        slot.joins += 1;
        st.conn_rank.insert(session, rank);
        for label in &labels {
            st.providers.insert(label.clone(), (rank, incarnation));
        }
        let committed_step = st.committed.as_ref().map_or(u64::MAX, |(s, _)| *s);
        Self::log(
            &mut st,
            "join",
            rank,
            format!(
                "\"incarnation\":{incarnation},\"session\":{session},\"labels\":{}",
                labels.len()
            ),
        );
        let ack = ops::encode_join_ack(&ops::JoinAck {
            status: ops::JOIN_OK,
            generation: st.generation,
            session,
            size: self.size as u32,
            committed_step,
        });
        drop(st);
        self.cv.notify_all();
        Ok(ack)
    }

    fn leave(&self, session: u64, goodbye: Bytes) -> Result<Vec<u8>, SidlError> {
        let mut c = ops::Cur::new(&goodbye);
        let rank = c.u32().ok_or_else(|| Self::bad("truncated leave"))?;
        let incarnation = c.u32().ok_or_else(|| Self::bad("truncated leave"))?;
        let mut st = self.state.lock().unwrap();
        let matches = st.conn_rank.get(&session) == Some(&rank)
            && (rank as usize) < self.size
            && st.ranks[rank as usize].incarnation == incarnation;
        if matches {
            st.conn_rank.remove(&session);
            let slot = &mut st.ranks[rank as usize];
            slot.session = None;
            slot.departed = true;
            Self::log(
                &mut st,
                "leave",
                rank,
                format!("\"incarnation\":{incarnation}"),
            );
            drop(st);
            self.cv.notify_all();
            Ok(vec![0])
        } else {
            Ok(vec![1])
        }
    }

    fn disconnected(&self, session: u64) {
        let mut st = self.state.lock().unwrap();
        let Some(rank) = st.conn_rank.remove(&session) else {
            return; // refused join, already-left, or superseded session
        };
        let slot = &mut st.ranks[rank as usize];
        if slot.session != Some(session) {
            return;
        }
        let incarnation = slot.incarnation;
        slot.session = None;
        st.generation += 1;
        for mb in &mut st.mailboxes {
            mb.clear();
        }
        for s in &mut st.staged {
            *s = None;
        }
        let departed: Vec<bool> = st.ranks.iter().map(|r| r.departed).collect();
        for (r, res) in st.results.iter_mut().enumerate() {
            if !departed[r] {
                *res = None;
            }
        }
        cca_obs::fleet().record_generation_bump();
        Self::log(
            &mut st,
            "rank_death",
            rank,
            format!("\"incarnation\":{incarnation},\"session\":{session}"),
        );
        let gen = st.generation;
        drop(st);
        self.cv.notify_all();
        cca_obs::flight::record_incident_with_metrics(
            "fleet.rank_death",
            &format!(
                "rank {rank} incarnation {incarnation} session {session} died; group rolled to generation {gen}"
            ),
            Some(&cca_obs::fleet().snapshot().to_json()),
        );
    }
}

// ---------------------------------------------------------------------------
// HubLink — the child-side WireLink
// ---------------------------------------------------------------------------

/// Child-side endpoint: dials the hub over `tcp+mux://`, performs the
/// Join handshake, and implements [`WireLink`] so a
/// [`Comm`] built by [`HubLink::comm`] routes every collective through
/// the hub's mailboxes. One socket (`with_connections(1)`) on purpose:
/// the connection doubles as the liveness signal, so a transparent
/// re-dial would mask a death from the supervisor.
///
/// Every reply carries the group generation. A `ST_STALE` reply means a
/// peer died and the group rolled back: the link adopts the new
/// generation, raises its `interrupted` flag, and surfaces
/// [`ParallelError::Interrupted`] — which panics out of the collective
/// via `CommReduce`'s expect, to be caught by the worker's
/// `catch_unwind` rollback loop.
pub struct HubLink {
    transport: MuxTransport,
    rank: u32,
    size: u32,
    incarnation: u32,
    session: u64,
    gen: AtomicU64,
    committed_step_at_join: Option<u64>,
    park_timeout: Duration,
    poll: Duration,
    interrupted: AtomicBool,
}

fn rpc_fatal(e: SidlError) -> ParallelError {
    ParallelError::Codec(format!("fleet hub rpc failed: {e}"))
}

impl HubLink {
    /// Dials `addr`, joins as `rank` with `incarnation`, registering
    /// `labels` in the hub's provider registry. `park_timeout` bounds
    /// every recv/resync park (a deadline, never a hang).
    pub fn connect(
        addr: &str,
        rank: u32,
        incarnation: u32,
        labels: &[String],
        park_timeout: Duration,
    ) -> Result<Arc<Self>, ParallelError> {
        let transport = MuxTransport::new(addr)
            .with_connections(1)
            .with_io_timeout(Duration::from_secs(30));
        let hello = ops::encode_join_hello(rank, incarnation, labels);
        let ack = transport
            .submit_join(Bytes::from(hello))
            .map_err(rpc_fatal)?
            .wait()
            .map_err(rpc_fatal)?;
        let ack = ops::decode_join_ack(&ack)
            .ok_or_else(|| ParallelError::Codec("malformed join ack".into()))?;
        if ack.status != ops::JOIN_OK {
            return Err(ParallelError::Codec(format!(
                "fleet join refused with status {} (rank {rank} incarnation {incarnation})",
                ack.status
            )));
        }
        Ok(Arc::new(HubLink {
            transport,
            rank,
            size: ack.size,
            incarnation,
            session: ack.session,
            gen: AtomicU64::new(ack.generation),
            committed_step_at_join: (ack.committed_step != u64::MAX).then_some(ack.committed_step),
            park_timeout,
            poll: Duration::from_millis(10),
            interrupted: AtomicBool::new(false),
        }))
    }

    /// This link's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Fleet size reported by the hub at join.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// This process's incarnation number.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Session id the hub assigned at join.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Last generation observed in any hub reply.
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// Committed checkpoint step advertised in the join ack (a restarted
    /// rank uses this to know a restore is available before asking).
    pub fn committed_step_at_join(&self) -> Option<u64> {
        self.committed_step_at_join
    }

    /// True once any op observed a generation bump; cleared by a
    /// successful [`HubLink::resync`]. The worker's rollback loop checks
    /// this after catching a collective panic to distinguish fleet
    /// interruption (recoverable) from a genuine defect (fatal).
    pub fn interrupted(&self) -> bool {
        self.interrupted.load(Ordering::Acquire)
    }

    /// A communicator routing collectives through this link.
    pub fn comm(self: &Arc<Self>) -> Comm {
        Comm::over_wire(
            Arc::clone(self) as Arc<dyn WireLink>,
            self.rank as usize,
            self.size as usize,
        )
    }

    /// One round-trip to the hub: returns `(status, generation, payload
    /// after the 9-byte header)`. Adopts the replied generation and, on
    /// `ST_STALE`, raises the interrupted flag.
    fn call(&self, req: Vec<u8>) -> Result<(u8, u64, Bytes), ParallelError> {
        let reply = self
            .transport
            .submit(Bytes::from(req))
            .map_err(rpc_fatal)?
            .wait()
            .map_err(rpc_fatal)?;
        let mut c = ops::Cur::new(&reply);
        let status = c
            .u8()
            .ok_or_else(|| ParallelError::Codec("empty fleet reply".into()))?;
        let generation = c
            .u64()
            .ok_or_else(|| ParallelError::Codec("truncated fleet reply".into()))?;
        self.gen.store(generation, Ordering::Release);
        if status == ops::ST_STALE {
            self.interrupted.store(true, Ordering::Release);
        }
        Ok((status, generation, reply.slice(9..)))
    }

    /// Stages this rank's checkpoint for `step`; the hub promotes it to
    /// committed once every rank staged the same step.
    pub fn checkpoint(&self, step: u64, bytes: &[u8]) -> Result<(), ParallelError> {
        let gen = self.generation();
        let (status, generation, _) =
            self.call(ops::checkpoint_req(self.rank, gen, step, bytes))?;
        match status {
            ops::ST_OK => Ok(()),
            _ => Err(ParallelError::Interrupted { generation }),
        }
    }

    /// Fetches this rank's slice of the last committed checkpoint.
    pub fn restore(&self) -> Result<Option<(u64, Vec<u8>)>, ParallelError> {
        let gen = self.generation();
        let (status, generation, rest) =
            self.call(ops::plain_req(ops::OP_RESTORE, self.rank, gen))?;
        match status {
            ops::ST_OK => {
                let mut c = ops::Cur::new(&rest);
                let step = c
                    .u64()
                    .ok_or_else(|| ParallelError::Codec("truncated restore reply".into()))?;
                let bytes = c
                    .bytes32()
                    .ok_or_else(|| ParallelError::Codec("truncated restore payload".into()))?;
                Ok(Some((step, bytes.to_vec())))
            }
            ops::ST_EMPTY => Ok(None),
            _ => Err(ParallelError::Interrupted { generation }),
        }
    }

    /// Blocks (bounded by the park timeout) until every live rank has
    /// acknowledged the current generation, adopting newer generations
    /// as they appear. Clears the interrupted flag on success and
    /// returns the generation the group settled on.
    pub fn resync(&self) -> Result<u64, ParallelError> {
        let deadline = Instant::now() + self.park_timeout;
        loop {
            let gen = self.generation();
            let (status, generation, _) =
                self.call(ops::plain_req(ops::OP_RESYNC, self.rank, gen))?;
            match status {
                ops::ST_OK => {
                    self.interrupted.store(false, Ordering::Release);
                    return Ok(generation);
                }
                // ST_EMPTY: peers still rolling back; ST_STALE: another
                // death mid-resync — `call` already adopted the new
                // generation, so just go around again.
                _ => {
                    if Instant::now() >= deadline {
                        return Err(ParallelError::Timeout {
                            waited_ms: self.park_timeout.as_millis() as u64,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// Deposits this rank's final result with the hub.
    pub fn deposit_result(&self, bytes: &[u8]) -> Result<(), ParallelError> {
        let gen = self.generation();
        let (status, generation, _) = self.call(ops::result_req(self.rank, gen, bytes))?;
        match status {
            ops::ST_OK => Ok(()),
            _ => Err(ParallelError::Interrupted { generation }),
        }
    }

    /// Resolves a provider label through the hub's incarnation-checked
    /// registry: `Some((rank, incarnation))` only while that incarnation
    /// is alive.
    pub fn lookup_provider(&self, label: &str) -> Result<Option<(u32, u32)>, ParallelError> {
        let (status, _, rest) = self.call(ops::lookup_req(label))?;
        if status != ops::ST_OK {
            return Ok(None);
        }
        let mut c = ops::Cur::new(&rest);
        let rank = c
            .u32()
            .ok_or_else(|| ParallelError::Codec("truncated lookup reply".into()))?;
        let inc = c
            .u32()
            .ok_or_else(|| ParallelError::Codec("truncated lookup reply".into()))?;
        Ok(Some((rank, inc)))
    }

    /// Clean departure: tells the hub this rank is done so its
    /// disconnect is not treated as a death.
    pub fn leave(&self) -> Result<(), ParallelError> {
        let goodbye = ops::encode_leave(self.rank, self.incarnation);
        self.transport
            .submit_leave(Bytes::from(goodbye))
            .map_err(rpc_fatal)?
            .wait()
            .map_err(rpc_fatal)?;
        Ok(())
    }
}

impl WireLink for HubLink {
    fn send(
        &self,
        dst_world: usize,
        context: u32,
        tag: u64,
        bytes: Vec<u8>,
    ) -> Result<(), ParallelError> {
        let gen = self.generation();
        let (status, generation, _) = self.call(ops::send_req(
            self.rank,
            gen,
            dst_world as u32,
            context,
            tag,
            &bytes,
        ))?;
        match status {
            ops::ST_OK => Ok(()),
            _ => Err(ParallelError::Interrupted { generation }),
        }
    }

    fn recv(&self) -> Result<WireMsg, ParallelError> {
        let deadline = Instant::now() + self.park_timeout;
        loop {
            let gen = self.generation();
            let wait_ms = self.poll.as_millis() as u32;
            let (status, generation, rest) = self.call(ops::recv_req(self.rank, gen, wait_ms))?;
            match status {
                ops::ST_OK => {
                    let mut c = ops::Cur::new(&rest);
                    let src = c
                        .u32()
                        .ok_or_else(|| ParallelError::Codec("truncated recv reply".into()))?;
                    let context = c
                        .u32()
                        .ok_or_else(|| ParallelError::Codec("truncated recv reply".into()))?;
                    let tag = c
                        .u64()
                        .ok_or_else(|| ParallelError::Codec("truncated recv reply".into()))?;
                    let bytes = c
                        .bytes32()
                        .ok_or_else(|| ParallelError::Codec("truncated recv payload".into()))?;
                    return Ok(WireMsg {
                        src_world: src as usize,
                        context,
                        tag,
                        bytes: bytes.to_vec(),
                    });
                }
                ops::ST_EMPTY => {
                    if Instant::now() >= deadline {
                        return Err(ParallelError::Timeout {
                            waited_ms: self.park_timeout.as_millis() as u64,
                        });
                    }
                }
                _ => return Err(ParallelError::Interrupted { generation }),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Restart backoff
// ---------------------------------------------------------------------------

/// Decorrelated-jitter restart backoff, the same draw as
/// `cca_core::resilience::BackoffSchedule` (each wait uniform in
/// `[base, prev*3]` clamped to `[base, cap]`) but resettable: a rank
/// that reaches healthy gets its schedule rewound so the next death
/// starts from the base again.
#[derive(Debug, Clone)]
pub struct RestartBackoff {
    seed: u64,
    base: u64,
    cap: u64,
    rng: SplitMix64,
    prev: u64,
}

impl RestartBackoff {
    /// A schedule drawing from `[base_ns, cap_ns]`, seeded for
    /// determinism (see [`rank_backoff_seed`]).
    pub fn new(base_ns: u64, cap_ns: u64, seed: u64) -> Self {
        let base = base_ns.max(1);
        RestartBackoff {
            seed,
            base,
            cap: cap_ns.max(base),
            rng: SplitMix64::new(seed),
            prev: base,
        }
    }

    /// The next restart delay in nanoseconds.
    pub fn next_delay_ns(&mut self) -> u64 {
        let upper = self.prev.saturating_mul(3).max(self.base + 1);
        let draw = self.base + self.rng.next_below(upper - self.base);
        let wait = draw.clamp(self.base, self.cap);
        self.prev = wait;
        wait
    }

    /// Rewinds the schedule to its initial state (rank became healthy).
    pub fn reset(&mut self) {
        self.rng = SplitMix64::new(self.seed);
        self.prev = self.base;
    }
}

// ---------------------------------------------------------------------------
// Launchers
// ---------------------------------------------------------------------------

/// What to launch: one rank incarnation of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSpec {
    /// Rank in `0..size`.
    pub rank: u32,
    /// Incarnation (1 = first launch).
    pub incarnation: u32,
    /// Fleet size.
    pub size: u32,
    /// Hub address the child must dial back to.
    pub addr: String,
}

/// A launched child the supervisor can poll, kill, and reap. `kill`
/// must be idempotent and `wait_exit` must actually reap (no zombies).
pub trait ProcessHandle: Send {
    /// OS pid or synthetic id, for logs.
    fn id(&self) -> u64;
    /// Non-blocking exit poll: `Some(status)` once the child exited.
    /// Signal deaths are reported as the negated signal number
    /// (`kill -9` → `-9`), mirroring waitpid conventions.
    fn poll_exit(&mut self) -> Option<i32>;
    /// Delivers SIGKILL (or the mock equivalent).
    fn kill(&mut self);
    /// Blocks until exit and reaps, returning the status.
    fn wait_exit(&mut self) -> i32;
}

/// Launches rank child processes.
pub trait RankLauncher: Send + Sync {
    /// Starts one rank incarnation.
    fn launch(&self, spec: &LaunchSpec) -> std::io::Result<Box<dyn ProcessHandle>>;
}

/// Re-execs the current binary with the `CCA_FLEET_*` environment set;
/// the child detects fleet mode via [`fleet_rank_env`].
pub struct ExecLauncher {
    exe: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl ExecLauncher {
    /// A launcher re-execing `std::env::current_exe()`.
    pub fn current_exe() -> std::io::Result<Self> {
        Ok(ExecLauncher {
            exe: std::env::current_exe()?,
            args: Vec::new(),
            envs: Vec::new(),
        })
    }

    /// Appends a command-line argument for every child.
    pub fn with_arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Sets an extra environment variable for every child.
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }
}

fn exit_code(status: std::process::ExitStatus) -> i32 {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return -sig;
        }
    }
    status.code().unwrap_or(-1)
}

struct ChildHandle {
    child: std::process::Child,
}

impl ProcessHandle for ChildHandle {
    fn id(&self) -> u64 {
        u64::from(self.child.id())
    }

    fn poll_exit(&mut self) -> Option<i32> {
        match self.child.try_wait() {
            Ok(Some(status)) => Some(exit_code(status)),
            Ok(None) => None,
            Err(_) => Some(-1),
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
    }

    fn wait_exit(&mut self) -> i32 {
        self.child.wait().map(exit_code).unwrap_or(-1)
    }
}

impl RankLauncher for ExecLauncher {
    fn launch(&self, spec: &LaunchSpec) -> std::io::Result<Box<dyn ProcessHandle>> {
        let mut cmd = std::process::Command::new(&self.exe);
        cmd.args(&self.args)
            .env(FLEET_RANK_ENV, spec.rank.to_string())
            .env(FLEET_SIZE_ENV, spec.size.to_string())
            .env(FLEET_ADDR_ENV, &spec.addr)
            .env(FLEET_INCARNATION_ENV, spec.incarnation.to_string());
        for (k, v) in &self.envs {
            cmd.env(k, v);
        }
        Ok(Box::new(ChildHandle {
            child: cmd.spawn()?,
        }))
    }
}

/// One scripted mock child (tests): exits when told to.
pub struct MockProcess {
    /// Rank this process was launched for.
    pub rank: u32,
    /// Incarnation it was launched as.
    pub incarnation: u32,
    exit: Mutex<Option<i32>>,
    killed: AtomicBool,
}

impl MockProcess {
    /// Scripts this process to exit with `status` (e.g. `-9`).
    pub fn exit_with(&self, status: i32) {
        *self.exit.lock().unwrap() = Some(status);
    }

    /// Whether the supervisor delivered a kill.
    pub fn was_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }
}

/// In-test launcher recording every spawn as a scriptable
/// [`MockProcess`] — no OS processes, fully deterministic under
/// `MockClock`.
#[derive(Default)]
pub struct MockLauncher {
    spawned: Mutex<Vec<Arc<MockProcess>>>,
}

impl MockLauncher {
    /// An empty mock launcher.
    pub fn new() -> Arc<Self> {
        Arc::new(MockLauncher::default())
    }

    /// Every process launched so far, in launch order.
    pub fn spawned(&self) -> Vec<Arc<MockProcess>> {
        self.spawned.lock().unwrap().clone()
    }

    /// The most recent launch for `rank`.
    pub fn last_for_rank(&self, rank: u32) -> Option<Arc<MockProcess>> {
        self.spawned
            .lock()
            .unwrap()
            .iter()
            .rev()
            .find(|p| p.rank == rank)
            .cloned()
    }
}

struct MockHandle {
    proc: Arc<MockProcess>,
}

impl ProcessHandle for MockHandle {
    fn id(&self) -> u64 {
        u64::from(self.proc.rank) << 32 | u64::from(self.proc.incarnation)
    }

    fn poll_exit(&mut self) -> Option<i32> {
        *self.proc.exit.lock().unwrap()
    }

    fn kill(&mut self) {
        self.proc.killed.store(true, Ordering::Release);
        let mut exit = self.proc.exit.lock().unwrap();
        if exit.is_none() {
            *exit = Some(-9);
        }
    }

    fn wait_exit(&mut self) -> i32 {
        loop {
            if let Some(status) = *self.proc.exit.lock().unwrap() {
                return status;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl RankLauncher for MockLauncher {
    fn launch(&self, spec: &LaunchSpec) -> std::io::Result<Box<dyn ProcessHandle>> {
        let proc = Arc::new(MockProcess {
            rank: spec.rank,
            incarnation: spec.incarnation,
            exit: Mutex::new(None),
            killed: AtomicBool::new(false),
        });
        self.spawned.lock().unwrap().push(Arc::clone(&proc));
        Ok(Box::new(MockHandle { proc }))
    }
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

/// One entry in the supervisor's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEvent {
    /// A rank incarnation was launched.
    Launched {
        /// Rank launched.
        rank: u32,
        /// Incarnation launched.
        incarnation: u32,
        /// Supervisor clock time, ns.
        at_ns: u64,
    },
    /// A running rank passed its health window.
    Healthy {
        /// Rank that became healthy.
        rank: u32,
        /// Its incarnation.
        incarnation: u32,
        /// Supervisor clock time, ns.
        at_ns: u64,
    },
    /// A rank exited without a clean departure.
    Died {
        /// Rank that died.
        rank: u32,
        /// Incarnation that died.
        incarnation: u32,
        /// Exit status (negated signal for signal deaths).
        status: i32,
        /// Supervisor clock time, ns.
        at_ns: u64,
    },
    /// A restart was scheduled under backoff.
    RestartScheduled {
        /// Rank to restart.
        rank: u32,
        /// The incarnation the restart will launch.
        incarnation: u32,
        /// Backoff delay before the launch, ns.
        delay_ns: u64,
        /// Supervisor clock time, ns.
        at_ns: u64,
    },
    /// A restarted rank completed the hub join handshake.
    Rejoined {
        /// Rank that rejoined.
        rank: u32,
        /// Its new incarnation.
        incarnation: u32,
        /// Supervisor clock time, ns.
        at_ns: u64,
    },
    /// A rank stopped for good (clean exit, departure, or shutdown).
    Stopped {
        /// Rank that stopped.
        rank: u32,
        /// Final exit status.
        status: i32,
        /// Supervisor clock time, ns.
        at_ns: u64,
    },
}

impl FleetEvent {
    /// One JSONL line for the supervisor event log.
    pub fn to_json(&self) -> String {
        match self {
            FleetEvent::Launched { rank, incarnation, at_ns } => format!(
                "{{\"src\":\"supervisor\",\"event\":\"launched\",\"rank\":{rank},\"incarnation\":{incarnation},\"at_ns\":{at_ns}}}"
            ),
            FleetEvent::Healthy { rank, incarnation, at_ns } => format!(
                "{{\"src\":\"supervisor\",\"event\":\"healthy\",\"rank\":{rank},\"incarnation\":{incarnation},\"at_ns\":{at_ns}}}"
            ),
            FleetEvent::Died { rank, incarnation, status, at_ns } => format!(
                "{{\"src\":\"supervisor\",\"event\":\"died\",\"rank\":{rank},\"incarnation\":{incarnation},\"status\":{status},\"at_ns\":{at_ns}}}"
            ),
            FleetEvent::RestartScheduled { rank, incarnation, delay_ns, at_ns } => format!(
                "{{\"src\":\"supervisor\",\"event\":\"restart_scheduled\",\"rank\":{rank},\"incarnation\":{incarnation},\"delay_ns\":{delay_ns},\"at_ns\":{at_ns}}}"
            ),
            FleetEvent::Rejoined { rank, incarnation, at_ns } => format!(
                "{{\"src\":\"supervisor\",\"event\":\"rejoined\",\"rank\":{rank},\"incarnation\":{incarnation},\"at_ns\":{at_ns}}}"
            ),
            FleetEvent::Stopped { rank, status, at_ns } => format!(
                "{{\"src\":\"supervisor\",\"event\":\"stopped\",\"rank\":{rank},\"status\":{status},\"at_ns\":{at_ns}}}"
            ),
        }
    }
}

/// Fleet tuning. Defaults suit the in-repo integration tests: fast
/// restarts, short health window.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of ranks.
    pub size: usize,
    /// Hub bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Fleet seed: mixes into per-rank backoff jitter streams.
    pub seed: u64,
    /// Backoff base, ns.
    pub base_backoff_ns: u64,
    /// Backoff cap, ns.
    pub max_backoff_ns: u64,
    /// A restarted rank counts healthy after surviving this long.
    pub healthy_after_ns: u64,
    /// Require a completed hub join (not just survival) for healthy;
    /// mock-launcher tests turn this off since nothing ever dials in.
    pub require_join_for_healthy: bool,
}

impl FleetConfig {
    /// Defaults for a fleet of `size` ranks.
    pub fn new(size: usize) -> Self {
        FleetConfig {
            size,
            addr: "127.0.0.1:0".to_string(),
            seed: 0x5eed_f1ee,
            base_backoff_ns: 50_000_000,
            max_backoff_ns: 2_000_000_000,
            healthy_after_ns: 200_000_000,
            require_join_for_healthy: true,
        }
    }
}

enum SlotState {
    Idle,
    Running {
        handle: Box<dyn ProcessHandle>,
        started_ns: u64,
        healthy: bool,
    },
    Waiting {
        restart_at_ns: u64,
    },
    Stopped {
        status: i32,
    },
}

struct Slot {
    state: SlotState,
    incarnation: u32,
    backoff: RestartBackoff,
    breaker: CircuitBreaker,
    /// Highest incarnation whose hub join we already turned into a
    /// Rejoined event.
    seen_join_inc: u32,
}

/// Launches and supervises the rank fleet: exit polling, per-rank
/// circuit-breaker quarantine, decorrelated-jitter restarts, rejoin
/// bookkeeping, and zombie-free shutdown. Drive it with
/// [`FleetSupervisor::tick`] under a [`MockClock`]
/// (deterministic tests) or [`FleetSupervisor::start_monitor`] under the
/// [`SystemClock`] (real fleets).
///
/// [`MockClock`]: cca_core::resilience::MockClock
/// [`SystemClock`]: cca_core::resilience::SystemClock
pub struct FleetSupervisor {
    config: FleetConfig,
    hub: Arc<FleetHub>,
    server: Arc<MuxServer>,
    launcher: Arc<dyn RankLauncher>,
    clock: Arc<dyn Clock>,
    slots: Mutex<Vec<Slot>>,
    events: Mutex<Vec<FleetEvent>>,
    framework: Mutex<Option<Weak<Framework>>>,
    stop: AtomicBool,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl FleetSupervisor {
    /// Binds the hub server and prepares (but does not launch) the
    /// fleet. Dispatch threads scale with fleet size so parked recv
    /// long-polls can't starve sends.
    pub fn new(
        config: FleetConfig,
        launcher: Arc<dyn RankLauncher>,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<Arc<Self>> {
        let hub = FleetHub::new(config.size);
        let server = MuxServer::bind_with(
            config.addr.as_str(),
            Arc::clone(&hub) as Arc<dyn Dispatcher>,
            MuxServerConfig {
                dispatch_threads: config.size * 2 + 2,
                ..MuxServerConfig::default()
            },
        )?;
        server.set_session_sink(Arc::clone(&hub) as Arc<dyn SessionSink>);
        let slots = (0..config.size)
            .map(|rank| Slot {
                state: SlotState::Idle,
                incarnation: 0,
                backoff: RestartBackoff::new(
                    config.base_backoff_ns,
                    config.max_backoff_ns,
                    rank_backoff_seed(config.seed, rank),
                ),
                breaker: CircuitBreaker::new(
                    BreakerPolicy::new(1, (config.base_backoff_ns / 2).max(1)),
                    Arc::clone(&clock),
                ),
                seen_join_inc: 0,
            })
            .collect();
        Ok(Arc::new(FleetSupervisor {
            config,
            hub,
            server,
            launcher,
            clock,
            slots: Mutex::new(slots),
            events: Mutex::new(Vec::new()),
            framework: Mutex::new(None),
            stop: AtomicBool::new(false),
            monitor: Mutex::new(None),
        }))
    }

    /// The hub's actual bound address (`host:port`).
    pub fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }

    /// The fleet hub.
    pub fn hub(&self) -> &Arc<FleetHub> {
        &self.hub
    }

    /// A copy of the supervision event log.
    pub fn events(&self) -> Vec<FleetEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Current breaker state for `rank`'s restart quarantine.
    pub fn breaker_state(&self, rank: usize) -> BreakerState {
        self.slots.lock().unwrap()[rank].breaker.state()
    }

    /// Routes `RankDied`/`RankRejoined` config events into a framework's
    /// event service.
    pub fn attach_framework(&self, framework: &Arc<Framework>) {
        *self.framework.lock().unwrap() = Some(Arc::downgrade(framework));
    }

    fn emit_event(&self, event: ConfigEvent) {
        let fw = self
            .framework
            .lock()
            .unwrap()
            .as_ref()
            .and_then(Weak::upgrade);
        if let Some(fw) = fw {
            fw.emit(event);
        }
    }

    fn push_event(&self, ev: FleetEvent) {
        self.events.lock().unwrap().push(ev);
    }

    fn launch_slot(&self, rank: usize, slot: &mut Slot, now: u64) {
        let incarnation = slot.incarnation + 1;
        let spec = LaunchSpec {
            rank: rank as u32,
            incarnation,
            size: self.config.size as u32,
            addr: self.addr(),
        };
        match self.launcher.launch(&spec) {
            Ok(handle) => {
                slot.incarnation = incarnation;
                slot.state = SlotState::Running {
                    handle,
                    started_ns: now,
                    healthy: false,
                };
                cca_obs::fleet().record_launch();
                self.push_event(FleetEvent::Launched {
                    rank: rank as u32,
                    incarnation,
                    at_ns: now,
                });
            }
            Err(_) => {
                // Spawn failure behaves like an instant death: backoff
                // and retry, the breaker keeps the cadence honest.
                slot.breaker.record_failure();
                let delay = slot.backoff.next_delay_ns();
                slot.state = SlotState::Waiting {
                    restart_at_ns: now.saturating_add(delay),
                };
                self.push_event(FleetEvent::RestartScheduled {
                    rank: rank as u32,
                    incarnation: incarnation + 1,
                    delay_ns: delay,
                    at_ns: now,
                });
            }
        }
    }

    /// Launches every rank at incarnation 1.
    pub fn start(&self) {
        let now = self.clock.now_ns();
        let mut slots = self.slots.lock().unwrap();
        for (rank, slot) in slots.iter_mut().enumerate() {
            if matches!(slot.state, SlotState::Idle) {
                self.launch_slot(rank, slot, now);
            }
        }
    }

    /// One supervision pass: reap exits, schedule restarts, admit
    /// probes through each rank's breaker, record health and rejoins.
    /// Deterministic: all timing comes from the injected [`Clock`].
    pub fn tick(&self) {
        let now = self.clock.now_ns();
        let mut slots = self.slots.lock().unwrap();
        for (rank, slot) in slots.iter_mut().enumerate() {
            match &mut slot.state {
                SlotState::Running {
                    handle,
                    started_ns,
                    healthy,
                } => {
                    if let Some(status) = handle.poll_exit() {
                        let incarnation = slot.incarnation;
                        if self.stop.load(Ordering::Acquire)
                            || self.hub.departed(rank)
                            || status == 0
                        {
                            slot.state = SlotState::Stopped { status };
                            self.push_event(FleetEvent::Stopped {
                                rank: rank as u32,
                                status,
                                at_ns: now,
                            });
                            continue;
                        }
                        cca_obs::fleet().record_death();
                        slot.breaker.record_failure();
                        let delay = slot.backoff.next_delay_ns();
                        slot.state = SlotState::Waiting {
                            restart_at_ns: now.saturating_add(delay),
                        };
                        cca_obs::fleet().record_restart();
                        self.push_event(FleetEvent::Died {
                            rank: rank as u32,
                            incarnation,
                            status,
                            at_ns: now,
                        });
                        self.push_event(FleetEvent::RestartScheduled {
                            rank: rank as u32,
                            incarnation: incarnation + 1,
                            delay_ns: delay,
                            at_ns: now,
                        });
                        self.emit_event(ConfigEvent::RankDied {
                            rank: rank as u64,
                            incarnation: u64::from(incarnation),
                            generation: self.hub.generation(),
                        });
                        continue;
                    }
                    if let Some((jinc, _)) = self.hub.latest_join(rank) {
                        if jinc == slot.incarnation && slot.seen_join_inc < jinc {
                            slot.seen_join_inc = jinc;
                            if jinc > 1 {
                                cca_obs::fleet().record_rejoin();
                                self.push_event(FleetEvent::Rejoined {
                                    rank: rank as u32,
                                    incarnation: jinc,
                                    at_ns: now,
                                });
                                self.emit_event(ConfigEvent::RankRejoined {
                                    rank: rank as u64,
                                    incarnation: u64::from(jinc),
                                    generation: self.hub.generation(),
                                });
                            }
                        }
                    }
                    let joined_ok = !self.config.require_join_for_healthy || self.hub.present(rank);
                    if !*healthy
                        && now.saturating_sub(*started_ns) >= self.config.healthy_after_ns
                        && joined_ok
                    {
                        *healthy = true;
                        slot.breaker.record_success();
                        slot.backoff.reset();
                        self.push_event(FleetEvent::Healthy {
                            rank: rank as u32,
                            incarnation: slot.incarnation,
                            at_ns: now,
                        });
                    }
                }
                SlotState::Waiting { restart_at_ns } => {
                    if now >= *restart_at_ns
                        && !self.stop.load(Ordering::Acquire)
                        && slot.breaker.admit()
                    {
                        self.launch_slot(rank, slot, now);
                    }
                }
                SlotState::Idle | SlotState::Stopped { .. } => {}
            }
        }
    }

    /// Spawns a real-time monitor thread calling [`FleetSupervisor::tick`]
    /// every `interval` until shutdown.
    pub fn start_monitor(self: &Arc<Self>, interval: Duration) {
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("cca-fleet-monitor".into())
            .spawn(move || {
                while !me.stop.load(Ordering::Acquire) {
                    me.tick();
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn fleet monitor thread");
        *self.monitor.lock().unwrap() = Some(handle);
    }

    /// Delivers SIGKILL to `rank`'s current incarnation (fault
    /// injection). Returns false if the rank is not running.
    pub fn kill_rank(&self, rank: usize) -> bool {
        let mut slots = self.slots.lock().unwrap();
        match &mut slots[rank].state {
            SlotState::Running { handle, .. } => {
                handle.kill();
                true
            }
            _ => false,
        }
    }

    /// Stops supervision, kills and reaps every child (collecting exit
    /// statuses — zero zombies), shuts the hub server down, and writes
    /// the event log for forensics. Returns `(rank, status)` for every
    /// rank that ever ran; `None` for ranks with no live process.
    pub fn shutdown(&self) -> Vec<(usize, Option<i32>)> {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.monitor.lock().unwrap().take() {
            let _ = handle.join();
        }
        let now = self.clock.now_ns();
        let mut statuses = Vec::with_capacity(self.config.size);
        {
            let mut slots = self.slots.lock().unwrap();
            for (rank, slot) in slots.iter_mut().enumerate() {
                let status = match &mut slot.state {
                    SlotState::Running { handle, .. } => {
                        handle.kill();
                        let status = handle.wait_exit();
                        self.push_event(FleetEvent::Stopped {
                            rank: rank as u32,
                            status,
                            at_ns: now,
                        });
                        Some(status)
                    }
                    SlotState::Stopped { status } => Some(*status),
                    SlotState::Idle | SlotState::Waiting { .. } => None,
                };
                if let Some(s) = status {
                    slot.state = SlotState::Stopped { status: s };
                }
                statuses.push((rank, status));
            }
        }
        self.server.shutdown();
        self.write_event_log();
        statuses
    }

    /// Writes the supervisor + hub event log as JSONL under
    /// `CCA_FLIGHT_DIR` (no-op when unset). CI uploads this next to the
    /// flight-recorder incidents on a red fleet lane.
    pub fn write_event_log(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("CCA_FLIGHT_DIR")?;
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("fleet_supervisor_{}.jsonl", std::process::id()));
        let mut lines: Vec<String> = self
            .events
            .lock()
            .unwrap()
            .iter()
            .map(FleetEvent::to_json)
            .collect();
        lines.extend(self.hub.log_lines());
        lines.push(cca_obs::fleet().snapshot().to_json());
        std::fs::write(&path, lines.join("\n") + "\n").ok()?;
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::resilience::{MockClock, RetryPolicy};

    fn hello(rank: u32, inc: u32, labels: &[&str]) -> Bytes {
        let labels: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
        Bytes::from(ops::encode_join_hello(rank, inc, &labels))
    }

    fn join_ok(hub: &FleetHub, session: u64, rank: u32, inc: u32, labels: &[&str]) -> ops::JoinAck {
        let ack = hub
            .join(session, hello(rank, inc, labels))
            .expect("join rpc");
        let ack = ops::decode_join_ack(&ack).expect("join ack shape");
        assert_eq!(ack.status, ops::JOIN_OK, "join refused");
        ack
    }

    fn dispatch(hub: &FleetHub, req: Vec<u8>) -> (u8, u64, Vec<u8>) {
        let reply = hub.dispatch(Bytes::from(req)).expect("dispatch");
        let mut c = ops::Cur::new(&reply);
        let status = c.u8().unwrap();
        let generation = c.u64().unwrap();
        (status, generation, reply[9..].to_vec())
    }

    #[test]
    fn restart_backoff_matches_core_schedule_and_resets() {
        let (base, cap, seed) = (1_000_000u64, 50_000_000u64, 0xfeed_beefu64);
        let core: Vec<u64> = RetryPolicy::new(16, base, cap)
            .with_jitter_seed(seed)
            .schedule()
            .take(8)
            .collect();
        let mut mine = RestartBackoff::new(base, cap, seed);
        let drawn: Vec<u64> = (0..8).map(|_| mine.next_delay_ns()).collect();
        assert_eq!(drawn, core, "fleet backoff must mirror the core schedule");
        assert!(drawn.iter().all(|&d| (base..=cap).contains(&d)));

        mine.reset();
        assert_eq!(mine.next_delay_ns(), core[0], "reset rewinds the stream");

        let mut other = RestartBackoff::new(base, cap, seed ^ 1);
        let other_drawn: Vec<u64> = (0..8).map(|_| other.next_delay_ns()).collect();
        assert_ne!(drawn, other_drawn, "different seeds draw different jitter");

        // Per-rank seeds decorrelate too.
        assert_ne!(rank_backoff_seed(42, 0), rank_backoff_seed(42, 1));
        assert_eq!(rank_backoff_seed(42, 3), rank_backoff_seed(42, 3));
    }

    #[test]
    fn hub_relays_mail_and_bumps_generation_on_death() {
        let hub = FleetHub::new(2);
        join_ok(&hub, 1, 0, 1, &[]);
        join_ok(&hub, 2, 1, 1, &[]);
        assert!(hub.present(0) && hub.present(1));

        // rank 0 -> rank 1
        let (st, gen, _) = dispatch(&hub, ops::send_req(0, 0, 1, 7, 0x42, b"hi"));
        assert_eq!((st, gen), (ops::ST_OK, 0));
        let (st, _, rest) = dispatch(&hub, ops::recv_req(1, 0, 0));
        assert_eq!(st, ops::ST_OK);
        let mut c = ops::Cur::new(&rest);
        assert_eq!(c.u32().unwrap(), 0, "src");
        assert_eq!(c.u32().unwrap(), 7, "context");
        assert_eq!(c.u64().unwrap(), 0x42, "tag");
        assert_eq!(c.bytes32().unwrap(), b"hi");

        // Empty mailbox returns ST_EMPTY, not a hang.
        let (st, _, _) = dispatch(&hub, ops::recv_req(1, 0, 0));
        assert_eq!(st, ops::ST_EMPTY);

        // Queue a message, then kill rank 0: generation bumps and the
        // pre-death message must NOT survive into the new epoch.
        let (st, _, _) = dispatch(&hub, ops::send_req(0, 0, 1, 0, 1, b"stale"));
        assert_eq!(st, ops::ST_OK);
        hub.disconnected(1);
        assert_eq!(hub.generation(), 1);
        assert!(!hub.present(0));

        let (st, gen, _) = dispatch(&hub, ops::recv_req(1, 0, 0));
        assert_eq!(
            (st, gen),
            (ops::ST_STALE, 1),
            "old-generation op is refused"
        );
        let (st, _, _) = dispatch(&hub, ops::recv_req(1, 1, 0));
        assert_eq!(st, ops::ST_EMPTY, "pre-death mail was purged");

        // Rejoin with a newer incarnation at the new generation.
        let ack = join_ok(&hub, 3, 0, 2, &[]);
        assert_eq!(ack.generation, 1);
        assert_eq!(hub.latest_join(0), Some((2, 2)));
    }

    #[test]
    fn hub_join_refusals_cover_bad_rank_duplicate_and_stale_incarnation() {
        let hub = FleetHub::new(2);
        let ack = hub.join(1, hello(9, 1, &[])).unwrap();
        assert_eq!(
            ops::decode_join_ack(&ack).unwrap().status,
            ops::JOIN_BAD_RANK
        );

        join_ok(&hub, 2, 0, 1, &[]);
        let ack = hub.join(3, hello(0, 2, &[])).unwrap();
        assert_eq!(
            ops::decode_join_ack(&ack).unwrap().status,
            ops::JOIN_DUPLICATE,
            "a live rank refuses a second session"
        );

        hub.disconnected(2);
        let ack = hub.join(4, hello(0, 1, &[])).unwrap();
        assert_eq!(
            ops::decode_join_ack(&ack).unwrap().status,
            ops::JOIN_STALE_INCARNATION,
            "a restarted rank must present a newer incarnation"
        );
    }

    #[test]
    fn hub_checkpoints_commit_when_all_ranks_stage_the_step() {
        let hub = FleetHub::new(2);
        join_ok(&hub, 1, 0, 1, &[]);
        join_ok(&hub, 2, 1, 1, &[]);

        let (st, _, _) = dispatch(&hub, ops::checkpoint_req(0, 0, 3, b"r0s3"));
        assert_eq!(st, ops::ST_OK);
        assert_eq!(hub.committed_step(), None, "half-staged is not committed");
        let (st, _, _) = dispatch(&hub, ops::checkpoint_req(1, 0, 3, b"r1s3"));
        assert_eq!(st, ops::ST_OK);
        assert_eq!(hub.committed_step(), Some(3));

        let (st, _, rest) = dispatch(&hub, ops::plain_req(ops::OP_RESTORE, 1, 0));
        assert_eq!(st, ops::ST_OK);
        let mut c = ops::Cur::new(&rest);
        assert_eq!(c.u64().unwrap(), 3);
        assert_eq!(c.bytes32().unwrap(), b"r1s3");

        // Death purges staged but keeps committed (it's the rollback target).
        let (st, _, _) = dispatch(&hub, ops::checkpoint_req(0, 0, 4, b"r0s4"));
        assert_eq!(st, ops::ST_OK);
        hub.disconnected(2);
        assert_eq!(hub.committed_step(), Some(3));
        let (st, _, rest) = dispatch(&hub, ops::plain_req(ops::OP_RESTORE, 0, 1));
        assert_eq!(st, ops::ST_OK);
        let mut c = ops::Cur::new(&rest);
        assert_eq!(c.u64().unwrap(), 3, "restore serves the pre-death commit");
        assert_eq!(c.bytes32().unwrap(), b"r0s3");
    }

    #[test]
    fn hub_resync_gates_on_every_live_rank_acknowledging_the_generation() {
        let hub = FleetHub::new(2);
        join_ok(&hub, 1, 0, 1, &[]);
        join_ok(&hub, 2, 1, 1, &[]);
        hub.disconnected(1); // gen -> 1
        join_ok(&hub, 3, 0, 2, &[]);

        let (st, _, _) = dispatch(&hub, ops::plain_req(ops::OP_RESYNC, 0, 1));
        assert_eq!(st, ops::ST_EMPTY, "rank 1 has not acked generation 1 yet");
        let (st, _, _) = dispatch(&hub, ops::plain_req(ops::OP_RESYNC, 1, 1));
        assert_eq!(st, ops::ST_OK);
        let (st, _, _) = dispatch(&hub, ops::plain_req(ops::OP_RESYNC, 0, 1));
        assert_eq!(st, ops::ST_OK);
        // A stale-generation resync is told the truth, not deadlocked.
        let (st, gen, _) = dispatch(&hub, ops::plain_req(ops::OP_RESYNC, 0, 0));
        assert_eq!((st, gen), (ops::ST_STALE, 1));
    }

    #[test]
    fn stale_provider_labels_do_not_resolve_across_incarnations() {
        let hub = FleetHub::new(2);
        let label = "tcp+mux://127.0.0.1:5555/solver.port";
        join_ok(&hub, 1, 0, 1, &[label]);
        assert_eq!(hub.resolve_provider(label), Some((0, 1)));

        // The process dies: its label must stop resolving immediately,
        // even though the registry entry still exists.
        hub.disconnected(1);
        assert_eq!(
            hub.resolve_provider(label),
            None,
            "a dead incarnation's tcp+mux label must not satisfy a lookup"
        );
        let (st, _, _) = dispatch(&hub, ops::lookup_req(label));
        assert_eq!(st, ops::ST_EMPTY);

        // The restarted incarnation re-registers at join; lookups resolve
        // to the NEW incarnation only.
        join_ok(&hub, 2, 0, 2, &[label]);
        assert_eq!(hub.resolve_provider(label), Some((0, 2)));
        let (st, _, rest) = dispatch(&hub, ops::lookup_req(label));
        assert_eq!(st, ops::ST_OK);
        let mut c = ops::Cur::new(&rest);
        assert_eq!((c.u32().unwrap(), c.u32().unwrap()), (0, 2));
    }

    fn mock_fleet(size: usize) -> (Arc<FleetSupervisor>, Arc<MockLauncher>, Arc<MockClock>) {
        let mut config = FleetConfig::new(size);
        config.seed = 42;
        config.base_backoff_ns = 10_000_000; // 10ms
        config.max_backoff_ns = 80_000_000;
        config.healthy_after_ns = 5_000_000; // 5ms
        config.require_join_for_healthy = false; // mock children never dial in
        let launcher = MockLauncher::new();
        let clock = MockClock::new();
        let sup = FleetSupervisor::new(
            config,
            Arc::clone(&launcher) as Arc<dyn RankLauncher>,
            clock.clone() as Arc<dyn Clock>,
        )
        .expect("bind hub server");
        (sup, launcher, clock)
    }

    #[test]
    fn supervisor_restart_schedule_is_deterministic_on_the_mock_clock() {
        let (sup, launcher, clock) = mock_fleet(2);
        sup.start();
        assert_eq!(launcher.spawned().len(), 2);

        // Health window passes: breakers succeed, backoffs rewind.
        clock.advance_ns(5_000_000);
        sup.tick();
        assert!(sup
            .events()
            .iter()
            .any(|e| matches!(e, FleetEvent::Healthy { rank: 0, .. })));

        // kill -9 rank 0: the restart must land exactly one jitter draw
        // later — the same draw the core schedule produces for this seed.
        let expected =
            RestartBackoff::new(10_000_000, 80_000_000, rank_backoff_seed(42, 0)).next_delay_ns();
        launcher.last_for_rank(0).unwrap().exit_with(-9);
        sup.tick();
        assert!(matches!(sup.breaker_state(0), BreakerState::Open));
        assert_eq!(launcher.spawned().len(), 2, "no instant restart");

        clock.advance_ns(expected - 1);
        sup.tick();
        assert_eq!(launcher.spawned().len(), 2, "one ns early: still waiting");

        clock.advance_ns(1);
        sup.tick();
        let spawned = launcher.spawned();
        assert_eq!(
            spawned.len(),
            3,
            "restart fires exactly at the backoff deadline"
        );
        assert_eq!((spawned[2].rank, spawned[2].incarnation), (0, 2));
        assert!(sup.events().iter().any(|e| matches!(
            e,
            FleetEvent::RestartScheduled { rank: 0, incarnation: 2, delay_ns, .. } if *delay_ns == expected
        )));
        sup.shutdown();
    }

    #[test]
    fn double_crash_during_half_open_probe_reopens_the_breaker() {
        let (sup, launcher, clock) = mock_fleet(1);
        sup.start();
        clock.advance_ns(5_000_000);
        sup.tick(); // healthy; backoff rewound

        let mut schedule = RestartBackoff::new(10_000_000, 80_000_000, rank_backoff_seed(42, 0));
        let first = schedule.next_delay_ns();
        let second = schedule.next_delay_ns();

        // Crash 1: quarantined, restart (the half-open probe) launches.
        launcher.last_for_rank(0).unwrap().exit_with(-9);
        sup.tick();
        clock.advance_ns(first);
        sup.tick();
        assert_eq!(launcher.spawned().len(), 2);
        assert!(
            matches!(sup.breaker_state(0), BreakerState::HalfOpen),
            "the restarted rank is a half-open probe until it proves healthy"
        );

        // Crash 2 BEFORE the health window: the probe failed, the breaker
        // reopens, and the second backoff draw (a wider window) gates the
        // next attempt.
        launcher.last_for_rank(0).unwrap().exit_with(-9);
        sup.tick();
        assert!(matches!(sup.breaker_state(0), BreakerState::Open));
        assert_eq!(launcher.spawned().len(), 2);

        clock.advance_ns(second);
        sup.tick();
        let spawned = launcher.spawned();
        assert_eq!(
            spawned.len(),
            3,
            "third incarnation launches after the second draw"
        );
        assert_eq!((spawned[2].rank, spawned[2].incarnation), (0, 3));

        // Surviving the health window closes the breaker again.
        clock.advance_ns(5_000_000);
        sup.tick();
        assert!(matches!(sup.breaker_state(0), BreakerState::Closed));
        sup.shutdown();
    }

    #[test]
    fn shutdown_reaps_every_child_and_collects_statuses() {
        let (sup, launcher, clock) = mock_fleet(3);
        sup.start();
        clock.advance_ns(5_000_000);
        sup.tick();

        let statuses = sup.shutdown();
        assert_eq!(statuses.len(), 3);
        for (rank, status) in &statuses {
            assert_eq!(
                *status,
                Some(-9),
                "rank {rank} must be killed and reaped with its signal status"
            );
        }
        assert!(
            launcher.spawned().iter().all(|p| p.was_killed()),
            "every child saw the kill — no orphan survives shutdown"
        );
        let stopped = sup
            .events()
            .iter()
            .filter(|e| matches!(e, FleetEvent::Stopped { .. }))
            .count();
        assert_eq!(stopped, 3);
        // Idempotent: a second shutdown reports the same terminal states.
        assert_eq!(sup.shutdown(), statuses);
    }

    #[test]
    fn clean_exit_after_departure_is_not_restarted() {
        let (sup, launcher, clock) = mock_fleet(1);
        sup.start();
        clock.advance_ns(5_000_000);
        sup.tick();
        // A clean zero exit stops the slot without scheduling a restart.
        launcher.last_for_rank(0).unwrap().exit_with(0);
        sup.tick();
        clock.advance_ns(1_000_000_000);
        sup.tick();
        assert_eq!(launcher.spawned().len(), 1, "clean exits are terminal");
        assert!(sup.events().iter().any(|e| matches!(
            e,
            FleetEvent::Stopped {
                rank: 0,
                status: 0,
                ..
            }
        )));
        sup.shutdown();
    }
}
