//! A topic-based event service.
//!
//! §6 of the paper discusses the JavaBeans model, where "components notify
//! other listener components by generating events", and notes the proposed
//! CORBA 3.0 component model adopted *both* events and provides/uses. The
//! CCA eventually standardized an event service alongside ports; this
//! module provides it: named topics carrying [`TypeMap`] payloads,
//! delivered synchronously to subscribers in registration order.
//!
//! Events complement ports: ports are for *calls* (request/response,
//! §6.1), events for *notifications* with zero or more interested parties
//! — the same fan-out semantics as multi-listener uses ports, measured in
//! experiment E8.

use cca_data::TypeMap;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A subscriber callback.
pub trait EventListener: Send + Sync {
    /// Delivers one event.
    fn on_event(&self, topic: &str, body: &TypeMap);
}

impl<F> EventListener for F
where
    F: Fn(&str, &TypeMap) + Send + Sync,
{
    fn on_event(&self, topic: &str, body: &TypeMap) {
        self(topic, body)
    }
}

/// A subscription handle (used to unsubscribe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

type SubscriberList = Vec<(SubscriptionId, Arc<dyn EventListener>)>;

/// The event service: topics → subscriber lists.
///
/// Topic matching supports a trailing `*` wildcard segment
/// (`"solver.*"` receives `"solver.converged"` and `"solver.failed"`).
#[derive(Default)]
pub struct EventService {
    subscribers: RwLock<BTreeMap<String, SubscriberList>>,
    next_id: AtomicU64,
}

impl EventService {
    /// Creates an empty service.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Subscribes a listener to a topic pattern. Returns the handle needed
    /// to unsubscribe.
    pub fn subscribe(
        &self,
        pattern: impl Into<String>,
        listener: Arc<dyn EventListener>,
    ) -> SubscriptionId {
        let id = SubscriptionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.subscribers
            .write()
            .entry(pattern.into())
            .or_default()
            .push((id, listener));
        id
    }

    /// Removes a subscription; returns true if it existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let mut subs = self.subscribers.write();
        for list in subs.values_mut() {
            if let Some(pos) = list.iter().position(|(sid, _)| *sid == id) {
                list.remove(pos);
                return true;
            }
        }
        false
    }

    /// Publishes an event: synchronous delivery to every matching
    /// subscriber, in (pattern, registration) order. Returns the number of
    /// listeners reached — "zero or more invocations", as §6.1 has it.
    pub fn publish(&self, topic: &str, body: &TypeMap) -> usize {
        let subs = self.subscribers.read();
        let mut delivered = 0;
        for (pattern, list) in subs.iter() {
            if Self::matches(pattern, topic) {
                for (_, l) in list {
                    l.on_event(topic, body);
                    delivered += 1;
                }
            }
        }
        delivered
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscribers.read().values().map(Vec::len).sum()
    }

    fn matches(pattern: &str, topic: &str) -> bool {
        if let Some(prefix) = pattern.strip_suffix('*') {
            topic.starts_with(prefix)
        } else {
            pattern == topic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    fn recorder() -> (Arc<dyn EventListener>, Arc<Mutex<Vec<String>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let listener: Arc<dyn EventListener> = Arc::new(move |topic: &str, body: &TypeMap| {
            log2.lock()
                .push(format!("{topic}:{}", body.get_long("step", -1)));
        });
        (listener, log)
    }

    #[test]
    fn publish_reaches_exact_subscribers() {
        let svc = EventService::new();
        let (l, log) = recorder();
        svc.subscribe("solver.converged", l);
        let mut body = TypeMap::new();
        body.put_long("step", 7);
        assert_eq!(svc.publish("solver.converged", &body), 1);
        assert_eq!(svc.publish("solver.failed", &body), 0);
        assert_eq!(log.lock().as_slice(), ["solver.converged:7"]);
    }

    #[test]
    fn wildcard_patterns() {
        let svc = EventService::new();
        let (l, log) = recorder();
        svc.subscribe("solver.*", l);
        let body = TypeMap::new();
        assert_eq!(svc.publish("solver.converged", &body), 1);
        assert_eq!(svc.publish("solver.failed", &body), 1);
        assert_eq!(svc.publish("mesh.refined", &body), 0);
        assert_eq!(log.lock().len(), 2);
    }

    #[test]
    fn zero_listeners_is_fine() {
        let svc = EventService::new();
        assert_eq!(svc.publish("anything", &TypeMap::new()), 0);
    }

    #[test]
    fn multiple_listeners_fan_out_in_order() {
        let svc = EventService::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log2 = Arc::clone(&log);
            svc.subscribe(
                "tick",
                Arc::new(move |_: &str, _: &TypeMap| log2.lock().push(i)),
            );
        }
        assert_eq!(svc.publish("tick", &TypeMap::new()), 3);
        assert_eq!(log.lock().as_slice(), [0, 1, 2]);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let svc = EventService::new();
        let (l, log) = recorder();
        let id = svc.subscribe("t", l);
        assert_eq!(svc.subscription_count(), 1);
        assert!(svc.unsubscribe(id));
        assert!(!svc.unsubscribe(id));
        assert_eq!(svc.subscription_count(), 0);
        svc.publish("t", &TypeMap::new());
        assert!(log.lock().is_empty());
    }

    #[test]
    fn payload_is_shared_not_copied_per_listener() {
        // All listeners observe the same TypeMap contents.
        let svc = EventService::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..2 {
            let seen2 = Arc::clone(&seen);
            svc.subscribe(
                "data",
                Arc::new(move |_: &str, b: &TypeMap| {
                    seen2.lock().push(b.get_double("value", 0.0))
                }),
            );
        }
        let mut body = TypeMap::new();
        body.put_double("value", 2.5);
        svc.publish("data", &body);
        assert_eq!(seen.lock().as_slice(), [2.5, 2.5]);
    }
}
