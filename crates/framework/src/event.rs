//! A topic-based event service.
//!
//! §6 of the paper discusses the JavaBeans model, where "components notify
//! other listener components by generating events", and notes the proposed
//! CORBA 3.0 component model adopted *both* events and provides/uses. The
//! CCA eventually standardized an event service alongside ports; this
//! module provides it: named topics carrying [`TypeMap`] payloads,
//! delivered synchronously to subscribers in registration order.
//!
//! Events complement ports: ports are for *calls* (request/response,
//! §6.1), events for *notifications* with zero or more interested parties
//! — the same fan-out semantics as multi-listener uses ports, measured in
//! experiment E8.
//!
//! # Delivery order
//!
//! Delivery is **deterministic in global registration order**: for any
//! published topic, the matching subscribers are invoked in the order
//! their [`EventService::subscribe`] calls completed, regardless of which
//! pattern each used. A wildcard subscriber registered *before* an exact
//! one therefore hears the event *first*. This is a contract, not an
//! implementation accident — scientific builders replay event logs and
//! diff runs, so "same subscriptions ⇒ same delivery sequence" must hold
//! (pinned by the `delivery_order_is_global_registration_order` test).
//! The framework's own configuration events (connect/disconnect/…, topics
//! `cca.config.*`) are routed through this service, so monitors observe
//! them under the same ordering guarantee.

use cca_data::TypeMap;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A subscriber callback.
pub trait EventListener: Send + Sync {
    /// Delivers one event.
    fn on_event(&self, topic: &str, body: &TypeMap);
}

impl<F> EventListener for F
where
    F: Fn(&str, &TypeMap) + Send + Sync,
{
    fn on_event(&self, topic: &str, body: &TypeMap) {
        self(topic, body)
    }
}

/// A subscription handle (used to unsubscribe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

struct Subscription {
    id: SubscriptionId,
    pattern: String,
    listener: Arc<dyn EventListener>,
}

/// The event service: a registration-ordered subscriber list.
///
/// Topic matching supports a trailing `*` wildcard segment
/// (`"solver.*"` receives `"solver.converged"` and `"solver.failed"`).
/// See the module docs for the delivery-order contract.
#[derive(Default)]
pub struct EventService {
    /// Kept flat and in registration order — this *is* the delivery order.
    subscribers: RwLock<Vec<Subscription>>,
    next_id: AtomicU64,
}

impl EventService {
    /// Creates an empty service.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Subscribes a listener to a topic pattern. Returns the handle needed
    /// to unsubscribe.
    pub fn subscribe(
        &self,
        pattern: impl Into<String>,
        listener: Arc<dyn EventListener>,
    ) -> SubscriptionId {
        let id = SubscriptionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.subscribers.write().push(Subscription {
            id,
            pattern: pattern.into(),
            listener,
        });
        id
    }

    /// Removes a subscription; returns true if it existed. Later
    /// subscribers keep their relative delivery positions.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let mut subs = self.subscribers.write();
        if let Some(pos) = subs.iter().position(|s| s.id == id) {
            subs.remove(pos);
            true
        } else {
            false
        }
    }

    /// Publishes an event: synchronous delivery to every matching
    /// subscriber, in **global registration order** (see module docs).
    /// Returns the number of listeners reached — "zero or more
    /// invocations", as §6.1 has it.
    pub fn publish(&self, topic: &str, body: &TypeMap) -> usize {
        let _span = cca_obs::span("event.publish");
        let subs = self.subscribers.read();
        let mut delivered = 0;
        for sub in subs.iter() {
            if Self::matches(&sub.pattern, topic) {
                sub.listener.on_event(topic, body);
                delivered += 1;
            }
        }
        delivered
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscribers.read().len()
    }

    fn matches(pattern: &str, topic: &str) -> bool {
        if let Some(prefix) = pattern.strip_suffix('*') {
            topic.starts_with(prefix)
        } else {
            pattern == topic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    fn recorder() -> (Arc<dyn EventListener>, Arc<Mutex<Vec<String>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let listener: Arc<dyn EventListener> = Arc::new(move |topic: &str, body: &TypeMap| {
            log2.lock()
                .push(format!("{topic}:{}", body.get_long("step", -1)));
        });
        (listener, log)
    }

    #[test]
    fn publish_reaches_exact_subscribers() {
        let svc = EventService::new();
        let (l, log) = recorder();
        svc.subscribe("solver.converged", l);
        let mut body = TypeMap::new();
        body.put_long("step", 7);
        assert_eq!(svc.publish("solver.converged", &body), 1);
        assert_eq!(svc.publish("solver.failed", &body), 0);
        assert_eq!(log.lock().as_slice(), ["solver.converged:7"]);
    }

    #[test]
    fn wildcard_patterns() {
        let svc = EventService::new();
        let (l, log) = recorder();
        svc.subscribe("solver.*", l);
        let body = TypeMap::new();
        assert_eq!(svc.publish("solver.converged", &body), 1);
        assert_eq!(svc.publish("solver.failed", &body), 1);
        assert_eq!(svc.publish("mesh.refined", &body), 0);
        assert_eq!(log.lock().len(), 2);
    }

    #[test]
    fn zero_listeners_is_fine() {
        let svc = EventService::new();
        assert_eq!(svc.publish("anything", &TypeMap::new()), 0);
    }

    #[test]
    fn multiple_listeners_fan_out_in_order() {
        let svc = EventService::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log2 = Arc::clone(&log);
            svc.subscribe(
                "tick",
                Arc::new(move |_: &str, _: &TypeMap| log2.lock().push(i)),
            );
        }
        assert_eq!(svc.publish("tick", &TypeMap::new()), 3);
        assert_eq!(log.lock().as_slice(), [0, 1, 2]);
    }

    #[test]
    fn delivery_order_is_global_registration_order() {
        // The contract from the module docs: matching subscribers fire in
        // the order they subscribed, NOT grouped/sorted by pattern. The
        // wildcard subscriber registered first hears the event first even
        // though "solver.*" sorts after "solver.converged".
        let svc = EventService::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (tag, pattern) in [
            ("wild", "solver.*"),
            ("exact", "solver.converged"),
            ("wild2", "solver.conv*"),
        ] {
            let log2 = Arc::clone(&log);
            svc.subscribe(
                pattern,
                Arc::new(move |_: &str, _: &TypeMap| log2.lock().push(tag)),
            );
        }
        assert_eq!(svc.publish("solver.converged", &TypeMap::new()), 3);
        assert_eq!(log.lock().as_slice(), ["wild", "exact", "wild2"]);
        // A later subscriber lands strictly after the existing ones.
        let log2 = Arc::clone(&log);
        svc.subscribe(
            "solver.converged",
            Arc::new(move |_: &str, _: &TypeMap| log2.lock().push("late")),
        );
        log.lock().clear();
        assert_eq!(svc.publish("solver.converged", &TypeMap::new()), 4);
        assert_eq!(log.lock().as_slice(), ["wild", "exact", "wild2", "late"]);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let svc = EventService::new();
        let (l, log) = recorder();
        let id = svc.subscribe("t", l);
        assert_eq!(svc.subscription_count(), 1);
        assert!(svc.unsubscribe(id));
        assert!(!svc.unsubscribe(id));
        assert_eq!(svc.subscription_count(), 0);
        svc.publish("t", &TypeMap::new());
        assert!(log.lock().is_empty());
    }

    #[test]
    fn payload_is_shared_not_copied_per_listener() {
        // All listeners observe the same TypeMap contents.
        let svc = EventService::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..2 {
            let seen2 = Arc::clone(&seen);
            svc.subscribe(
                "data",
                Arc::new(move |_: &str, b: &TypeMap| seen2.lock().push(b.get_double("value", 0.0))),
            );
        }
        let mut body = TypeMap::new();
        body.put_double("value", 2.5);
        svc.publish("data", &body);
        assert_eq!(seen.lock().as_slice(), [2.5, 2.5]);
    }
}
