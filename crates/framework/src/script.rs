//! A Ccaffeine-style builder script language.
//!
//! The paper's Figure 2 shows "builders" driving the Configuration API.
//! The historical CCA reference framework (Ccaffeine) was driven by `rc`
//! scripts of exactly this shape; we reproduce the useful core so
//! scenarios are reproducible artifacts rather than code:
//!
//! ```text
//! # Figure 1, lower half
//! instantiate esi.MatrixComponent matrix0
//! instantiate esi.SolverComponent solver0
//! connect solver0 A matrix0 A
//! connect solver0 M precond0 M proxied
//! redirect solver0 M precond0 precond1 M
//! disconnect solver0 M precond1
//! remove solver0
//! go driver0 go
//! ```
//!
//! Each command maps 1:1 onto a [`Framework`] builder call; `instantiate`
//! resolves classes through the framework's repository.

use crate::connect::ConnectionPolicy;
use crate::framework::Framework;
use cca_core::CcaError;

/// One parsed builder command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `instantiate <class> <instance>`
    Instantiate {
        /// Repository class name.
        class: String,
        /// New instance name.
        instance: String,
    },
    /// `connect <user> <usesPort> <provider> <providesPort> [direct|proxied]`
    Connect {
        /// Using instance.
        user: String,
        /// Uses-port name.
        uses_port: String,
        /// Providing instance.
        provider: String,
        /// Provides-port name.
        provides_port: String,
        /// Optional per-connection policy override.
        policy: Option<ConnectionPolicy>,
    },
    /// `disconnect <user> <usesPort> <provider>`
    Disconnect {
        /// Using instance.
        user: String,
        /// Uses-port name.
        uses_port: String,
        /// Providing instance.
        provider: String,
    },
    /// `redirect <user> <usesPort> <oldProvider> <newProvider> <providesPort>`
    Redirect {
        /// Using instance.
        user: String,
        /// Uses-port name.
        uses_port: String,
        /// Current providing instance.
        old_provider: String,
        /// Replacement providing instance.
        new_provider: String,
        /// Provides-port name on the replacement.
        provides_port: String,
    },
    /// `remove <instance>`
    Remove {
        /// Instance to destroy.
        instance: String,
    },
    /// `go <instance> <port>`
    Go {
        /// Instance owning the go port.
        instance: String,
        /// Go-port name.
        port: String,
    },
}

/// Parses a builder script. Blank lines and `#` comments are skipped.
/// Errors carry 1-based line numbers.
pub fn parse_script(source: &str) -> Result<Vec<Command>, CcaError> {
    let mut commands = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: &str| {
            Err(CcaError::Framework(format!(
                "script line {}: {msg}: '{line}'",
                lineno + 1
            )))
        };
        let cmd = match (words[0], words.len()) {
            ("instantiate", 3) => Command::Instantiate {
                class: words[1].into(),
                instance: words[2].into(),
            },
            ("instantiate", _) => return err("expected 'instantiate <class> <instance>'"),
            ("connect", 5 | 6) => {
                let policy = match words.get(5) {
                    None => None,
                    Some(&"direct") => Some(ConnectionPolicy::Direct),
                    Some(&"proxied") => Some(ConnectionPolicy::Proxied),
                    Some(other) => return err(&format!("unknown connection policy '{other}'")),
                };
                Command::Connect {
                    user: words[1].into(),
                    uses_port: words[2].into(),
                    provider: words[3].into(),
                    provides_port: words[4].into(),
                    policy,
                }
            }
            ("connect", _) => {
                return err(
                    "expected 'connect <user> <usesPort> <provider> <providesPort> [policy]'",
                )
            }
            ("disconnect", 4) => Command::Disconnect {
                user: words[1].into(),
                uses_port: words[2].into(),
                provider: words[3].into(),
            },
            ("disconnect", _) => return err("expected 'disconnect <user> <usesPort> <provider>'"),
            ("redirect", 6) => Command::Redirect {
                user: words[1].into(),
                uses_port: words[2].into(),
                old_provider: words[3].into(),
                new_provider: words[4].into(),
                provides_port: words[5].into(),
            },
            ("redirect", _) => {
                return err("expected 'redirect <user> <usesPort> <old> <new> <providesPort>'")
            }
            ("remove", 2) => Command::Remove {
                instance: words[1].into(),
            },
            ("remove", _) => return err("expected 'remove <instance>'"),
            ("go", 3) => Command::Go {
                instance: words[1].into(),
                port: words[2].into(),
            },
            ("go", _) => return err("expected 'go <instance> <port>'"),
            (other, _) => return err(&format!("unknown command '{other}'")),
        };
        commands.push(cmd);
    }
    Ok(commands)
}

impl Framework {
    /// Executes one builder command.
    pub fn execute(&self, command: &Command) -> Result<(), CcaError> {
        match command {
            Command::Instantiate { class, instance } => self.create_instance(instance, class),
            Command::Connect {
                user,
                uses_port,
                provider,
                provides_port,
                policy,
            } => match policy {
                Some(p) => self.connect_with(user, uses_port, provider, provides_port, *p),
                None => self.connect(user, uses_port, provider, provides_port),
            },
            Command::Disconnect {
                user,
                uses_port,
                provider,
            } => self.disconnect(user, uses_port, provider),
            Command::Redirect {
                user,
                uses_port,
                old_provider,
                new_provider,
                provides_port,
            } => self.redirect(user, uses_port, old_provider, new_provider, provides_port),
            Command::Remove { instance } => self.destroy_instance(instance),
            Command::Go { instance, port } => self.run_go(instance, port),
        }
    }

    /// Parses and executes a whole script, stopping at the first failing
    /// command (whose index is reported).
    pub fn run_script(&self, source: &str) -> Result<usize, CcaError> {
        let commands = parse_script(source)?;
        for (i, cmd) in commands.iter().enumerate() {
            self.execute(cmd).map_err(|e| {
                CcaError::Framework(format!("script command {} ({cmd:?}) failed: {e}", i + 1))
            })?;
        }
        Ok(parse_script(source)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::{CcaServices, Component, GoPort, PortHandle};
    use cca_data::TypeMap;
    use cca_repository::{ComponentEntry, PortSpec, Repository};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn parses_full_command_set() {
        let script = "
            # a comment
            instantiate esi.Matrix matrix0   # trailing comment

            connect solver0 A matrix0 A
            connect solver0 M precond0 M proxied
            disconnect solver0 M precond0
            redirect solver0 M precond0 precond1 M
            remove matrix0
            go driver0 go
        ";
        let cmds = parse_script(script).unwrap();
        assert_eq!(cmds.len(), 7);
        assert_eq!(
            cmds[0],
            Command::Instantiate {
                class: "esi.Matrix".into(),
                instance: "matrix0".into()
            }
        );
        assert_eq!(
            cmds[2],
            Command::Connect {
                user: "solver0".into(),
                uses_port: "M".into(),
                provider: "precond0".into(),
                provides_port: "M".into(),
                policy: Some(ConnectionPolicy::Proxied),
            }
        );
        assert!(matches!(cmds[6], Command::Go { .. }));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_script("instantiate onlyone").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = parse_script("\n\nconnect a b c d warp").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(parse_script("launch x").is_err());
    }

    #[test]
    fn parse_rejects_bad_arity_for_every_command() {
        // Every command form, one word short: each error names the
        // offending line and the expected shape.
        for (lineno, bad) in [
            "instantiate esi.Matrix",
            "connect solver0 A matrix0",
            "disconnect solver0 M",
            "redirect solver0 M precond0 precond1",
            "remove",
            "go driver0",
        ]
        .iter()
        .enumerate()
        {
            let source = format!("{}{}", "\n".repeat(lineno), bad);
            let err = parse_script(&source).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("line {}", lineno + 1)),
                "'{bad}' should fail on line {}: {msg}",
                lineno + 1
            );
            assert!(msg.contains("expected"), "'{bad}': {msg}");
        }
        // Too many words is just as malformed as too few.
        assert!(parse_script("remove a b").is_err());
        // An unknown policy word on an otherwise valid connect.
        let err = parse_script("connect u0 in p0 out sideways").unwrap_err();
        assert!(
            err.to_string().contains("unknown connection policy"),
            "{err}"
        );
    }

    #[test]
    fn comments_and_blank_lines_parse_to_nothing() {
        let cmds = parse_script("\n  # nothing but commentary\n\n   \n# more\n").unwrap();
        assert!(cmds.is_empty());
    }
    trait NumPort: Send + Sync {
        fn value(&self) -> i64;
    }
    struct Provider(i64);
    impl Component for Provider {
        fn component_type(&self) -> &str {
            "demo.Provider"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            let p: Arc<dyn NumPort> = Arc::new(Num(self.0));
            s.add_provides_port(PortHandle::new("out", "demo.Num", p))
        }
    }
    struct Num(i64);
    impl NumPort for Num {
        fn value(&self) -> i64 {
            self.0
        }
    }
    struct User;
    impl Component for User {
        fn component_type(&self) -> &str {
            "demo.User"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            s.register_uses_port("in", "demo.Num", TypeMap::new())
        }
    }
    struct Driver {
        runs: AtomicUsize,
    }
    impl Component for Driver {
        fn component_type(&self) -> &str {
            "demo.Driver"
        }
        fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
            Ok(())
        }
    }
    impl GoPort for Driver {
        fn go(&self) -> Result<(), CcaError> {
            self.runs.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    fn scripted_repo() -> Arc<Repository> {
        let repo = Repository::new();
        for (class, v) in [("demo.ProviderA", 1i64), ("demo.ProviderB", 2)] {
            repo.register_component(ComponentEntry {
                class: class.into(),
                description: String::new(),
                provides: vec![PortSpec::new("out", "demo.Num")],
                uses: vec![],
                properties: TypeMap::new(),
                factory: Arc::new(move || Arc::new(Provider(v)) as Arc<dyn Component>),
            })
            .unwrap();
        }
        repo.register_component(ComponentEntry {
            class: "demo.User".into(),
            description: String::new(),
            provides: vec![],
            uses: vec![PortSpec::new("in", "demo.Num")],
            properties: TypeMap::new(),
            factory: Arc::new(|| Arc::new(User) as Arc<dyn Component>),
        })
        .unwrap();
        repo
    }

    #[test]
    fn script_drives_a_full_scenario() {
        let fw = Framework::new(scripted_repo());
        fw.run_script(
            "
            instantiate demo.ProviderA a0
            instantiate demo.ProviderB b0
            instantiate demo.User u0
            connect u0 in a0 out
            redirect u0 in a0 b0 out
            ",
        )
        .unwrap();
        let port: Arc<dyn NumPort> = fw.services("u0").unwrap().get_port_as("in").unwrap();
        assert_eq!(port.value(), 2); // redirected to ProviderB
        fw.run_script("disconnect u0 in b0\nremove b0\nremove a0")
            .unwrap();
        assert_eq!(fw.instance_names(), vec!["u0"]);
    }

    #[test]
    fn failing_command_reports_its_position() {
        let fw = Framework::new(scripted_repo());
        let err = fw
            .run_script("instantiate demo.ProviderA a0\nconnect ghost in a0 out")
            .unwrap_err();
        assert!(err.to_string().contains("command 2"), "{err}");
        // Partial effects before the failure remain (scripts are not
        // transactional, matching Ccaffeine).
        assert_eq!(fw.instance_names(), vec!["a0"]);
    }

    #[test]
    fn execute_surfaces_framework_errors_for_each_command_kind() {
        let fw = Framework::new(scripted_repo());
        fw.run_script("instantiate demo.ProviderA a0\ninstantiate demo.User u0")
            .unwrap();

        // Unknown repository class.
        assert!(fw
            .execute(&Command::Instantiate {
                class: "demo.DoesNotExist".into(),
                instance: "x0".into(),
            })
            .is_err());
        // Connecting a user instance that was never created.
        assert!(fw
            .execute(&Command::Connect {
                user: "ghost".into(),
                uses_port: "in".into(),
                provider: "a0".into(),
                provides_port: "out".into(),
                policy: None,
            })
            .is_err());
        // Disconnecting a connection that does not exist.
        assert!(fw
            .execute(&Command::Disconnect {
                user: "u0".into(),
                uses_port: "in".into(),
                provider: "a0".into(),
            })
            .is_err());
        // Redirecting to a provider that does not exist.
        fw.run_script("connect u0 in a0 out").unwrap();
        assert!(fw
            .execute(&Command::Redirect {
                user: "u0".into(),
                uses_port: "in".into(),
                old_provider: "a0".into(),
                new_provider: "nobody".into(),
                provides_port: "out".into(),
            })
            .is_err());
        // The failed redirect was not transactional (matching Ccaffeine):
        // it had already disconnected the old provider when attaching the
        // new one failed, so the explicit disconnect now has nothing left
        // to remove.
        assert!(fw
            .execute(&Command::Disconnect {
                user: "u0".into(),
                uses_port: "in".into(),
                provider: "a0".into(),
            })
            .is_err());
        // Removing an instance twice.
        fw.run_script("remove a0").unwrap();
        assert!(fw
            .execute(&Command::Remove {
                instance: "a0".into(),
            })
            .is_err());
        // `go` against a missing instance / missing go port.
        assert!(fw
            .execute(&Command::Go {
                instance: "nobody".into(),
                port: "go".into(),
            })
            .is_err());
        assert!(fw
            .execute(&Command::Go {
                instance: "u0".into(),
                port: "go".into(),
            })
            .is_err());
        // The survivors are untouched by the failed commands.
        assert_eq!(fw.instance_names(), vec!["u0"]);
    }

    #[test]
    fn run_script_reports_parse_errors_before_executing_anything() {
        let fw = Framework::new(scripted_repo());
        // The script has a valid first command and a malformed second one:
        // parsing fails up front, so nothing executes at all.
        let err = fw
            .run_script("instantiate demo.ProviderA a0\nwarp 9")
            .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(
            fw.instance_names().is_empty(),
            "parse failure must be atomic"
        );
    }

    #[test]
    fn go_command_runs_the_driver() {
        let fw = Framework::new(scripted_repo());
        let driver = Arc::new(Driver {
            runs: AtomicUsize::new(0),
        });
        fw.add_instance("driver0", driver.clone()).unwrap();
        let go: Arc<dyn GoPort> = driver.clone();
        fw.services("driver0")
            .unwrap()
            .add_provides_port(PortHandle::new("go", cca_core::component::GO_PORT_TYPE, go))
            .unwrap();
        fw.run_script("go driver0 go\ngo driver0 go").unwrap();
        assert_eq!(driver.runs.load(Ordering::SeqCst), 2);
    }
}
