//! Collective ports: M×N coupling of parallel components (§6.3).
//!
//! "The creation of a collective port requires that the programmer specify
//! the mapping of data (or processes participating) in the operations on
//! this port." An [`MxNPort`] is exactly that: two [`DistArrayDesc`]s (one
//! per side) plus the world ranks each side's processes occupy. From the
//! two descriptors both sides independently derive the same
//! [`RedistPlan`]; the port then executes the plan with point-to-point
//! messages on the shared world communicator.
//!
//! The three cases the paper walks through all fall out of the same code:
//!
//! * **matched n→n** — every transfer is rank-local, no data crosses ranks;
//! * **serial ↔ parallel** — the plan degenerates to broadcast/scatter or
//!   gather ("the semantics of this interaction are very similar to
//!   broadcast, gather, and scatter semantics");
//! * **arbitrary M×N** — "data to be distributed arbitrarily in the
//!   connected components", e.g. a 4-way simulation feeding a 3-way
//!   visualization tool.

use cca_core::CcaError;
use cca_data::{CompiledPlan, DistArrayDesc, RedistPlan};
use cca_parallel::{Comm, Tag};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared, immutable product of one plan construction: the plan and
/// its compiled execution schedule.
pub type SharedPlan = (Arc<RedistPlan>, Arc<CompiledPlan>);

/// A keyed cache of redistribution plans, shared across ports, timesteps,
/// and components.
///
/// Plan construction is the expensive part of an M×N coupling
/// (O(M·N·regions²) region intersection — see [`RedistPlan::build`]); the
/// descriptors, in contrast, are tiny. Keying on the
/// `(source, target)` descriptor pair means every port connecting
/// identically distributed arrays shares one immutable
/// [`RedistPlan`]/[`CompiledPlan`] pair behind `Arc`s: the first timestep
/// builds, every later timestep (and every other component with the same
/// coupling shape) is a lock + hash lookup.
#[derive(Default)]
pub struct PlanCache {
    entries: Mutex<HashMap<(DistArrayDesc, DistArrayDesc), SharedPlan>>,
    hits: AtomicU64,
    builds: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared plan for `(source, target)`, building and
    /// compiling it on first use.
    pub fn get_or_build(
        &self,
        source: &DistArrayDesc,
        target: &DistArrayDesc,
    ) -> Result<SharedPlan, CcaError> {
        let key = (source.clone(), target.clone());
        let mut entries = self.entries.lock();
        if let Some((plan, compiled)) = entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(plan), Arc::clone(compiled)));
        }
        let plan = RedistPlan::build(source, target)
            .map_err(|e| CcaError::Framework(format!("redistribution plan: {e}")))?;
        let compiled = plan
            .compile()
            .map_err(|e| CcaError::Framework(format!("plan compilation: {e}")))?;
        let entry = (Arc::new(plan), Arc::new(compiled));
        entries.insert(key, (Arc::clone(&entry.0), Arc::clone(&entry.1)));
        self.builds.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    /// Lookups that found an existing plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build a plan.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of distinct descriptor pairs cached.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drops every cached plan (e.g. after a topology change).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

/// A collective port between a source parallel component (M ranks) and a
/// target parallel component (N ranks), all living on one world
/// communicator.
pub struct MxNPort {
    plan: Arc<RedistPlan>,
    compiled: Arc<CompiledPlan>,
    /// World rank of each source-side rank, indexed by source rank.
    src_world: Vec<usize>,
    /// World rank of each target-side rank, indexed by target rank.
    dst_world: Vec<usize>,
    /// Base message tag for this port's traffic.
    tag: Tag,
}

impl MxNPort {
    /// Builds the port: computes the redistribution plan and records the
    /// rank mappings. Deterministic — every participating rank can build
    /// an identical port locally, no negotiation round needed.
    pub fn new(
        source: &DistArrayDesc,
        target: &DistArrayDesc,
        src_world: Vec<usize>,
        dst_world: Vec<usize>,
        tag: Tag,
    ) -> Result<Self, CcaError> {
        Self::validate(source, target, &src_world, &dst_world)?;
        let plan = RedistPlan::build(source, target)
            .map_err(|e| CcaError::Framework(format!("redistribution plan: {e}")))?;
        let compiled = plan
            .compile()
            .map_err(|e| CcaError::Framework(format!("plan compilation: {e}")))?;
        Ok(MxNPort {
            plan: Arc::new(plan),
            compiled: Arc::new(compiled),
            src_world,
            dst_world,
            tag,
        })
    }

    /// Like [`MxNPort::new`], but resolves the plan through a shared
    /// [`PlanCache`]: ports connecting identically distributed arrays (the
    /// common case across timesteps, and across components coupled with
    /// the same M×N shape) reuse one immutable plan instead of re-running
    /// region intersection.
    pub fn with_cache(
        source: &DistArrayDesc,
        target: &DistArrayDesc,
        src_world: Vec<usize>,
        dst_world: Vec<usize>,
        tag: Tag,
        cache: &PlanCache,
    ) -> Result<Self, CcaError> {
        Self::validate(source, target, &src_world, &dst_world)?;
        let (plan, compiled) = cache.get_or_build(source, target)?;
        Ok(MxNPort {
            plan,
            compiled,
            src_world,
            dst_world,
            tag,
        })
    }

    fn validate(
        source: &DistArrayDesc,
        target: &DistArrayDesc,
        src_world: &[usize],
        dst_world: &[usize],
    ) -> Result<(), CcaError> {
        if src_world.len() != source.nranks() {
            return Err(CcaError::Framework(format!(
                "source mapping has {} ranks, descriptor has {}",
                src_world.len(),
                source.nranks()
            )));
        }
        if dst_world.len() != target.nranks() {
            return Err(CcaError::Framework(format!(
                "target mapping has {} ranks, descriptor has {}",
                dst_world.len(),
                target.nranks()
            )));
        }
        Ok(())
    }

    /// The underlying plan (for inspection and statistics).
    pub fn plan(&self) -> &RedistPlan {
        &self.plan
    }

    /// True when the two decompositions match element-for-element *and*
    /// live on the same world ranks, i.e. no data needs to move between
    /// ranks at all — the paper's "data would not need redistribution".
    pub fn is_fully_local(&self) -> bool {
        self.plan.is_matched() && self.src_world == self.dst_world
    }

    /// The source rank of the calling world rank, if it participates.
    pub fn my_src_rank(&self, comm: &Comm) -> Option<usize> {
        self.src_world.iter().position(|&w| w == comm.world_rank())
    }

    /// The target rank of the calling world rank, if it participates.
    pub fn my_dst_rank(&self, comm: &Comm) -> Option<usize> {
        self.dst_world.iter().position(|&w| w == comm.world_rank())
    }

    /// Source side: posts every message this rank owes. `data` is the
    /// rank's local buffer under the source descriptor (column-major).
    /// Non-participating ranks may call this; it is a no-op for them.
    ///
    /// Fully-local transfers (same world rank on both sides) are delivered
    /// through the same channel mechanism — a move, not a copy.
    pub fn send<T: Clone + Send + 'static>(&self, comm: &Comm, data: &[T]) -> Result<(), CcaError> {
        let Some(src_rank) = self.my_src_rank(comm) else {
            return Ok(());
        };
        let expected = self
            .plan
            .source()
            .local_count(src_rank)
            .map_err(|e| CcaError::Framework(e.to_string()))?;
        if data.len() != expected {
            return Err(CcaError::Framework(format!(
                "source rank {src_rank} buffer has {} elements, descriptor says {expected}",
                data.len()
            )));
        }
        for t in self.compiled.sends_from(src_rank) {
            let payload = t.pack(data);
            let dst_world = self.dst_world[t.dst_rank];
            comm.send(dst_world, self.tag, payload)
                .map_err(|e| CcaError::Framework(e.to_string()))?;
        }
        Ok(())
    }

    /// Target side: receives every message this rank is owed and unpacks
    /// into `out`, the rank's local buffer under the target descriptor.
    /// Non-participating ranks may call this; it is a no-op for them.
    pub fn recv<T: Clone + Send + 'static>(
        &self,
        comm: &Comm,
        out: &mut [T],
    ) -> Result<(), CcaError> {
        let Some(dst_rank) = self.my_dst_rank(comm) else {
            return Ok(());
        };
        let expected = self
            .plan
            .target()
            .local_count(dst_rank)
            .map_err(|e| CcaError::Framework(e.to_string()))?;
        if out.len() != expected {
            return Err(CcaError::Framework(format!(
                "target rank {dst_rank} buffer has {} elements, descriptor says {expected}",
                out.len()
            )));
        }
        for t in self.compiled.receives_at(dst_rank) {
            let src_world = self.src_world[t.src_rank];
            let payload: Vec<T> = comm
                .recv(src_world, self.tag)
                .map_err(|e| CcaError::Framework(e.to_string()))?;
            if payload.len() != t.count() {
                return Err(CcaError::Framework(format!(
                    "transfer payload has {} elements, plan says {}",
                    payload.len(),
                    t.count()
                )));
            }
            t.unpack(&payload, out);
        }
        Ok(())
    }

    /// Convenience for ranks on both sides (tightly coupled components):
    /// send then receive, returning the freshly filled target buffer.
    pub fn exchange<T: Clone + Send + Default + 'static>(
        &self,
        comm: &Comm,
        data: &[T],
    ) -> Result<Vec<T>, CcaError> {
        self.send(comm, data)?;
        let n = match self.my_dst_rank(comm) {
            Some(dst) => self
                .plan
                .target()
                .local_count(dst)
                .map_err(|e| CcaError::Framework(e.to_string()))?,
            None => 0,
        };
        let mut out = vec![T::default(); n];
        self.recv(comm, &mut out)?;
        Ok(out)
    }

    /// Same-address-space execution: runs the whole compiled plan in
    /// memory (used when both components are serial or share one rank).
    pub fn transfer_local<T: Clone + Default>(
        &self,
        src_buffers: &[Vec<T>],
    ) -> Result<Vec<Vec<T>>, CcaError> {
        self.compiled
            .apply(src_buffers)
            .map_err(|e| CcaError::Framework(e.to_string()))
    }

    /// Allocation-free variant of [`transfer_local`](Self::transfer_local):
    /// scatters into caller-owned destination buffers, so a timestep loop
    /// that reuses its buffers performs zero heap allocations in the
    /// steady state (pinned by `alloc_free.rs`).
    pub fn transfer_local_into<T: Clone>(
        &self,
        src_buffers: &[Vec<T>],
        dst_buffers: &mut [Vec<T>],
    ) -> Result<(), CcaError> {
        self.compiled
            .apply_into(src_buffers, dst_buffers)
            .map_err(|e| CcaError::Framework(e.to_string()))
    }

    /// The precomputed offset lists the port executes.
    pub fn compiled_plan(&self) -> &CompiledPlan {
        &self.compiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_data::{DimDist, Distribution, ProcessGrid};
    use cca_parallel::spmd;

    fn block_desc(n: usize, p: usize) -> DistArrayDesc {
        DistArrayDesc::new(&[n], Distribution::block_1d(p, 1).unwrap()).unwrap()
    }

    fn cyclic_desc(n: usize, p: usize) -> DistArrayDesc {
        let dist = Distribution::new(ProcessGrid::linear(p).unwrap(), &[DimDist::Cyclic]).unwrap();
        DistArrayDesc::new(&[n], dist).unwrap()
    }

    /// Fill a source rank's buffer with global ids.
    fn tagged(desc: &DistArrayDesc, rank: usize) -> Vec<f64> {
        let mut buf = vec![0.0; desc.local_count(rank).unwrap()];
        for region in desc.owned_regions(rank).unwrap() {
            for idx in region.indices() {
                let off = RedistPlan::local_offset(desc, rank, &idx).unwrap();
                buf[off] = idx[0] as f64;
            }
        }
        buf
    }

    fn check(desc: &DistArrayDesc, rank: usize, buf: &[f64]) {
        for region in desc.owned_regions(rank).unwrap() {
            for idx in region.indices() {
                let off = RedistPlan::local_offset(desc, rank, &idx).unwrap();
                assert_eq!(buf[off], idx[0] as f64, "rank {rank} idx {idx:?}");
            }
        }
    }

    #[test]
    fn matched_4_to_4_is_fully_local() {
        let src = block_desc(16, 4);
        let dst = block_desc(16, 4);
        let port = MxNPort::new(&src, &dst, vec![0, 1, 2, 3], vec![0, 1, 2, 3], 50).unwrap();
        assert!(port.is_fully_local());
        assert_eq!(port.plan().moved_elements(), 0);
        spmd(4, |c| {
            let data = tagged(&src, c.rank());
            let out = port.exchange(c, &data).unwrap();
            check(&dst, c.rank(), &out);
        });
    }

    #[test]
    fn parallel_to_serial_gather_semantics() {
        // 4-rank simulation feeding a serial visualizer on world rank 4.
        let src = block_desc(12, 4);
        let dst = block_desc(12, 1);
        let port = MxNPort::new(&src, &dst, vec![0, 1, 2, 3], vec![4], 51).unwrap();
        assert!(!port.is_fully_local());
        spmd(5, |c| {
            if c.rank() < 4 {
                let data = tagged(&src, c.rank());
                port.send(c, &data).unwrap();
            } else {
                let mut out = vec![0.0f64; 12];
                port.recv(c, &mut out).unwrap();
                check(&dst, 0, &out);
                // The serial side sees the full global array in order.
                assert_eq!(out, (0..12).map(|i| i as f64).collect::<Vec<_>>());
            }
        });
    }

    #[test]
    fn serial_to_parallel_scatter_semantics() {
        let src = block_desc(10, 1);
        let dst = block_desc(10, 3);
        let port = MxNPort::new(&src, &dst, vec![0], vec![1, 2, 3], 52).unwrap();
        spmd(4, |c| {
            if c.rank() == 0 {
                let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
                port.send(c, &data).unwrap();
            } else {
                let dst_rank = c.rank() - 1;
                let mut out = vec![0.0f64; dst.local_count(dst_rank).unwrap()];
                port.recv(c, &mut out).unwrap();
                check(&dst, dst_rank, &out);
            }
        });
    }

    #[test]
    fn arbitrary_4_to_3_block_to_cyclic() {
        // The paper's "differently distributed visualization" case: 4-way
        // block simulation, 3-way cyclic consumer, overlapping world ranks.
        let src = block_desc(17, 4);
        let dst = cyclic_desc(17, 3);
        let port = MxNPort::new(&src, &dst, vec![0, 1, 2, 3], vec![1, 2, 3], 53).unwrap();
        spmd(4, |c| {
            let data = if port.my_src_rank(c).is_some() {
                tagged(&src, c.rank())
            } else {
                vec![]
            };
            let out = port.exchange(c, &data).unwrap();
            if let Some(dst_rank) = port.my_dst_rank(c) {
                check(&dst, dst_rank, &out);
            } else {
                assert!(out.is_empty());
            }
        });
    }

    #[test]
    fn repeated_timesteps_keep_matching() {
        // FIFO per (sender, tag) must keep successive timesteps separate.
        let src = block_desc(8, 2);
        let dst = block_desc(8, 2);
        // Swapped world ranks => everything moves.
        let port = MxNPort::new(&src, &dst, vec![0, 1], vec![1, 0], 54).unwrap();
        spmd(2, |c| {
            for step in 0..5 {
                let shift = step as f64 * 100.0;
                let data: Vec<f64> = tagged(&src, c.rank()).iter().map(|v| v + shift).collect();
                let out = port.exchange(c, &data).unwrap();
                let dst_rank = port.my_dst_rank(c).unwrap();
                for region in dst.owned_regions(dst_rank).unwrap() {
                    for idx in region.indices() {
                        let off = RedistPlan::local_offset(&dst, dst_rank, &idx).unwrap();
                        assert_eq!(out[off], idx[0] as f64 + shift, "step {step}");
                    }
                }
            }
        });
    }

    #[test]
    fn validation_errors() {
        let src = block_desc(8, 2);
        let dst = block_desc(8, 2);
        // Wrong mapping lengths.
        assert!(MxNPort::new(&src, &dst, vec![0], vec![0, 1], 1).is_err());
        assert!(MxNPort::new(&src, &dst, vec![0, 1], vec![0], 1).is_err());
        // Mismatched global shapes.
        let other = block_desc(9, 2);
        assert!(MxNPort::new(&src, &other, vec![0, 1], vec![0, 1], 1).is_err());
        // Wrong buffer length at send/recv time.
        let port = MxNPort::new(&src, &dst, vec![0, 1], vec![0, 1], 55).unwrap();
        spmd(2, |c| {
            let bad = vec![0.0f64; 1];
            assert!(port.send(c, &bad).is_err());
            let mut bad_out = vec![0.0f64; 1];
            assert!(port.recv(c, &mut bad_out).is_err());
            // Drain nothing; correct-size send/recv still fine afterwards.
            let good = tagged(&src, c.rank());
            port.send(c, &good).unwrap();
            let mut out = vec![0.0f64; 4];
            port.recv(c, &mut out).unwrap();
        });
    }

    #[test]
    fn plan_cache_builds_once_and_shares() {
        let cache = PlanCache::new();
        let src = block_desc(16, 4);
        let dst = cyclic_desc(16, 3);
        let before = RedistPlan::build_count();
        let p1 =
            MxNPort::with_cache(&src, &dst, vec![0, 1, 2, 3], vec![0, 1, 2], 60, &cache).unwrap();
        let p2 =
            MxNPort::with_cache(&src, &dst, vec![0, 1, 2, 3], vec![4, 5, 6], 61, &cache).unwrap();
        // One region-intersection pass total; the second port is a cache hit
        // sharing the same plan object.
        assert_eq!(RedistPlan::build_count() - before, 1);
        assert_eq!((cache.builds(), cache.hits(), cache.len()), (1, 1, 1));
        assert!(std::ptr::eq(p1.plan(), p2.plan()));
        assert!(std::ptr::eq(p1.compiled_plan(), p2.compiled_plan()));
        // A different coupling shape is a separate entry.
        let dst2 = block_desc(16, 2);
        MxNPort::with_cache(&src, &dst2, vec![0, 1, 2, 3], vec![0, 1], 62, &cache).unwrap();
        assert_eq!((cache.builds(), cache.len()), (2, 2));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_port_timesteps_never_rebuild_after_first() {
        // The acceptance criterion: reconnecting the same coupling each
        // "timestep" must not re-run RedistPlan::build after step 0.
        let cache = PlanCache::new();
        let src = block_desc(12, 3);
        let dst = cyclic_desc(12, 2);
        let before = RedistPlan::build_count();
        for step in 0..5u32 {
            let port =
                MxNPort::with_cache(&src, &dst, vec![0, 1, 2], vec![0, 1], 70 + step, &cache)
                    .unwrap();
            let src_buffers: Vec<Vec<f64>> = (0..3).map(|r| tagged(&src, r)).collect();
            let out = port.transfer_local(&src_buffers).unwrap();
            for (r, buf) in out.iter().enumerate() {
                check(&dst, r, buf);
            }
        }
        assert_eq!(RedistPlan::build_count() - before, 1);
        assert_eq!(cache.hits(), 4);
    }

    #[test]
    fn cache_propagates_build_errors_without_poisoning() {
        let cache = PlanCache::new();
        let src = block_desc(8, 2);
        let bad = block_desc(9, 2);
        assert!(MxNPort::with_cache(&src, &bad, vec![0, 1], vec![0, 1], 80, &cache).is_err());
        assert_eq!((cache.builds(), cache.len()), (0, 0));
        // The cache still works for valid pairs afterwards.
        let dst = block_desc(8, 2);
        MxNPort::with_cache(&src, &dst, vec![0, 1], vec![0, 1], 81, &cache).unwrap();
        assert_eq!(cache.builds(), 1);
    }

    #[test]
    fn transfer_local_matches_spmd_result() {
        let src = block_desc(10, 2);
        let dst = cyclic_desc(10, 2);
        let port = MxNPort::new(&src, &dst, vec![0, 1], vec![0, 1], 56).unwrap();
        let src_buffers: Vec<Vec<f64>> = (0..2).map(|r| tagged(&src, r)).collect();
        let local = port.transfer_local(&src_buffers).unwrap();
        let spmd_out = spmd(2, |c| {
            let data = tagged(&src, c.rank());
            port.exchange(c, &data).unwrap()
        });
        assert_eq!(local, spmd_out);
        // The buffer-reuse path lands the identical result in caller-owned
        // destination buffers.
        let mut dst_buffers: Vec<Vec<f64>> = local.iter().map(|b| vec![0.0; b.len()]).collect();
        port.transfer_local_into(&src_buffers, &mut dst_buffers)
            .unwrap();
        assert_eq!(dst_buffers, local);
    }
}
