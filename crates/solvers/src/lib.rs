#![warn(missing_docs)]
// Index-based loops over multiple same-length buffers are the clearest
// idiom for stencil/linear-algebra kernels; the iterator rewrites clippy
// suggests obscure them.
#![allow(clippy::needless_range_loop)]
//! # cca-solvers — ESI-style numerical components
//!
//! §2.2 of the paper: "One of the most computationally intensive phases
//! within the semi-implicit and implicit strategies under consideration
//! within CHAD is the solution of discretized linear systems ... The
//! Equation Solver Interface (ESI) Forum is defining collections of
//! abstract interfaces for solving such systems, with a goal of enabling
//! applications like CHAD to experiment more easily with multiple solution
//! strategies."
//!
//! This crate is that toolkit, built to be used *through CCA ports*:
//!
//! * [`vector`] — BLAS-1 kernels plus a [`vector::Reduction`] abstraction
//!   that makes every solver run identically in serial and SPMD contexts
//!   (global dots become `allreduce`).
//! * [`csr`] — compressed sparse row matrices with mat-vec, triplet
//!   assembly, and the 5-point Poisson generator the hydro app uses.
//! * [`precond`] — Identity / Jacobi / SSOR / ILU(0) preconditioners (the
//!   "new algorithms ... encapsulated within toolkits" the paper wants to
//!   be swappable).
//! * [`krylov`] — CG, BiCGStab, and restarted GMRES(m), written against
//!   the [`krylov::LinearOperator`] + [`precond::Preconditioner`] +
//!   [`vector::Reduction`] triple so one implementation serves serial,
//!   SPMD, and matrix-free callers.
//! * [`mesh`] — a block-decomposed 2-D structured mesh with halo exchange
//!   "encapsulat[ing] nonlocal communication in gather/scatter routines"
//!   as CHAD does.
//! * [`hydro`] — the CHAD-mini application: semi-implicit 2-D
//!   advection–diffusion, runnable monolithically (the baseline for E6) or
//!   assembled from the CCA components in [`esi`].
//! * [`esi`] — the SIDL description of the solver interfaces, the Rust
//!   port traits, and `cca_core::Component` wrappers so the whole suite is
//!   wireable by the reference framework.

pub mod csr;
pub mod esi;
pub mod hydro;
pub mod krylov;
pub mod mesh;
pub mod precond;
pub mod vector;

pub use csr::CsrMatrix;
pub use hydro::{HydroConfig, HydroSim};
pub use krylov::{bicgstab, cg, gmres, KrylovKind, LinearOperator, SolveStats};
pub use mesh::Mesh2d;
pub use precond::{Ilu0, Jacobi, Preconditioner, Ssor};
pub use vector::{CommReduce, Reduction, SerialReduce};
