//! Preconditioners — the swappable components of Figure 1's
//! "parallel preconditioner ⇄ Krylov solver" pair.
//!
//! All are *local* operations (per-rank in SPMD use, i.e. block-Jacobi
//! variants of SSOR/ILU0 — the standard way these preconditioners
//! parallelize without extra communication).

use crate::csr::CsrMatrix;

/// `z = M⁻¹ r` — an approximate inverse application.
pub trait Preconditioner: Send + Sync {
    /// Applies the preconditioner.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// A short human-readable name for logs and benches.
    fn name(&self) -> &'static str;
}

/// No preconditioning (`M = I`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Preconditioner for Identity {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Diagonal (Jacobi) preconditioning: `z_i = r_i / a_ii`.
#[derive(Debug, Clone)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Builds from a matrix's diagonal. Zero diagonal entries are treated
    /// as 1 (identity on that row) so the preconditioner stays total.
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| if d == 0.0 { 1.0 } else { 1.0 / d })
            .collect();
        Jacobi { inv_diag }
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }
    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Symmetric SOR: one forward and one backward Gauss–Seidel sweep with
/// relaxation `omega`.
pub struct Ssor {
    a: CsrMatrix,
    omega: f64,
    inv_diag: Vec<f64>,
}

impl Ssor {
    /// Builds an SSOR preconditioner over the local matrix.
    pub fn new(a: &CsrMatrix, omega: f64) -> Self {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| if d == 0.0 { 1.0 } else { 1.0 / d })
            .collect();
        Ssor {
            a: a.clone(),
            omega,
            inv_diag,
        }
    }
}

impl Preconditioner for Ssor {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = r.len();
        // Forward sweep: (D/ω + L) z = r
        for i in 0..n {
            let mut s = r[i];
            for (j, v) in self.a.row(i) {
                if j < i {
                    s -= v * z[j];
                }
            }
            z[i] = self.omega * s * self.inv_diag[i];
        }
        // Backward sweep: (D/ω + U) z = D z / ω
        for i in (0..n).rev() {
            let mut s = 0.0;
            for (j, v) in self.a.row(i) {
                if j > i {
                    s += v * z[j];
                }
            }
            z[i] -= self.omega * s * self.inv_diag[i];
        }
    }
    fn name(&self) -> &'static str {
        "ssor"
    }
}

/// Zero-fill incomplete LU factorization.
///
/// Factors `A ≈ L·U` keeping only A's sparsity pattern, then applies
/// `z = U⁻¹ L⁻¹ r` by two triangular solves.
pub struct Ilu0 {
    /// Factorized matrix: strictly-lower entries hold L (unit diagonal
    /// implied), diagonal and upper hold U.
    lu: CsrMatrix,
}

impl Ilu0 {
    /// Computes the ILU(0) factorization (IKJ variant).
    pub fn new(a: &CsrMatrix) -> Self {
        let n = a.nrows();
        // Work in dense-row scratch for clarity; pattern stays A's.
        let mut rows: Vec<Vec<(usize, f64)>> = (0..n).map(|r| a.row(r).collect()).collect();
        for i in 1..n {
            // For each k < i present in row i:
            let cols_i: Vec<usize> = rows[i].iter().map(|&(c, _)| c).collect();
            for &k in cols_i.iter().filter(|&&c| c < i) {
                let akk = rows[k]
                    .iter()
                    .find(|&&(c, _)| c == k)
                    .map(|&(_, v)| v)
                    .unwrap_or(1.0);
                let factor = {
                    let aik = rows[i]
                        .iter_mut()
                        .find(|(c, _)| *c == k)
                        .expect("k in row i by construction");
                    aik.1 /= if akk == 0.0 { 1.0 } else { akk };
                    aik.1
                };
                // Row update restricted to A's pattern: a_ij -= factor*a_kj.
                let row_k = rows[k].clone();
                for &(j, akj) in row_k.iter().filter(|&&(c, _)| c > k) {
                    if let Some(entry) = rows[i].iter_mut().find(|(c, _)| *c == j) {
                        entry.1 -= factor * akj;
                    }
                }
            }
        }
        let mut triplets = Vec::new();
        for (r, row) in rows.iter().enumerate() {
            for &(c, v) in row {
                triplets.push((r, c, v));
            }
        }
        Ilu0 {
            lu: CsrMatrix::from_triplets(n, n, &triplets).expect("pattern preserved"),
        }
    }
}

impl Preconditioner for Ilu0 {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = r.len();
        // Forward solve L y = r (unit diagonal).
        for i in 0..n {
            let mut s = r[i];
            for (j, v) in self.lu.row(i) {
                if j < i {
                    s -= v * z[j];
                }
            }
            z[i] = s;
        }
        // Backward solve U z = y.
        for i in (0..n).rev() {
            let mut s = z[i];
            let mut diag = 1.0;
            for (j, v) in self.lu.row(i) {
                if j > i {
                    s -= v * z[j];
                } else if j == i {
                    diag = v;
                }
            }
            z[i] = s / if diag == 0.0 { 1.0 } else { diag };
        }
    }
    fn name(&self) -> &'static str {
        "ilu0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cg_iterations(p: &dyn Preconditioner, a: &CsrMatrix) -> usize {
        // Preconditioner quality measured the way users feel it: CG
        // iterations to 1e-8 on b = A·1.
        use crate::krylov::cg;
        use crate::vector::SerialReduce;
        let n = a.nrows();
        let ones = vec![1.0; n];
        let mut b = vec![0.0; n];
        a.matvec(&ones, &mut b);
        let mut x = vec![0.0; n];
        let stats = cg(a, p, &b, &mut x, 1e-8, 10_000, &SerialReduce).unwrap();
        assert!(stats.converged);
        stats.iterations
    }

    #[test]
    fn identity_is_identity() {
        let r = vec![1.0, -2.0, 3.0];
        let mut z = vec![0.0; 3];
        Identity.apply(&r, &mut z);
        assert_eq!(z, r);
        assert_eq!(Identity.name(), "none");
    }

    #[test]
    fn jacobi_inverts_diagonal_matrices_exactly() {
        let d = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)]).unwrap();
        let j = Jacobi::new(&d);
        let mut z = vec![0.0; 3];
        j.apply(&[2.0, 4.0, 8.0], &mut z);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn jacobi_handles_zero_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let j = Jacobi::new(&a);
        let mut z = vec![0.0; 2];
        j.apply(&[3.0, 5.0], &mut z);
        assert_eq!(z, vec![3.0, 5.0]); // identity on zero-diagonal rows
    }

    #[test]
    fn preconditioner_quality_ordering_on_laplacian() {
        // On the model problem the classical CG-iteration ordering holds:
        // ILU(0) < SSOR < Jacobi ≈ Identity. (Jacobi equals Identity here
        // because the Laplacian's diagonal is constant, so Jacobi is a
        // scalar rescaling that leaves the Krylov trajectory unchanged.)
        let a = CsrMatrix::laplacian_2d(12, 12);
        let it_id = cg_iterations(&Identity, &a);
        let it_jac = cg_iterations(&Jacobi::new(&a), &a);
        let it_ssor = cg_iterations(&Ssor::new(&a, 1.0), &a);
        let it_ilu = cg_iterations(&Ilu0::new(&a), &a);
        assert_eq!(it_jac, it_id, "jacobi {it_jac} vs identity {it_id}");
        assert!(it_ssor < it_jac, "ssor {it_ssor} vs jacobi {it_jac}");
        assert!(it_ilu < it_ssor, "ilu0 {it_ilu} vs ssor {it_ssor}");
    }

    #[test]
    fn ilu0_is_exact_for_triangular_patterns() {
        // A lower-triangular matrix factors exactly with zero fill, so
        // ILU(0) application solves A z = r exactly.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, 1.0),
                (2, 2, 4.0),
            ],
        )
        .unwrap();
        let ilu = Ilu0::new(&a);
        let x_true = vec![1.0, -2.0, 0.5];
        let mut r = vec![0.0; 3];
        a.matvec(&x_true, &mut r);
        let mut z = vec![0.0; 3];
        ilu.apply(&r, &mut z);
        for i in 0..3 {
            assert!((z[i] - x_true[i]).abs() < 1e-12, "z={z:?}");
        }
    }

    #[test]
    fn ilu0_exact_for_tridiagonal() {
        // Tridiagonal matrices have no fill-in, so ILU(0) = LU and the
        // apply is a direct solve.
        let a = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
                (2, 3, -1.0),
                (3, 2, -1.0),
                (3, 3, 2.0),
            ],
        )
        .unwrap();
        let ilu = Ilu0::new(&a);
        let x_true = vec![1.0, 2.0, -1.0, 3.0];
        let mut b = vec![0.0; 4];
        a.matvec(&x_true, &mut b);
        let mut z = vec![0.0; 4];
        ilu.apply(&b, &mut z);
        for i in 0..4 {
            assert!((z[i] - x_true[i]).abs() < 1e-10, "z={z:?}");
        }
    }

    #[test]
    fn names_distinguish_preconditioners() {
        let a = CsrMatrix::laplacian_2d(3, 3);
        assert_eq!(Jacobi::new(&a).name(), "jacobi");
        assert_eq!(Ssor::new(&a, 1.2).name(), "ssor");
        assert_eq!(Ilu0::new(&a).name(), "ilu0");
    }
}
