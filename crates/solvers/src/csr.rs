//! Compressed sparse row matrices.
//!
//! The storage format every 1999-era solver library (PETSc, ISIS++,
//! Aztec) used for the "very large ... sparse coefficient matrices" of
//! §2.2. Rows are local; in SPMD use each rank holds a block of rows and
//! column indices refer to a locally assembled (halo-extended) vector.

use cca_core::CcaError;

/// A CSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays, validating the invariants.
    pub fn new(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Result<Self, CcaError> {
        if indptr.len() != nrows + 1 {
            return Err(CcaError::Framework(format!(
                "indptr has length {}, expected {}",
                indptr.len(),
                nrows + 1
            )));
        }
        if indptr[0] != 0 || *indptr.last().unwrap() != indices.len() {
            return Err(CcaError::Framework("indptr endpoints invalid".into()));
        }
        if indices.len() != data.len() {
            return Err(CcaError::Framework(
                "indices and data lengths differ".into(),
            ));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(CcaError::Framework("indptr not monotone".into()));
        }
        if indices.iter().any(|&j| j >= ncols) {
            return Err(CcaError::Framework("column index out of range".into()));
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        })
    }

    /// Assembles from `(row, col, value)` triplets; duplicates accumulate.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, CcaError> {
        for &(r, c, _) in triplets {
            if r >= nrows || c >= ncols {
                return Err(CcaError::Framework(format!(
                    "triplet ({r},{c}) out of {nrows}x{ncols}"
                )));
            }
        }
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nrows];
        for &(r, c, v) in triplets {
            per_row[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(nrows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut data = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(c, _)| c);
            let mut last: Option<usize> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    *data.last_mut().unwrap() += v;
                } else {
                    indices.push(c);
                    data.push(v);
                    last = Some(c);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::new(nrows, ncols, indptr, indices, data)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Iterates the stored entries of one row as `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.data[lo..hi].iter().copied())
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length != ncols");
        assert_eq!(y.len(), self.nrows, "y length != nrows");
        for r in 0..self.nrows {
            let mut acc = 0.0;
            for k in self.indptr[r]..self.indptr[r + 1] {
                acc += self.data[k] * x[self.indices[k]];
            }
            y[r] = acc;
        }
    }

    /// The main diagonal (zeros where no entry is stored).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows.min(self.ncols)];
        for (r, item) in d.iter_mut().enumerate() {
            for (c, v) in self.row(r) {
                if c == r {
                    *item = v;
                }
            }
        }
        d
    }

    /// Dense reference (tests only — O(n²) memory).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.ncols]; self.nrows];
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                dense[r][c] += v;
            }
        }
        dense
    }

    /// The 5-point finite-difference Laplacian on an `nx × ny` grid with
    /// Dirichlet boundaries (row-major grid numbering: `idx = i + nx*j`).
    /// This is the "discretized linear system" of §2.2 in its simplest
    /// honest form.
    pub fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut triplets = Vec::with_capacity(5 * n);
        for j in 0..ny {
            for i in 0..nx {
                let idx = i + nx * j;
                triplets.push((idx, idx, 4.0));
                if i > 0 {
                    triplets.push((idx, idx - 1, -1.0));
                }
                if i + 1 < nx {
                    triplets.push((idx, idx + 1, -1.0));
                }
                if j > 0 {
                    triplets.push((idx, idx - nx, -1.0));
                }
                if j + 1 < ny {
                    triplets.push((idx, idx + nx, -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &triplets).expect("stencil triplets are valid")
    }

    /// Shifted operator `alpha I + beta A` with the same sparsity.
    pub fn shift_scale(&self, alpha: f64, beta: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= beta;
        }
        // Add alpha on the diagonal (entry must exist; laplacian has it).
        for r in 0..out.nrows {
            let mut found = false;
            for k in out.indptr[r]..out.indptr[r + 1] {
                if out.indices[k] == r {
                    out.data[k] += alpha;
                    found = true;
                }
            }
            assert!(found, "shift_scale requires stored diagonal");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.matvec(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn triplets_accumulate_duplicates() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]).unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.diagonal(), vec![3.0, 5.0]);
    }

    #[test]
    fn validation_rejects_bad_structure() {
        assert!(CsrMatrix::new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::new(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        assert!(CsrMatrix::new(1, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
        assert!(CsrMatrix::new(1, 1, vec![0, 1], vec![0], vec![]).is_err());
        assert!(CsrMatrix::from_triplets(1, 1, &[(3, 0, 1.0)]).is_err());
    }

    #[test]
    fn laplacian_structure() {
        let a = CsrMatrix::laplacian_2d(3, 3);
        assert_eq!(a.nrows(), 9);
        // Interior point (1,1) = idx 4 has 5 entries.
        assert_eq!(a.row(4).count(), 5);
        // Corner has 3.
        assert_eq!(a.row(0).count(), 3);
        // Row sums: zero in the interior, positive on the boundary
        // (Dirichlet), and the matrix is symmetric.
        let dense = a.to_dense();
        for r in 0..9 {
            for c in 0..9 {
                assert_eq!(dense[r][c], dense[c][r]);
            }
        }
        let interior_sum: f64 = dense[4].iter().sum();
        assert_eq!(interior_sum, 0.0);
        let corner_sum: f64 = dense[0].iter().sum();
        assert_eq!(corner_sum, 2.0);
    }

    #[test]
    fn shift_scale_builds_helmholtz_like_operator() {
        let a = CsrMatrix::laplacian_2d(3, 3);
        let shifted = a.shift_scale(1.0, 0.5); // I + 0.5 A
        let x = vec![1.0; 9];
        let mut ya = vec![0.0; 9];
        let mut ys = vec![0.0; 9];
        a.matvec(&x, &mut ya);
        shifted.matvec(&x, &mut ys);
        for i in 0..9 {
            assert!((ys[i] - (x[i] + 0.5 * ya[i])).abs() < 1e-14);
        }
    }

    #[test]
    fn empty_rows_are_legal() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (2, 2, 1.0)]).unwrap();
        assert_eq!(a.row(1).count(), 0);
        let mut y = vec![9.0; 3];
        a.matvec(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_triplets() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
        (1usize..8, 1usize..8).prop_flat_map(|(nr, nc)| {
            let t = proptest::collection::vec((0..nr, 0..nc, -5.0f64..5.0), 0..24);
            (Just(nr), Just(nc), t)
        })
    }

    proptest! {
        #[test]
        fn csr_matvec_matches_dense_reference((nr, nc, triplets) in arb_triplets(),
                                              seed in 0u64..1000) {
            let a = CsrMatrix::from_triplets(nr, nc, &triplets).unwrap();
            // Deterministic pseudo-random x from the seed.
            let x: Vec<f64> = (0..nc)
                .map(|i| (((seed + i as u64) * 2654435761) % 1000) as f64 / 100.0)
                .collect();
            let mut y = vec![0.0; nr];
            a.matvec(&x, &mut y);
            let dense = a.to_dense();
            for r in 0..nr {
                let want: f64 = (0..nc).map(|c| dense[r][c] * x[c]).sum();
                prop_assert!((y[r] - want).abs() < 1e-9);
            }
        }
    }
}
