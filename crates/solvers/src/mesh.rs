//! Block-decomposed 2-D structured mesh with halo exchange.
//!
//! CHAD "was designed from its inception as parallel code using Fortran 90
//! and encapsulation of nonlocal communication in gather/scatter routines
//! using MPI" (§2.1). [`Mesh2d`] reproduces that pattern: the global
//! `nx × ny` cell grid is block-decomposed along `y`, each rank stores its
//! rows plus one ghost row per side, and [`Mesh2d::halo_exchange`] is the
//! single gather/scatter routine hiding all communication.
//!
//! The owned-cell layout (`idx = i + nx * j_local`, first index fastest)
//! is exactly the column-major `[nx, ny_local]` layout that
//! `cca_data::DistArrayDesc` prescribes for a `[1, p]`-grid block
//! distribution, so mesh fields feed straight into collective M×N ports
//! with no repacking.

use cca_data::{DimDist, DistArrayDesc, Distribution, ProcessGrid};
use cca_parallel::{Comm, Tag};

/// Geometry and decomposition of one rank's share of the global mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh2d {
    /// Global cells in x.
    pub nx: usize,
    /// Global cells in y.
    pub ny: usize,
    /// Number of ranks in the 1-D (y) decomposition.
    pub p: usize,
    /// This rank.
    pub rank: usize,
    /// First owned row (global j index).
    pub j0: usize,
    /// Number of owned rows.
    pub ny_local: usize,
}

impl Mesh2d {
    /// Decomposes the `nx × ny` grid over `p` ranks with ceil-sized blocks
    /// (matching [`cca_data::DimDist::Block`], so descriptors agree).
    pub fn decompose(nx: usize, ny: usize, p: usize, rank: usize) -> Self {
        assert!(nx > 0 && ny > 0 && p > 0 && rank < p);
        let b = ny.div_ceil(p);
        let j0 = (rank * b).min(ny);
        let ny_local = b.min(ny.saturating_sub(j0));
        Mesh2d {
            nx,
            ny,
            p,
            rank,
            j0,
            ny_local,
        }
    }

    /// Number of owned cells.
    pub fn local_len(&self) -> usize {
        self.nx * self.ny_local
    }

    /// Length of a field buffer including one ghost row below and above.
    pub fn ghosted_len(&self) -> usize {
        self.nx * (self.ny_local + 2)
    }

    /// Offset of owned cell `(i, j_local)` in a ghosted buffer
    /// (the ghost row below is stored first).
    #[inline]
    pub fn gidx(&self, i: usize, j_local: usize) -> usize {
        i + self.nx * (j_local + 1)
    }

    /// Offset of owned cell `(i, j_local)` in an unghosted buffer.
    #[inline]
    pub fn idx(&self, i: usize, j_local: usize) -> usize {
        i + self.nx * j_local
    }

    /// Copies an owned field into a fresh ghosted buffer (ghosts zeroed).
    pub fn add_ghosts(&self, field: &[f64]) -> Vec<f64> {
        assert_eq!(field.len(), self.local_len());
        let mut out = vec![0.0; self.ghosted_len()];
        out[self.nx..self.nx + field.len()].copy_from_slice(field);
        out
    }

    /// Strips ghost rows.
    pub fn drop_ghosts(&self, ghosted: &[f64]) -> Vec<f64> {
        assert_eq!(ghosted.len(), self.ghosted_len());
        ghosted[self.nx..self.nx + self.local_len()].to_vec()
    }

    /// The gather/scatter routine: fills the two ghost rows of `ghosted`
    /// from the neighbouring ranks. Physical-boundary ghosts are set to
    /// zero (homogeneous Dirichlet). Serial meshes (`p == 1`) need no
    /// communicator.
    pub fn halo_exchange(&self, comm: Option<&Comm>, ghosted: &mut [f64], tag: Tag) {
        assert_eq!(ghosted.len(), self.ghosted_len());
        let nx = self.nx;
        let below = self.rank.checked_sub(1);
        let above = if self.rank + 1 < self.p {
            Some(self.rank + 1)
        } else {
            None
        };
        if self.p > 1 {
            let comm = comm.expect("parallel mesh requires a communicator");
            // Post sends of my edge rows first (channels never block).
            if let Some(b) = below {
                let first_row = ghosted[nx..2 * nx].to_vec();
                comm.send(b, tag, first_row).expect("send to below");
            }
            if let Some(a) = above {
                let last_row = ghosted[nx * self.ny_local..nx * (self.ny_local + 1)].to_vec();
                comm.send(a, tag, last_row).expect("send to above");
            }
            if let Some(b) = below {
                let row: Vec<f64> = comm.recv(b, tag).expect("recv from below");
                ghosted[0..nx].copy_from_slice(&row);
            }
            if let Some(a) = above {
                let row: Vec<f64> = comm.recv(a, tag).expect("recv from above");
                ghosted[nx * (self.ny_local + 1)..].copy_from_slice(&row);
            }
        }
        // Physical boundaries: zero ghosts.
        if below.is_none() {
            ghosted[0..nx].fill(0.0);
        }
        if above.is_none() {
            ghosted[nx * (self.ny_local + 1)..].fill(0.0);
        }
    }

    /// The distributed-array descriptor for owned fields (global
    /// `[nx, ny]`, block rows over a `[1, p]` grid) — the datum a
    /// collective port needs to couple this mesh to anything else.
    pub fn desc(&self) -> DistArrayDesc {
        let grid = ProcessGrid::new(&[1, self.p]).expect("valid grid");
        let dist =
            Distribution::new(grid, &[DimDist::Block, DimDist::Block]).expect("valid distribution");
        DistArrayDesc::new(&[self.nx, self.ny], dist).expect("valid descriptor")
    }

    /// Gathers the full global field onto rank 0 (`None` elsewhere).
    pub fn gather_global(&self, comm: Option<&Comm>, field: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(field.len(), self.local_len());
        if self.p == 1 {
            return Some(field.to_vec());
        }
        let comm = comm.expect("parallel mesh requires a communicator");
        let pieces = comm.gather(0, field.to_vec()).expect("gather");
        pieces.map(|ps| {
            let mut global = Vec::with_capacity(self.nx * self.ny);
            for p in ps {
                global.extend(p);
            }
            global
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_parallel::spmd;

    #[test]
    fn decomposition_covers_grid_exactly() {
        for ny in [1, 7, 8, 9, 16] {
            for p in [1, 2, 3, 4, 5] {
                let mut total = 0;
                let mut next = 0;
                for r in 0..p {
                    let m = Mesh2d::decompose(4, ny, p, r);
                    assert_eq!(m.j0, next.min(ny));
                    total += m.ny_local;
                    next = m.j0 + m.ny_local;
                }
                assert_eq!(total, ny, "ny={ny} p={p}");
            }
        }
    }

    #[test]
    fn decomposition_matches_dist_array_desc() {
        for (ny, p) in [(10, 3), (8, 4), (7, 2)] {
            for r in 0..p {
                let m = Mesh2d::decompose(5, ny, p, r);
                let desc = m.desc();
                assert_eq!(
                    desc.local_count(r).unwrap(),
                    m.local_len(),
                    "ny={ny} p={p} r={r}"
                );
                if m.ny_local > 0 {
                    assert_eq!(desc.owner_of(&[0, m.j0]).unwrap(), r);
                    assert_eq!(desc.owner_of(&[0, m.j0 + m.ny_local - 1]).unwrap(), r);
                }
            }
        }
    }

    #[test]
    fn ghost_round_trip() {
        let m = Mesh2d::decompose(3, 4, 1, 0);
        let field: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let g = m.add_ghosts(&field);
        assert_eq!(g.len(), m.ghosted_len());
        assert_eq!(m.drop_ghosts(&g), field);
        assert_eq!(g[m.gidx(0, 0)], 0.0);
        assert_eq!(g[m.gidx(2, 3)], 11.0);
    }

    #[test]
    fn serial_halo_is_dirichlet() {
        let m = Mesh2d::decompose(3, 2, 1, 0);
        let mut g = m.add_ghosts(&[5.0; 6]);
        // Pollute ghosts; the exchange must zero them.
        g[0] = 99.0;
        let last = g.len() - 1;
        g[last] = 99.0;
        m.halo_exchange(None, &mut g, 7);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[last], 0.0);
        assert_eq!(g[m.gidx(1, 1)], 5.0);
    }

    #[test]
    fn parallel_halo_exchanges_edge_rows() {
        let nx = 4;
        let ny = 8;
        let p = 4;
        spmd(p, |c| {
            let m = Mesh2d::decompose(nx, ny, p, c.rank());
            // Field value = global row index.
            let field: Vec<f64> = (0..m.local_len()).map(|k| (m.j0 + k / nx) as f64).collect();
            let mut g = m.add_ghosts(&field);
            m.halo_exchange(Some(c), &mut g, 3);
            // Ghost below holds j0-1, ghost above holds j0+ny_local.
            if m.j0 > 0 {
                assert_eq!(g[0], (m.j0 - 1) as f64);
            } else {
                assert_eq!(g[0], 0.0);
            }
            let top = m.gidx(0, m.ny_local);
            if m.j0 + m.ny_local < ny {
                assert_eq!(g[top], (m.j0 + m.ny_local) as f64);
            } else {
                assert_eq!(g[top], 0.0);
            }
        });
    }

    #[test]
    fn gather_global_reconstructs_field() {
        let nx = 3;
        let ny = 7;
        let p = 3;
        let results = spmd(p, |c| {
            let m = Mesh2d::decompose(nx, ny, p, c.rank());
            let field: Vec<f64> = (0..m.local_len()).map(|k| (k + m.j0 * nx) as f64).collect();
            m.gather_global(Some(c), &field)
        });
        let global = results[0].as_ref().unwrap();
        assert_eq!(global.len(), nx * ny);
        for (k, v) in global.iter().enumerate() {
            assert_eq!(*v, k as f64);
        }
        assert!(results[1].is_none());
    }

    #[test]
    fn more_ranks_than_rows() {
        // 5 ranks, 3 rows: ranks 3,4 own nothing but stay consistent.
        for r in 0..5 {
            let m = Mesh2d::decompose(2, 3, 5, r);
            if r < 3 {
                assert_eq!(m.ny_local, 1);
            } else {
                assert_eq!(m.ny_local, 0);
            }
        }
    }
}
