//! BLAS-1 kernels and the serial/parallel reduction abstraction.
//!
//! Krylov methods only touch the distribution of a vector in two places:
//! inner products and norms. [`Reduction`] abstracts that: a serial solver
//! sums locally; an SPMD solver hands partial sums to `allreduce`. All
//! other kernels (axpy, scale, copy) are embarrassingly local.

use cca_parallel::{Comm, ReduceOp, SumOp};

/// Where global sums come from.
pub trait Reduction {
    /// Reduces a local partial sum to the global sum (on every caller).
    fn global_sum(&self, local: f64) -> f64;

    /// Reduces two partial sums at once (one message in SPMD contexts —
    /// the classic latency optimization for CG's paired dots).
    fn global_sum2(&self, a: f64, b: f64) -> (f64, f64) {
        (self.global_sum(a), self.global_sum(b))
    }
}

/// Serial context: sums are already global.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialReduce;

impl Reduction for SerialReduce {
    fn global_sum(&self, local: f64) -> f64 {
        local
    }
}

/// SPMD context: partial sums go through `allreduce` on a communicator.
pub struct CommReduce<'a>(pub &'a Comm);

impl Reduction for CommReduce<'_> {
    fn global_sum(&self, local: f64) -> f64 {
        self.0
            .allreduce(local, &SumOp)
            .expect("allreduce on live communicator")
    }

    fn global_sum2(&self, a: f64, b: f64) -> (f64, f64) {
        struct PairSum;
        impl ReduceOp<(f64, f64)> for PairSum {
            fn combine(&self, x: (f64, f64), y: (f64, f64)) -> (f64, f64) {
                (x.0 + y.0, x.1 + y.1)
            }
        }
        self.0
            .allreduce((a, b), &PairSum)
            .expect("allreduce on live communicator")
    }
}

/// Local dot product of two equal-length slices.
#[inline]
pub fn dot_local(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Global dot product under a reduction context.
#[inline]
pub fn dot<R: Reduction>(r: &R, x: &[f64], y: &[f64]) -> f64 {
    r.global_sum(dot_local(x, y))
}

/// Global 2-norm under a reduction context.
#[inline]
pub fn norm2<R: Reduction>(r: &R, x: &[f64]) -> f64 {
    r.global_sum(dot_local(x, x)).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (the CG direction update).
#[inline]
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Copies `x` into `y`.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_parallel::spmd;

    #[test]
    fn local_kernels() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![4.0, 5.0, 6.0];
        assert_eq!(dot_local(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, vec![4.0, 6.5, 9.0]);
        scale(2.0, &mut y);
        assert_eq!(y, vec![8.0, 13.0, 18.0]);
        let mut z = vec![0.0; 3];
        copy(&x, &mut z);
        assert_eq!(z, x);
    }

    #[test]
    fn serial_reduction_is_identity() {
        let r = SerialReduce;
        assert_eq!(r.global_sum(5.5), 5.5);
        assert_eq!(r.global_sum2(1.0, 2.0), (1.0, 2.0));
        assert_eq!(norm2(&r, &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn comm_reduction_matches_serial() {
        // Global vector [0,1,2,...,11] split over 3 ranks.
        let global: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let serial_dot = dot_local(&global, &global);
        let results = spmd(3, |c| {
            let chunk = &global[c.rank() * 4..(c.rank() + 1) * 4];
            let r = CommReduce(c);
            let d = dot(&r, chunk, chunk);
            let (a, b) = r.global_sum2(chunk.iter().sum(), 1.0);
            (d, a, b)
        });
        for (d, a, b) in results {
            assert_eq!(d, serial_dot);
            assert_eq!(a, global.iter().sum::<f64>());
            assert_eq!(b, 3.0);
        }
    }
}
