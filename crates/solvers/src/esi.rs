//! The ESI-style port layer: SIDL description, Rust port traits, and CCA
//! components wrapping the numerical kernels.
//!
//! This is where the toolkit becomes *components*: a matrix provider, a
//! preconditioner, and a Krylov solver, each a [`cca_core::Component`]
//! with SIDL-described ports, wireable by the reference framework exactly
//! as Figure 1 draws them. Each provides port carries both the typed trait
//! object (direct-connect fast path) and a [`cca_sidl::DynObject`] facade
//! (reflective calls and proxied connections).

use crate::csr::CsrMatrix;
use crate::krylov::{solve, KrylovKind, LinearOperator, SolveStats};
use crate::precond::{Identity, Ilu0, Jacobi, Preconditioner, Ssor};
use crate::vector::SerialReduce;
use cca_core::{CcaError, CcaServices, Component, PortHandle};
use cca_data::{NdArray, TypeMap};
use cca_sidl::{DynObject, DynValue, SidlError};
use parking_lot::Mutex;
use std::sync::Arc;

/// The SIDL description of this package's ports — deposit into a
/// repository with `repo.deposit_sidl(ESI_SIDL)`.
pub const ESI_SIDL: &str = r#"
package esi version 1.0 {
    /** Raised when an iterative solve fails to converge. */
    class SolveFailure { string message(); }

    /** y = A x over the caller's local rows. */
    interface Operator {
        int rows();
        array<double, 1> apply(in array<double, 1> x);
    }

    /** An operator that can also expose its sparse matrix. */
    interface MatrixOperator extends Operator {
        int nnz();
    }

    /** z = inv(M) r. */
    interface Preconditioner {
        array<double, 1> applyInverse(in array<double, 1> r);
        string name();
    }

    /** Solves A x = b to a relative tolerance. */
    interface LinearSolver {
        array<double, 1> solve(in array<double, 1> b) throws esi.SolveFailure;
        int lastIterations();
    }
}
"#;

// ---- typed port traits ---------------------------------------------------

/// The `esi.Operator` / `esi.MatrixOperator` port.
pub trait OperatorPort: Send + Sync {
    /// Local row count.
    fn rows(&self) -> usize;
    /// `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// The CSR matrix behind the operator, when one exists (preconditioner
    /// setup needs it).
    fn csr(&self) -> Option<CsrMatrix> {
        None
    }
}

/// The `esi.Preconditioner` port.
pub trait PreconditionerPort: Send + Sync {
    /// `z = M⁻¹ r`.
    fn apply_inverse(&self, r: &[f64], z: &mut [f64]);
    /// Preconditioner name.
    fn precond_name(&self) -> String;
}

/// The `esi.LinearSolver` port.
pub trait LinearSolverPort: Send + Sync {
    /// Solves `A x = b`, returning the solution and statistics.
    fn solve_system(&self, b: &[f64]) -> Result<(Vec<f64>, SolveStats), CcaError>;
}

// ---- matrix component ------------------------------------------------------

/// A component providing a CSR matrix as an `esi.MatrixOperator` port
/// named `"A"`.
pub struct MatrixComponent {
    a: Arc<CsrMatrix>,
}

impl MatrixComponent {
    /// Wraps a matrix.
    pub fn new(a: CsrMatrix) -> Arc<Self> {
        Arc::new(MatrixComponent { a: Arc::new(a) })
    }
}

struct MatrixOperator {
    a: Arc<CsrMatrix>,
}

impl OperatorPort for MatrixOperator {
    fn rows(&self) -> usize {
        self.a.nrows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.a.matvec(x, y);
    }
    fn csr(&self) -> Option<CsrMatrix> {
        Some((*self.a).clone())
    }
}

impl DynObject for MatrixOperator {
    fn sidl_type(&self) -> &str {
        "esi.MatrixOperator"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "rows" => Ok(DynValue::Int(self.a.nrows() as i32)),
            "nnz" => Ok(DynValue::Int(self.a.nnz() as i32)),
            "apply" => {
                let x = args
                    .first()
                    .ok_or_else(|| SidlError::invoke("apply expects 1 argument"))?
                    .as_double_array()?;
                let mut y = vec![0.0; self.a.nrows()];
                self.a.matvec(x.as_slice(), &mut y);
                Ok(DynValue::DoubleArray(
                    NdArray::from_vec(&[y.len()], y).expect("length matches"),
                ))
            }
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

impl Component for MatrixComponent {
    fn component_type(&self) -> &str {
        "esi.MatrixComponent"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let op = Arc::new(MatrixOperator {
            a: Arc::clone(&self.a),
        });
        let typed: Arc<dyn OperatorPort> = op.clone();
        let dynamic: Arc<dyn DynObject> = op;
        services.add_provides_port(
            PortHandle::new("A", "esi.MatrixOperator", typed).with_dynamic(dynamic),
        )
    }
}

// ---- preconditioner component ----------------------------------------------

/// Which preconditioner a [`PrecondComponent`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecondKind {
    /// `M = I`.
    Identity,
    /// Diagonal scaling.
    Jacobi,
    /// Symmetric SOR with ω = 1.
    Ssor,
    /// Zero-fill incomplete LU.
    Ilu0,
}

impl PrecondKind {
    fn build(self, a: Option<&CsrMatrix>) -> Result<Box<dyn Preconditioner>, CcaError> {
        match self {
            PrecondKind::Identity => Ok(Box::new(Identity)),
            kind => {
                let a = a.ok_or_else(|| {
                    CcaError::Framework(format!(
                        "{kind:?} preconditioner needs a matrix-backed operator"
                    ))
                })?;
                Ok(match kind {
                    PrecondKind::Jacobi => Box::new(Jacobi::new(a)),
                    PrecondKind::Ssor => Box::new(Ssor::new(a, 1.0)),
                    PrecondKind::Ilu0 => Box::new(Ilu0::new(a)),
                    PrecondKind::Identity => unreachable!(),
                })
            }
        }
    }
}

/// A component that *uses* an operator port `"A"` and *provides* an
/// `esi.Preconditioner` port `"M"`, building its factorization lazily on
/// first application (after the builder has wired it).
pub struct PrecondComponent {
    kind: PrecondKind,
    services: Mutex<Option<Arc<CcaServices>>>,
    built: Mutex<Option<Arc<dyn Preconditioner>>>,
}

impl PrecondComponent {
    /// Creates a component that will build the given preconditioner kind.
    pub fn new(kind: PrecondKind) -> Arc<Self> {
        Arc::new(PrecondComponent {
            kind,
            services: Mutex::new(None),
            built: Mutex::new(None),
        })
    }

    fn ensure_built(&self) -> Result<Arc<dyn Preconditioner>, CcaError> {
        if let Some(p) = self.built.lock().clone() {
            return Ok(p);
        }
        let services = self
            .services
            .lock()
            .clone()
            .ok_or_else(|| CcaError::Framework("setServices not called".into()))?;
        let op: Arc<dyn OperatorPort> = services.get_port_as("A")?;
        let pre: Arc<dyn Preconditioner> = self.kind.build(op.csr().as_ref())?.into();
        *self.built.lock() = Some(Arc::clone(&pre));
        Ok(pre)
    }
}

struct PrecondFacade {
    owner: Arc<PrecondComponent>,
}

impl PreconditionerPort for PrecondFacade {
    fn apply_inverse(&self, r: &[f64], z: &mut [f64]) {
        match self.owner.ensure_built() {
            Ok(p) => p.apply(r, z),
            Err(_) => z.copy_from_slice(r), // degrade to identity
        }
    }
    fn precond_name(&self) -> String {
        match self.owner.ensure_built() {
            Ok(p) => p.name().to_string(),
            Err(_) => "unbuilt".to_string(),
        }
    }
}

impl DynObject for PrecondFacade {
    fn sidl_type(&self) -> &str {
        "esi.Preconditioner"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "applyInverse" => {
                let r = args
                    .first()
                    .ok_or_else(|| SidlError::invoke("applyInverse expects 1 argument"))?
                    .as_double_array()?;
                let mut z = vec![0.0; r.len()];
                self.apply_inverse(r.as_slice(), &mut z);
                Ok(DynValue::DoubleArray(
                    NdArray::from_vec(&[z.len()], z).expect("length matches"),
                ))
            }
            "name" => Ok(DynValue::Str(self.precond_name())),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

impl Component for PrecondComponent {
    fn component_type(&self) -> &str {
        "esi.PrecondComponent"
    }
    fn set_services(self: &PrecondComponent, services: Arc<CcaServices>) -> Result<(), CcaError> {
        // The trick: the facade needs an Arc back to self. Components are
        // created as Arc<Self>, so we rebuild one from the services table
        // via a weak-free clone: store services first, then register the
        // facade holding a fresh Arc<PrecondComponent> that shares state.
        *self.services.lock() = Some(Arc::clone(&services));
        Ok(())
    }
}

/// Finishes wiring a [`PrecondComponent`]: registers its uses/provides
/// ports. Called by assembly helpers after `add_instance` (which consumed
/// `set_services`). Needing the `Arc` explains the two-phase setup.
pub fn expose_precond_ports(c: &Arc<PrecondComponent>) -> Result<(), CcaError> {
    let services = c
        .services
        .lock()
        .clone()
        .ok_or_else(|| CcaError::Framework("setServices not called".into()))?;
    services.register_uses_port("A", "esi.MatrixOperator", TypeMap::new())?;
    let facade = Arc::new(PrecondFacade {
        owner: Arc::clone(c),
    });
    let typed: Arc<dyn PreconditionerPort> = facade.clone();
    let dynamic: Arc<dyn DynObject> = facade;
    services
        .add_provides_port(PortHandle::new("M", "esi.Preconditioner", typed).with_dynamic(dynamic))
}

// ---- Krylov solver component -------------------------------------------------

/// Solver configuration for [`SolverComponent`].
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Krylov method.
    pub kind: KrylovKind,
    /// Relative tolerance.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            kind: KrylovKind::Cg,
            tol: 1e-8,
            max_iter: 1000,
        }
    }
}

/// A component that uses `"A"` (operator) and optionally `"M"`
/// (preconditioner) ports and provides an `esi.LinearSolver` port named
/// `"solver"`.
pub struct SolverComponent {
    cfg: SolverConfig,
    services: Mutex<Option<Arc<CcaServices>>>,
    last_stats: Mutex<Option<SolveStats>>,
}

impl SolverComponent {
    /// Creates a solver component.
    pub fn new(cfg: SolverConfig) -> Arc<Self> {
        Arc::new(SolverComponent {
            cfg,
            services: Mutex::new(None),
            last_stats: Mutex::new(None),
        })
    }

    /// Statistics of the most recent solve, if any.
    pub fn last_stats(&self) -> Option<SolveStats> {
        *self.last_stats.lock()
    }
}

/// Adapter: a uses-port operator as a [`LinearOperator`].
struct PortOperator {
    port: Arc<dyn OperatorPort>,
}

impl LinearOperator for PortOperator {
    fn rows(&self) -> usize {
        self.port.rows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.port.apply(x, y);
    }
}

/// Adapter: a uses-port preconditioner as a [`Preconditioner`].
struct PortPrecond {
    port: Arc<dyn PreconditionerPort>,
}

impl Preconditioner for PortPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.port.apply_inverse(r, z);
    }
    fn name(&self) -> &'static str {
        "port"
    }
}

struct SolverFacade {
    owner: Arc<SolverComponent>,
}

impl LinearSolverPort for SolverFacade {
    fn solve_system(&self, b: &[f64]) -> Result<(Vec<f64>, SolveStats), CcaError> {
        let services = self
            .owner
            .services
            .lock()
            .clone()
            .ok_or_else(|| CcaError::Framework("setServices not called".into()))?;
        let a: Arc<dyn OperatorPort> = services.get_port_as("A")?;
        let op = PortOperator { port: a };
        let pre: Box<dyn Preconditioner> = match services.get_port_as::<dyn PreconditionerPort>("M")
        {
            Ok(p) => Box::new(PortPrecond { port: p }),
            Err(_) => Box::new(Identity), // unconnected M: run unpreconditioned
        };
        let mut x = vec![0.0; b.len()];
        let stats = solve(
            self.owner.cfg.kind,
            &op,
            pre.as_ref(),
            b,
            &mut x,
            self.owner.cfg.tol,
            self.owner.cfg.max_iter,
            &SerialReduce,
        )?;
        *self.owner.last_stats.lock() = Some(stats);
        if !stats.converged {
            return Err(CcaError::Sidl(SidlError::user(
                "esi.SolveFailure",
                format!(
                    "did not converge: {} iterations, residual {:.3e}",
                    stats.iterations, stats.residual
                ),
            )));
        }
        Ok((x, stats))
    }
}

impl DynObject for SolverFacade {
    fn sidl_type(&self) -> &str {
        "esi.LinearSolver"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "solve" => {
                let b = args
                    .first()
                    .ok_or_else(|| SidlError::invoke("solve expects 1 argument"))?
                    .as_double_array()?;
                let (x, _stats) = self.solve_system(b.as_slice()).map_err(|e| match e {
                    CcaError::Sidl(se) => se,
                    other => SidlError::invoke(other.to_string()),
                })?;
                Ok(DynValue::DoubleArray(
                    NdArray::from_vec(&[x.len()], x).expect("length matches"),
                ))
            }
            "lastIterations" => Ok(DynValue::Int(
                self.owner
                    .last_stats()
                    .map(|s| s.iterations as i32)
                    .unwrap_or(-1),
            )),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

impl Component for SolverComponent {
    fn component_type(&self) -> &str {
        "esi.SolverComponent"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        *self.services.lock() = Some(services);
        Ok(())
    }
}

/// Finishes wiring a [`SolverComponent`] (two-phase setup, as with
/// [`expose_precond_ports`]).
pub fn expose_solver_ports(c: &Arc<SolverComponent>) -> Result<(), CcaError> {
    let services = c
        .services
        .lock()
        .clone()
        .ok_or_else(|| CcaError::Framework("setServices not called".into()))?;
    services.register_uses_port("A", "esi.MatrixOperator", TypeMap::new())?;
    services.register_uses_port("M", "esi.Preconditioner", TypeMap::new())?;
    let facade = Arc::new(SolverFacade {
        owner: Arc::clone(c),
    });
    let typed: Arc<dyn LinearSolverPort> = facade.clone();
    let dynamic: Arc<dyn DynObject> = facade;
    services.add_provides_port(
        PortHandle::new("solver", "esi.LinearSolver", typed).with_dynamic(dynamic),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_framework::{ConnectionPolicy, Framework};
    use cca_repository::Repository;

    /// Assembles matrix + preconditioner + solver in a framework and
    /// returns (framework, solver component).
    fn assemble(
        a: CsrMatrix,
        pkind: PrecondKind,
        policy: ConnectionPolicy,
    ) -> (Arc<Framework>, Arc<SolverComponent>) {
        let repo = Repository::new();
        repo.deposit_sidl(ESI_SIDL).unwrap();
        let fw = Framework::with_policy(repo, policy);
        let matrix = MatrixComponent::new(a);
        let precond = PrecondComponent::new(pkind);
        let solver = SolverComponent::new(SolverConfig::default());
        fw.add_instance("matrix0", matrix).unwrap();
        fw.add_instance("precond0", precond.clone()).unwrap();
        fw.add_instance("solver0", solver.clone()).unwrap();
        expose_precond_ports(&precond).unwrap();
        expose_solver_ports(&solver).unwrap();
        fw.connect("precond0", "A", "matrix0", "A").unwrap();
        fw.connect("solver0", "A", "matrix0", "A").unwrap();
        fw.connect("solver0", "M", "precond0", "M").unwrap();
        (fw, solver)
    }

    fn poisson_problem(nx: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = CsrMatrix::laplacian_2d(nx, nx);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64).collect();
        let mut b = vec![0.0; n];
        a.matvec(&x_true, &mut b);
        (a, b, x_true)
    }

    #[test]
    fn figure1_assembly_solves_through_ports() {
        let (a, b, x_true) = poisson_problem(8);
        let (fw, solver) = assemble(a, PrecondKind::Jacobi, ConnectionPolicy::Direct);
        let port: Arc<dyn LinearSolverPort> = fw
            .services("solver0")
            .unwrap()
            .get_provides_port("solver")
            .unwrap()
            .typed()
            .unwrap();
        let (x, stats) = port.solve_system(&b).unwrap();
        assert!(stats.converged);
        assert_eq!(solver.last_stats().unwrap().iterations, stats.iterations);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-5);
        }
    }

    #[test]
    fn preconditioner_choice_changes_iteration_count() {
        let (a, b, _) = poisson_problem(12);
        let mut iters = Vec::new();
        for pkind in [
            PrecondKind::Identity,
            PrecondKind::Jacobi,
            PrecondKind::Ilu0,
        ] {
            let (fw, _solver) = assemble(a.clone(), pkind, ConnectionPolicy::Direct);
            let port: Arc<dyn LinearSolverPort> = fw
                .services("solver0")
                .unwrap()
                .get_provides_port("solver")
                .unwrap()
                .typed()
                .unwrap();
            let (_, stats) = port.solve_system(&b).unwrap();
            iters.push(stats.iterations);
        }
        // ILU(0) must beat unpreconditioned on the model problem.
        assert!(iters[2] < iters[0], "{iters:?}");
    }

    #[test]
    fn solve_through_proxied_connection_gives_same_answer() {
        let (a, b, _) = poisson_problem(6);
        // Direct reference.
        let (fw_d, _) = assemble(a.clone(), PrecondKind::Jacobi, ConnectionPolicy::Direct);
        let direct: Arc<dyn LinearSolverPort> = fw_d
            .services("solver0")
            .unwrap()
            .get_provides_port("solver")
            .unwrap()
            .typed()
            .unwrap();
        let (x_direct, _) = direct.solve_system(&b).unwrap();
        // Proxied assembly: the solver's dynamic facade is called through
        // the ORB by an external driver.
        let (fw_p, _) = assemble(a, PrecondKind::Jacobi, ConnectionPolicy::Direct);
        // Use the provides port's dynamic facade through an explicit ORB
        // proxy (simulates a remote driver).
        let handle = fw_p
            .services("solver0")
            .unwrap()
            .get_provides_port("solver")
            .unwrap();
        let servant = handle.dynamic().unwrap().clone();
        let orb = cca_rpc::Orb::new();
        orb.register("solver", servant);
        let objref = cca_rpc::ObjRef::loopback("solver", orb);
        let arr = NdArray::from_vec(&[b.len()], b.clone()).unwrap();
        let reply = objref
            .invoke("solve", vec![DynValue::DoubleArray(arr)])
            .unwrap();
        let DynValue::DoubleArray(x_remote) = reply else {
            panic!("expected array reply");
        };
        for (d, r) in x_direct.iter().zip(x_remote.as_slice()) {
            assert!((d - r).abs() < 1e-12);
        }
    }

    #[test]
    fn unconnected_preconditioner_degrades_to_identity() {
        let (a, b, _) = poisson_problem(6);
        let repo = Repository::new();
        repo.deposit_sidl(ESI_SIDL).unwrap();
        let fw = Framework::new(repo);
        let matrix = MatrixComponent::new(a);
        let solver = SolverComponent::new(SolverConfig::default());
        fw.add_instance("matrix0", matrix).unwrap();
        fw.add_instance("solver0", solver.clone()).unwrap();
        expose_solver_ports(&solver).unwrap();
        fw.connect("solver0", "A", "matrix0", "A").unwrap();
        // "M" left unconnected.
        let port: Arc<dyn LinearSolverPort> = fw
            .services("solver0")
            .unwrap()
            .get_provides_port("solver")
            .unwrap()
            .typed()
            .unwrap();
        let (_, stats) = port.solve_system(&b).unwrap();
        assert!(stats.converged);
    }

    #[test]
    fn non_convergence_raises_solve_failure() {
        let (a, b, _) = poisson_problem(10);
        let repo = Repository::new();
        repo.deposit_sidl(ESI_SIDL).unwrap();
        let fw = Framework::new(repo);
        let matrix = MatrixComponent::new(a);
        let solver = SolverComponent::new(SolverConfig {
            kind: KrylovKind::Cg,
            tol: 1e-14,
            max_iter: 2, // far too few
        });
        fw.add_instance("matrix0", matrix).unwrap();
        fw.add_instance("solver0", solver.clone()).unwrap();
        expose_solver_ports(&solver).unwrap();
        fw.connect("solver0", "A", "matrix0", "A").unwrap();
        let port: Arc<dyn LinearSolverPort> = fw
            .services("solver0")
            .unwrap()
            .get_provides_port("solver")
            .unwrap()
            .typed()
            .unwrap();
        let err = port.solve_system(&b).unwrap_err();
        assert!(err.to_string().contains("SolveFailure"), "{err}");
    }

    #[test]
    fn sidl_description_compiles_and_matches_ports() {
        let model = cca_sidl::compile(ESI_SIDL).unwrap();
        let q = cca_sidl::QName::parse;
        assert!(model.interface(&q("esi.LinearSolver")).is_some());
        assert!(model.is_subtype_of(&q("esi.MatrixOperator"), &q("esi.Operator")));
        let reflection = cca_sidl::Reflection::from_model(&model);
        let solver_info = reflection.type_info("esi.LinearSolver").unwrap();
        assert!(solver_info.method("solve").is_some());
        assert_eq!(
            solver_info.method("solve").unwrap().throws,
            vec!["esi.SolveFailure".to_string()]
        );
    }

    #[test]
    fn swap_preconditioner_mid_run_via_redirect() {
        let (a, b, _) = poisson_problem(8);
        let (fw, _solver) = assemble(a, PrecondKind::Identity, ConnectionPolicy::Direct);
        let port: Arc<dyn LinearSolverPort> = fw
            .services("solver0")
            .unwrap()
            .get_provides_port("solver")
            .unwrap()
            .typed()
            .unwrap();
        let (_, stats_identity) = port.solve_system(&b).unwrap();
        // Drop in an ILU(0) preconditioner component and redirect (§2.2:
        // "introduce new components during the course of ongoing
        // simulations").
        let better = PrecondComponent::new(PrecondKind::Ilu0);
        fw.add_instance("precond1", better.clone()).unwrap();
        expose_precond_ports(&better).unwrap();
        fw.connect("precond1", "A", "matrix0", "A").unwrap();
        fw.redirect("solver0", "M", "precond0", "precond1", "M")
            .unwrap();
        let (_, stats_ilu) = port.solve_system(&b).unwrap();
        assert!(
            stats_ilu.iterations < stats_identity.iterations,
            "ilu {} vs identity {}",
            stats_ilu.iterations,
            stats_identity.iterations
        );
    }
}
