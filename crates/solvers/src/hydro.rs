//! CHAD-mini: a semi-implicit 2-D advection–diffusion solver.
//!
//! The paper's motivating application (§2) solves compressible
//! Navier–Stokes with semi-implicit timestepping, whose "most
//! computationally intensive phase ... is the solution of discretized
//! linear systems". We reproduce the *structure* with an honest scalar
//! model problem: advect a scalar field explicitly (first-order upwind),
//! diffuse it implicitly (backward Euler), so every timestep assembles a
//! right-hand side and solves the SPD system `(I + ν·Δt/h² · L) u = u*`
//! with a Krylov method — exactly the mesh → discretization →
//! preconditioner ⇄ solver pipeline of Figure 1.
//!
//! The same code runs serial (`p = 1`, no communicator) and SPMD; E6
//! compares this *monolithic* implementation against the identical
//! numerics assembled from CCA components.

use crate::csr::CsrMatrix;
use crate::krylov::{solve, KrylovKind, LinearOperator, SolveStats};
use crate::mesh::Mesh2d;
use crate::precond::Preconditioner;
use crate::vector::{CommReduce, Reduction, SerialReduce};
use cca_core::CcaError;
use cca_parallel::{Comm, Tag};

/// Message tag used by the hydro halo exchanges.
pub const HYDRO_TAG: Tag = 0x48; // 'H'

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HydroConfig {
    /// Global cells in x.
    pub nx: usize,
    /// Global cells in y.
    pub ny: usize,
    /// Timestep.
    pub dt: f64,
    /// Kinematic viscosity (diffusion coefficient).
    pub nu: f64,
    /// Advection velocity (x component).
    pub vx: f64,
    /// Advection velocity (y component).
    pub vy: f64,
    /// Relative tolerance of the implicit solve.
    pub tol: f64,
    /// Iteration budget of the implicit solve.
    pub max_iter: usize,
    /// Krylov method for the implicit solve.
    pub kind: KrylovKind,
}

impl Default for HydroConfig {
    fn default() -> Self {
        HydroConfig {
            nx: 32,
            ny: 32,
            dt: 5e-4,
            nu: 0.1,
            vx: 1.0,
            vy: 0.5,
            tol: 1e-8,
            max_iter: 500,
            kind: KrylovKind::Cg,
        }
    }
}

/// Serial-or-parallel reduction selector.
enum EitherReduce<'a> {
    Serial(SerialReduce),
    Comm(CommReduce<'a>),
}

impl Reduction for EitherReduce<'_> {
    fn global_sum(&self, local: f64) -> f64 {
        match self {
            EitherReduce::Serial(r) => r.global_sum(local),
            EitherReduce::Comm(r) => r.global_sum(local),
        }
    }
    fn global_sum2(&self, a: f64, b: f64) -> (f64, f64) {
        match self {
            EitherReduce::Serial(r) => r.global_sum2(a, b),
            EitherReduce::Comm(r) => r.global_sum2(a, b),
        }
    }
}

fn reduce_for<'a>(comm: Option<&'a Comm>) -> EitherReduce<'a> {
    match comm {
        Some(c) if c.size() > 1 => EitherReduce::Comm(CommReduce(c)),
        _ => EitherReduce::Serial(SerialReduce),
    }
}

/// The pluggable implicit-solve hook: given the operator and right-hand
/// side, fill `x` with the solution (see
/// [`HydroSim::step_with_solver`]).
pub type SolveFn<'a> =
    dyn Fn(&DiffusionOp<'_>, &[f64], &mut [f64]) -> Result<SolveStats, CcaError> + 'a;

/// The implicit-diffusion operator `(I + c·L)` applied matrix-free with a
/// halo exchange per application — the parallel mat-vec of §2.1's
/// gather/scatter pattern.
pub struct DiffusionOp<'a> {
    /// Mesh geometry for this rank.
    pub mesh: &'a Mesh2d,
    /// Communicator (None for serial meshes).
    pub comm: Option<&'a Comm>,
    /// `ν·Δt / h²`.
    pub coef: f64,
}

impl LinearOperator for DiffusionOp<'_> {
    fn rows(&self) -> usize {
        self.mesh.local_len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let m = self.mesh;
        let nx = m.nx;
        let mut g = m.add_ghosts(x);
        m.halo_exchange(self.comm, &mut g, HYDRO_TAG);
        for j in 0..m.ny_local {
            for i in 0..nx {
                let c = g[m.gidx(i, j)];
                let w = if i > 0 { g[m.gidx(i - 1, j)] } else { 0.0 };
                let e = if i + 1 < nx { g[m.gidx(i + 1, j)] } else { 0.0 };
                let s = g[m.gidx(i, j) - nx]; // ghosted row below
                let n = g[m.gidx(i, j) + nx]; // ghosted row above
                y[m.idx(i, j)] = c + self.coef * (4.0 * c - w - e - s - n);
            }
        }
    }
}

/// One rank's share of the simulation.
pub struct HydroSim {
    /// Parameters.
    pub cfg: HydroConfig,
    /// This rank's mesh block.
    pub mesh: Mesh2d,
    /// The scalar field on owned cells.
    pub u: Vec<f64>,
    h: f64,
    coef: f64,
}

impl HydroSim {
    /// Creates rank `rank` of `p` with a Gaussian blob initial condition
    /// centred at (0.3, 0.4) in the unit square.
    pub fn new(cfg: HydroConfig, p: usize, rank: usize) -> Self {
        let mesh = Mesh2d::decompose(cfg.nx, cfg.ny, p, rank);
        let h = 1.0 / (cfg.nx as f64 + 1.0);
        let coef = cfg.nu * cfg.dt / (h * h);
        let mut u = vec![0.0; mesh.local_len()];
        for j in 0..mesh.ny_local {
            for i in 0..mesh.nx {
                let x = (i as f64 + 1.0) * h;
                let y = (mesh.j0 as f64 + j as f64 + 1.0) / (cfg.ny as f64 + 1.0);
                let dx = x - 0.3;
                let dy = y - 0.4;
                u[mesh.idx(i, j)] = (-(dx * dx + dy * dy) / 0.01).exp();
            }
        }
        HydroSim {
            cfg,
            mesh,
            u,
            h,
            coef,
        }
    }

    /// Grid spacing.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// The implicit-operator coefficient `ν·Δt/h²`.
    pub fn coef(&self) -> f64 {
        self.coef
    }

    /// Assembles this rank's *local* implicit matrix `(I + c·L_local)`,
    /// dropping cross-rank couplings — the block-Jacobi approximation
    /// preconditioners factor (ILU(0)/SSOR setup input).
    pub fn local_matrix(&self) -> CsrMatrix {
        let m = &self.mesh;
        let n = m.local_len();
        let mut triplets = Vec::with_capacity(5 * n);
        for j in 0..m.ny_local {
            for i in 0..m.nx {
                let idx = m.idx(i, j);
                triplets.push((idx, idx, 1.0 + 4.0 * self.coef));
                if i > 0 {
                    triplets.push((idx, idx - 1, -self.coef));
                }
                if i + 1 < m.nx {
                    triplets.push((idx, idx + 1, -self.coef));
                }
                if j > 0 {
                    triplets.push((idx, idx - m.nx, -self.coef));
                }
                if j + 1 < m.ny_local {
                    triplets.push((idx, idx + m.nx, -self.coef));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &triplets).expect("stencil is valid")
    }

    /// Explicit first-order upwind advection producing `u*`.
    pub fn advect(&self, comm: Option<&Comm>) -> Vec<f64> {
        let m = &self.mesh;
        let nx = m.nx;
        let mut g = m.add_ghosts(&self.u);
        m.halo_exchange(comm, &mut g, HYDRO_TAG);
        let cx = self.cfg.vx * self.cfg.dt / self.h;
        let cy = self.cfg.vy * self.cfg.dt / self.h;
        let mut out = vec![0.0; m.local_len()];
        for j in 0..m.ny_local {
            for i in 0..nx {
                let c = g[m.gidx(i, j)];
                let w = if i > 0 { g[m.gidx(i - 1, j)] } else { 0.0 };
                let e = if i + 1 < nx { g[m.gidx(i + 1, j)] } else { 0.0 };
                let s = g[m.gidx(i, j) - nx];
                let n = g[m.gidx(i, j) + nx];
                let dudx = if self.cfg.vx >= 0.0 { c - w } else { e - c };
                let dudy = if self.cfg.vy >= 0.0 { c - s } else { n - c };
                out[m.idx(i, j)] = c - cx * dudx - cy * dudy;
            }
        }
        out
    }

    /// One semi-implicit timestep with the given preconditioner: explicit
    /// advection, then implicit diffusion solve. The monolithic path
    /// benchmarked by E6.
    pub fn step(
        &mut self,
        comm: Option<&Comm>,
        pre: &dyn Preconditioner,
    ) -> Result<SolveStats, CcaError> {
        let rhs = self.advect(comm);
        let op = DiffusionOp {
            mesh: &self.mesh,
            comm,
            coef: self.coef,
        };
        let red = reduce_for(comm);
        let mut x = rhs.clone(); // warm start from u*
        let stats = solve(
            self.cfg.kind,
            &op,
            pre,
            &rhs,
            &mut x,
            self.cfg.tol,
            self.cfg.max_iter,
            &red,
        )?;
        self.u = x;
        Ok(stats)
    }

    /// One timestep where the implicit solve is delegated to an external
    /// closure — the hook the componentized assembly uses to route the
    /// solve through CCA ports.
    pub fn step_with_solver(
        &mut self,
        comm: Option<&Comm>,
        solve_fn: &SolveFn<'_>,
    ) -> Result<SolveStats, CcaError> {
        let rhs = self.advect(comm);
        let op = DiffusionOp {
            mesh: &self.mesh,
            comm,
            coef: self.coef,
        };
        let mut x = rhs.clone();
        let stats = solve_fn(&op, &rhs, &mut x)?;
        self.u = x;
        Ok(stats)
    }

    /// Total mass `Σ u · h²` (global).
    pub fn mass(&self, comm: Option<&Comm>) -> f64 {
        let local: f64 = self.u.iter().sum();
        reduce_for(comm).global_sum(local) * self.h * self.h
    }

    /// Global maximum of `|u|`.
    pub fn max_abs(&self, comm: Option<&Comm>) -> f64 {
        let local = self.u.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        match comm {
            Some(c) if c.size() > 1 => c
                .allreduce(local, &cca_parallel::MaxOp)
                .expect("allreduce on live communicator"),
            _ => local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{Identity, Jacobi};
    use cca_parallel::spmd;

    fn small_cfg() -> HydroConfig {
        HydroConfig {
            nx: 16,
            ny: 16,
            dt: 1e-3,
            nu: 0.05,
            vx: 1.0,
            vy: 0.5,
            tol: 1e-10,
            max_iter: 400,
            kind: KrylovKind::Cg,
        }
    }

    #[test]
    fn initial_condition_is_a_blob() {
        let sim = HydroSim::new(small_cfg(), 1, 0);
        let max = sim.max_abs(None);
        assert!(max > 0.9 && max <= 1.0, "max {max}");
        assert!(sim.mass(None) > 0.0);
    }

    #[test]
    fn diffusion_damps_the_peak() {
        let mut cfg = small_cfg();
        cfg.vx = 0.0;
        cfg.vy = 0.0;
        let mut sim = HydroSim::new(cfg, 1, 0);
        let m0 = sim.max_abs(None);
        for _ in 0..5 {
            let stats = sim.step(None, &Identity).unwrap();
            assert!(stats.converged, "{stats:?}");
        }
        let m1 = sim.max_abs(None);
        assert!(m1 < m0, "peak must decay: {m0} -> {m1}");
        // Nothing blew up.
        assert!(sim.u.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn advection_moves_the_blob() {
        let mut cfg = small_cfg();
        cfg.nu = 1e-6; // almost pure advection
        cfg.vx = 1.0;
        cfg.vy = 0.0;
        let mut sim = HydroSim::new(cfg, 1, 0);
        let centroid = |s: &HydroSim| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for j in 0..s.mesh.ny_local {
                for i in 0..s.mesh.nx {
                    let x = (i as f64 + 1.0) * s.h();
                    num += x * s.u[s.mesh.idx(i, j)];
                    den += s.u[s.mesh.idx(i, j)];
                }
            }
            num / den
        };
        let c0 = centroid(&sim);
        for _ in 0..20 {
            sim.step(None, &Identity).unwrap();
        }
        let c1 = centroid(&sim);
        assert!(c1 > c0 + 1e-3, "blob must move right: {c0} -> {c1}");
    }

    #[test]
    fn mass_is_approximately_conserved_short_term() {
        let mut sim = HydroSim::new(small_cfg(), 1, 0);
        let m0 = sim.mass(None);
        for _ in 0..3 {
            sim.step(None, &Identity).unwrap();
        }
        let m1 = sim.mass(None);
        // Dirichlet boundaries leak a little, but over 3 tiny steps the
        // change must be small.
        assert!((m1 - m0).abs() / m0 < 0.05, "mass {m0} -> {m1}");
    }

    #[test]
    fn parallel_run_matches_serial_bitwise_tolerance() {
        let cfg = small_cfg();
        let steps = 3;
        // Serial reference.
        let mut serial = HydroSim::new(cfg, 1, 0);
        let mut serial_stats = Vec::new();
        for _ in 0..steps {
            serial_stats.push(serial.step(None, &Identity).unwrap());
        }
        // 4-rank SPMD run.
        let results = spmd(4, |c| {
            let mut sim = HydroSim::new(cfg, 4, c.rank());
            let mut stats = Vec::new();
            for _ in 0..steps {
                stats.push(sim.step(Some(c), &Identity).unwrap());
            }
            (sim.mesh.clone(), sim.u.clone(), stats)
        });
        for (mesh, u_local, stats) in &results {
            // Same iteration counts (identical Krylov trajectory).
            for (s, ss) in stats.iter().zip(&serial_stats) {
                assert_eq!(s.iterations, ss.iterations);
            }
            // Field values agree with the serial block.
            for j in 0..mesh.ny_local {
                for i in 0..mesh.nx {
                    let serial_v = serial.u[serial.mesh.idx(i, mesh.j0 + j)];
                    let par_v = u_local[mesh.idx(i, j)];
                    assert!(
                        (serial_v - par_v).abs() < 1e-10,
                        "({i},{j}) {serial_v} vs {par_v}"
                    );
                }
            }
        }
    }

    #[test]
    fn jacobi_preconditioning_reduces_iterations() {
        let mut cfg = small_cfg();
        cfg.nu = 2.0; // stiff diffusion => ill-conditioned implicit system
        cfg.dt = 1e-2;
        let mut plain_sim = HydroSim::new(cfg, 1, 0);
        let plain = plain_sim.step(None, &Identity).unwrap();
        let mut pre_sim = HydroSim::new(cfg, 1, 0);
        let a = pre_sim.local_matrix();
        let pre = pre_sim.step(None, &Jacobi::new(&a)).unwrap();
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations <= plain.iterations,
            "jacobi {} vs identity {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn step_with_external_solver_hook() {
        let cfg = small_cfg();
        let mut sim = HydroSim::new(cfg, 1, 0);
        let mut reference = HydroSim::new(cfg, 1, 0);
        let ref_stats = reference.step(None, &Identity).unwrap();
        let stats = sim
            .step_with_solver(None, &|op, b, x| {
                crate::krylov::cg(op, &Identity, b, x, cfg.tol, cfg.max_iter, &SerialReduce)
            })
            .unwrap();
        assert_eq!(stats.iterations, ref_stats.iterations);
        for (a, b) in sim.u.iter().zip(&reference.u) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn local_matrix_matches_matrix_free_operator_serially() {
        let sim = HydroSim::new(small_cfg(), 1, 0);
        let a = sim.local_matrix();
        let op = DiffusionOp {
            mesh: &sim.mesh,
            comm: None,
            coef: sim.coef(),
        };
        let x: Vec<f64> = (0..sim.mesh.local_len())
            .map(|k| ((k * 31) % 17) as f64)
            .collect();
        let mut y1 = vec![0.0; x.len()];
        let mut y2 = vec![0.0; x.len()];
        a.matvec(&x, &mut y1);
        op.apply(&x, &mut y2);
        for (v1, v2) in y1.iter().zip(&y2) {
            assert!((v1 - v2).abs() < 1e-12);
        }
    }
}
