//! Krylov subspace solvers: CG, BiCGStab, restarted GMRES(m).
//!
//! Written against three abstractions so the same code runs serial, SPMD,
//! and matrix-free:
//!
//! * [`LinearOperator`] — `y = A x` over the caller's local rows (an SPMD
//!   caller performs its halo exchange inside `apply`);
//! * [`crate::precond::Preconditioner`] — local `z = M⁻¹ r`;
//! * [`crate::vector::Reduction`] — global sums (serial: identity; SPMD:
//!   `allreduce`).
//!
//! This is the shape the ESI Forum interfaces standardized, and what lets
//! Figure 1's Krylov-solver component call a preconditioner component
//! through a directly connected port in the inner loop without overhead.

use crate::csr::CsrMatrix;
use crate::precond::Preconditioner;
use crate::vector::{axpy, dot, dot_local, norm2, xpby, Reduction};
use cca_core::CcaError;

/// `y = A x` on the local rows.
pub trait LinearOperator {
    /// Number of local rows (= local vector length).
    fn rows(&self) -> usize;

    /// Applies the operator.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinearOperator for CsrMatrix {
    fn rows(&self) -> usize {
        self.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
}

/// Convergence/iteration statistics returned by every solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed (matrix applications for CG/BiCGStab; inner
    /// steps summed over restarts for GMRES).
    pub iterations: usize,
    /// Final *relative* residual `‖b − Ax‖ / ‖b‖`.
    pub residual: f64,
    /// True if the tolerance was met within the iteration budget.
    pub converged: bool,
}

/// Which Krylov method to run (the swappable choice of §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KrylovKind {
    /// Conjugate gradients (SPD systems).
    Cg,
    /// Stabilized bi-conjugate gradients (general systems).
    BiCgStab,
    /// Restarted GMRES with the given restart length.
    Gmres {
        /// Restart length m.
        restart: usize,
    },
}

/// Dispatches to the chosen method.
#[allow(clippy::too_many_arguments)]
pub fn solve<R: Reduction>(
    kind: KrylovKind,
    op: &dyn LinearOperator,
    pre: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    red: &R,
) -> Result<SolveStats, CcaError> {
    match kind {
        KrylovKind::Cg => cg(op, pre, b, x, tol, max_iter, red),
        KrylovKind::BiCgStab => bicgstab(op, pre, b, x, tol, max_iter, red),
        KrylovKind::Gmres { restart } => gmres(op, pre, b, x, tol, max_iter, restart, red),
    }
}

fn check_shapes(op: &dyn LinearOperator, b: &[f64], x: &[f64]) -> Result<(), CcaError> {
    if b.len() != op.rows() || x.len() != op.rows() {
        return Err(CcaError::Framework(format!(
            "solver shape mismatch: operator has {} rows, b has {}, x has {}",
            op.rows(),
            b.len(),
            x.len()
        )));
    }
    Ok(())
}

/// Preconditioned conjugate gradients.
pub fn cg<R: Reduction>(
    op: &dyn LinearOperator,
    pre: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    red: &R,
) -> Result<SolveStats, CcaError> {
    check_shapes(op, b, x)?;
    let n = b.len();
    let bnorm = norm2(red, b);
    let target = if bnorm == 0.0 { tol } else { tol * bnorm };

    let mut r = vec![0.0; n];
    op.apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z = vec![0.0; n];
    pre.apply(&r, &mut z);
    let mut p = z.clone();
    let mut ap = vec![0.0; n];

    // One fused reduction for (r·z, r·r).
    let (mut rz, rr) = red.global_sum2(dot_local(&r, &z), dot_local(&r, &r));
    let mut rnorm = rr.sqrt();
    let mut iterations = 0;

    while rnorm > target && iterations < max_iter {
        op.apply(&p, &mut ap);
        let pap = dot(red, &p, &ap);
        if pap == 0.0 {
            break; // breakdown (or exact solution reached)
        }
        let alpha = rz / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        pre.apply(&r, &mut z);
        let (rz_new, rr_new) = red.global_sum2(dot_local(&r, &z), dot_local(&r, &r));
        rnorm = rr_new.sqrt();
        let beta = rz_new / rz;
        rz = rz_new;
        xpby(&z, beta, &mut p);
        iterations += 1;
    }
    Ok(SolveStats {
        iterations,
        residual: if bnorm == 0.0 { rnorm } else { rnorm / bnorm },
        converged: rnorm <= target,
    })
}

/// Preconditioned BiCGStab.
pub fn bicgstab<R: Reduction>(
    op: &dyn LinearOperator,
    pre: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    red: &R,
) -> Result<SolveStats, CcaError> {
    check_shapes(op, b, x)?;
    let n = b.len();
    let bnorm = norm2(red, b);
    let target = if bnorm == 0.0 { tol } else { tol * bnorm };

    let mut r = vec![0.0; n];
    op.apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let r0 = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut rnorm = norm2(red, &r);
    let mut iterations = 0;

    while rnorm > target && iterations < max_iter {
        let rho_new = dot(red, &r0, &r);
        if rho_new == 0.0 {
            break; // breakdown
        }
        if iterations == 0 {
            p.copy_from_slice(&r);
        } else {
            let beta = (rho_new / rho) * (alpha / omega);
            for i in 0..n {
                p[i] = r[i] + beta * (p[i] - omega * v[i]);
            }
        }
        rho = rho_new;
        pre.apply(&p, &mut phat);
        op.apply(&phat, &mut v);
        let r0v = dot(red, &r0, &v);
        if r0v == 0.0 {
            break;
        }
        alpha = rho / r0v;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        let snorm = norm2(red, &s);
        if snorm <= target {
            axpy(alpha, &phat, x);
            rnorm = snorm;
            iterations += 1;
            break;
        }
        pre.apply(&s, &mut shat);
        op.apply(&shat, &mut t);
        let (tt, ts) = red.global_sum2(dot_local(&t, &t), dot_local(&t, &s));
        if tt == 0.0 {
            break;
        }
        omega = ts / tt;
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] = s[i] - omega * t[i];
        }
        rnorm = norm2(red, &r);
        iterations += 1;
        if omega == 0.0 {
            break;
        }
    }
    Ok(SolveStats {
        iterations,
        residual: if bnorm == 0.0 { rnorm } else { rnorm / bnorm },
        converged: rnorm <= target,
    })
}

/// Restarted GMRES(m) with modified Gram–Schmidt and Givens rotations.
/// Right-preconditioned: solves `A M⁻¹ u = b`, `x = M⁻¹ u`.
#[allow(clippy::too_many_arguments)]
pub fn gmres<R: Reduction>(
    op: &dyn LinearOperator,
    pre: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    restart: usize,
    red: &R,
) -> Result<SolveStats, CcaError> {
    check_shapes(op, b, x)?;
    if restart == 0 {
        return Err(CcaError::Framework("GMRES restart must be >= 1".into()));
    }
    let n = b.len();
    let m = restart;
    let bnorm = norm2(red, b);
    let target = if bnorm == 0.0 { tol } else { tol * bnorm };

    let mut iterations = 0usize;
    let mut r = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut z = vec![0.0; n];

    loop {
        // r = b - A x
        op.apply(x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let beta = norm2(red, &r);
        if beta <= target || iterations >= max_iter {
            return Ok(SolveStats {
                iterations,
                residual: if bnorm == 0.0 { beta } else { beta / bnorm },
                converged: beta <= target,
            });
        }
        // Arnoldi basis (m+1 vectors) and Hessenberg in factored form.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        v.push(r.iter().map(|ri| ri / beta).collect());
        let mut h = vec![vec![0.0f64; m]; m + 1];
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut k_used = 0;

        for k in 0..m {
            if iterations >= max_iter {
                break;
            }
            // w = A M⁻¹ v_k
            pre.apply(&v[k], &mut z);
            op.apply(&z, &mut w);
            // Modified Gram–Schmidt.
            for (j, vj) in v.iter().enumerate().take(k + 1) {
                let hjk = dot(red, &w, vj);
                h[j][k] = hjk;
                axpy(-hjk, vj, &mut w);
            }
            let hk1 = norm2(red, &w);
            h[k + 1][k] = hk1;
            iterations += 1;
            k_used = k + 1;
            // Apply existing Givens rotations to the new column.
            for j in 0..k {
                let t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
                h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
                h[j][k] = t;
            }
            // New rotation to annihilate h[k+1][k].
            let denom = (h[k][k] * h[k][k] + hk1 * hk1).sqrt();
            if denom == 0.0 {
                break;
            }
            cs[k] = h[k][k] / denom;
            sn[k] = hk1 / denom;
            h[k][k] = denom;
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];
            let res = g[k + 1].abs();
            if res <= target {
                break;
            }
            if hk1 == 0.0 {
                break; // happy breakdown
            }
            v.push(w.iter().map(|wi| wi / hk1).collect());
        }

        // Solve the triangular system H y = g for the used columns.
        let k = k_used;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut s = g[i];
            for j in i + 1..k {
                s -= h[i][j] * y[j];
            }
            y[i] = if h[i][i] == 0.0 { 0.0 } else { s / h[i][i] };
        }
        // x += M⁻¹ (V y)
        let mut update = vec![0.0f64; n];
        for (j, yj) in y.iter().enumerate() {
            axpy(*yj, &v[j], &mut update);
        }
        pre.apply(&update, &mut z);
        axpy(1.0, &z, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{Identity, Ilu0, Jacobi};
    use crate::vector::{CommReduce, SerialReduce};
    use cca_parallel::spmd;

    fn residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.matvec(x, &mut r);
        let rr: f64 = r.iter().zip(b).map(|(ri, bi)| (bi - ri) * (bi - ri)).sum();
        let bb: f64 = b.iter().map(|v| v * v).sum();
        (rr / bb).sqrt()
    }

    fn poisson_system(nx: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = CsrMatrix::laplacian_2d(nx, nx);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut b = vec![0.0; n];
        a.matvec(&x_true, &mut b);
        (a, b, x_true)
    }

    #[test]
    fn cg_solves_poisson() {
        let (a, b, x_true) = poisson_system(10);
        let mut x = vec![0.0; b.len()];
        let stats = cg(&a, &Identity, &b, &mut x, 1e-10, 1000, &SerialReduce).unwrap();
        assert!(stats.converged, "{stats:?}");
        assert!(residual(&a, &b, &x) < 1e-8);
        for i in 0..x.len() {
            assert!((x[i] - x_true[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn preconditioning_reduces_cg_iterations() {
        let (a, b, _) = poisson_system(16);
        let mut x0 = vec![0.0; b.len()];
        let plain = cg(&a, &Identity, &b, &mut x0, 1e-8, 2000, &SerialReduce).unwrap();
        let mut x1 = vec![0.0; b.len()];
        let ilu = Ilu0::new(&a);
        let pre = cg(&a, &ilu, &b, &mut x1, 1e-8, 2000, &SerialReduce).unwrap();
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "ILU {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn bicgstab_handles_nonsymmetric_systems() {
        // Convection-diffusion-like: Laplacian plus skew term.
        let base = CsrMatrix::laplacian_2d(8, 8);
        let n = base.nrows();
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..n {
            for (c, v) in base.row(r) {
                // Upwind-bias the east/west couplings.
                let v = if c + 1 == r {
                    v - 0.3
                } else if c == r + 1 {
                    v + 0.3
                } else {
                    v
                };
                triplets.push((r, c, v));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut b = vec![0.0; n];
        a.matvec(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let stats = bicgstab(&a, &Jacobi::new(&a), &b, &mut x, 1e-10, 1000, &SerialReduce).unwrap();
        assert!(stats.converged, "{stats:?}");
        assert!(residual(&a, &b, &x) < 1e-8);
    }

    #[test]
    fn gmres_with_restart_solves_poisson() {
        let (a, b, _) = poisson_system(10);
        let mut x = vec![0.0; b.len()];
        let stats = gmres(&a, &Identity, &b, &mut x, 1e-8, 2000, 20, &SerialReduce).unwrap();
        assert!(stats.converged, "{stats:?}");
        assert!(residual(&a, &b, &x) < 1e-7);
    }

    #[test]
    fn gmres_preconditioned_converges_faster() {
        let (a, b, _) = poisson_system(16);
        let mut x0 = vec![0.0; b.len()];
        let plain = gmres(&a, &Identity, &b, &mut x0, 1e-8, 4000, 30, &SerialReduce).unwrap();
        let mut x1 = vec![0.0; b.len()];
        let ilu = Ilu0::new(&a);
        let pre = gmres(&a, &ilu, &b, &mut x1, 1e-8, 4000, 30, &SerialReduce).unwrap();
        assert!(plain.converged && pre.converged, "{plain:?} {pre:?}");
        assert!(pre.iterations < plain.iterations);
    }

    #[test]
    fn solver_kind_dispatch() {
        let (a, b, _) = poisson_system(6);
        for kind in [
            KrylovKind::Cg,
            KrylovKind::BiCgStab,
            KrylovKind::Gmres { restart: 15 },
        ] {
            let mut x = vec![0.0; b.len()];
            let stats = solve(kind, &a, &Identity, &b, &mut x, 1e-8, 1000, &SerialReduce).unwrap();
            assert!(stats.converged, "{kind:?}: {stats:?}");
            assert!(residual(&a, &b, &x) < 1e-6, "{kind:?}");
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let (a, _, _) = poisson_system(4);
        let b = vec![0.0; a.nrows()];
        let mut x = vec![0.0; a.nrows()];
        let stats = cg(&a, &Identity, &b, &mut x, 1e-12, 100, &SerialReduce).unwrap();
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (a, b, _) = poisson_system(4);
        let mut short = vec![0.0; 3];
        assert!(cg(&a, &Identity, &b, &mut short, 1e-8, 10, &SerialReduce).is_err());
        assert!(gmres(&a, &Identity, &b, &mut short, 1e-8, 10, 5, &SerialReduce).is_err());
        let mut x = vec![0.0; b.len()];
        assert!(gmres(&a, &Identity, &b, &mut x, 1e-8, 10, 0, &SerialReduce).is_err());
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let (a, b, _) = poisson_system(12);
        let mut x = vec![0.0; b.len()];
        let stats = cg(&a, &Identity, &b, &mut x, 1e-14, 3, &SerialReduce).unwrap();
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 3);
        assert!(stats.residual > 0.0);
    }

    /// A block-row distributed Laplacian: each rank owns a contiguous band
    /// of rows and applies the operator against the full vector, which is
    /// allgathered before each apply (simple but correct halo strategy).
    struct DistLaplacian<'a> {
        full: CsrMatrix,
        row0: usize,
        rows: usize,
        comm: &'a cca_parallel::Comm,
        counts: Vec<usize>,
    }

    impl LinearOperator for DistLaplacian<'_> {
        fn rows(&self) -> usize {
            self.rows
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            // Allgather local pieces into the global vector.
            let pieces = self.comm.allgather(x.to_vec()).unwrap();
            let mut global = Vec::with_capacity(self.counts.iter().sum());
            for p in pieces {
                global.extend(p);
            }
            for r in 0..self.rows {
                let mut acc = 0.0;
                for (c, v) in self.full.row(self.row0 + r) {
                    acc += v * global[c];
                }
                y[r] = acc;
            }
        }
    }

    #[test]
    fn parallel_cg_matches_serial_cg() {
        let (a, b, _) = poisson_system(8);
        let n = a.nrows();
        // Serial reference.
        let mut x_ref = vec![0.0; n];
        let serial = cg(&a, &Identity, &b, &mut x_ref, 1e-10, 1000, &SerialReduce).unwrap();
        // 4-rank SPMD run over block rows.
        let p = 4;
        let rows_per = n / p;
        let results = spmd(p, |c| {
            let row0 = c.rank() * rows_per;
            let rows = if c.rank() == p - 1 {
                n - row0
            } else {
                rows_per
            };
            let op = DistLaplacian {
                full: a.clone(),
                row0,
                rows,
                comm: c,
                counts: vec![rows_per; p],
            };
            let b_local = b[row0..row0 + rows].to_vec();
            let mut x_local = vec![0.0; rows];
            let red = CommReduce(c);
            let stats = cg(&op, &Identity, &b_local, &mut x_local, 1e-10, 1000, &red).unwrap();
            (stats, x_local)
        });
        for (rank, (stats, x_local)) in results.iter().enumerate() {
            assert!(stats.converged);
            assert_eq!(stats.iterations, serial.iterations, "rank {rank}");
            let row0 = rank * rows_per;
            for (i, v) in x_local.iter().enumerate() {
                assert!((v - x_ref[row0 + i]).abs() < 1e-7);
            }
        }
    }
}
