//! Wire form of communicator payloads, and the [`WireLink`] a [`Comm`]
//! routes over when its peers live in other processes.
//!
//! The in-process fast path moves payloads as `Box<dyn Any + Send>` —
//! never serialized, exactly because all ranks share an address space.
//! A fleet of child-process ranks (see `cca-framework::fleet`) cannot:
//! every payload must cross a socket. This module is the boundary: a
//! small, closed set of concrete types — the scalars, pairs, and vectors
//! the collectives and the hydro pipeline actually exchange — each
//! encoded as one tag byte plus little-endian bytes. A type outside the
//! set is a typed [`ParallelError::Unserializable`], never a silent
//! misroute: the send fails on the *sending* rank, where the fix is.
//!
//! The transport itself stays out of this crate. [`WireLink`] is the
//! four-method seam (`send`, `recv` and their metadata) that
//! `cca-framework` implements over `tcp+mux://`; `cca-parallel` knows
//! only that bytes go somewhere and come back with (source, context,
//! tag) routing intact.

use crate::error::ParallelError;
use std::any::Any;

/// One message delivered by a [`WireLink`]: the same routing triple an
/// in-process [`Envelope`](crate::comm) carries, with the payload in
/// wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMsg {
    /// World rank of the sender.
    pub src_world: usize,
    /// Communicator context id (sub-communicator isolation).
    pub context: u32,
    /// Full internal tag (user tag or collective-sequence tag).
    pub tag: u64,
    /// Encoded payload (see [`encode_any`]).
    pub bytes: Vec<u8>,
}

/// A byte transport between out-of-process ranks.
///
/// `send` must be non-blocking in the MPI "eager" sense (buffered by the
/// far side); `recv` blocks until *any* message for this rank arrives —
/// the communicator does its own (source, context, tag) matching and
/// buffering, exactly as over crossbeam channels. Both surface fleet
/// interruptions ([`ParallelError::Interrupted`]) when the rank group's
/// generation changes under the caller, and [`ParallelError::Timeout`]
/// instead of hanging when the link's park deadline expires.
pub trait WireLink: Send + Sync {
    /// Delivers `bytes` to world rank `dst_world` under the routing triple.
    fn send(
        &self,
        dst_world: usize,
        context: u32,
        tag: u64,
        bytes: Vec<u8>,
    ) -> Result<(), ParallelError>;

    /// Blocks for the next message addressed to this rank.
    fn recv(&self) -> Result<WireMsg, ParallelError>;
}

// Tag bytes of the closed type set. Order is part of the wire contract.
const T_UNIT: u8 = 0;
const T_BOOL: u8 = 1;
const T_I32: u8 = 2;
const T_I64: u8 = 3;
const T_U32: u8 = 4;
const T_U64: u8 = 5;
const T_USIZE: u8 = 6;
const T_F32: u8 = 7;
const T_F64: u8 = 8;
const T_STRING: u8 = 9;
const T_VEC_F64: u8 = 10;
const T_VEC_U64: u8 = 11;
const T_VEC_I64: u8 = 12;
const T_VEC_USIZE: u8 = 13;
const T_VEC_U8: u8 = 14;
const T_VEC_U32: u8 = 15;
const T_PAIR_F64: u8 = 16;
const T_SPLIT_TRIPLE: u8 = 17;
const T_PAIR_USIZE: u8 = 18;
const T_VEC_SPLIT_TRIPLE: u8 = 19;

type SplitTriple = (Option<u32>, i64, usize);

fn put_split_triple(out: &mut Vec<u8>, (color, key, world): &SplitTriple) {
    match color {
        Some(c) => {
            out.push(1);
            put_u32(out, *c);
        }
        None => {
            out.push(0);
            put_u32(out, 0);
        }
    }
    out.extend_from_slice(&key.to_le_bytes());
    put_u64(out, *world as u64);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn bad(detail: &str) -> ParallelError {
    ParallelError::Codec(detail.to_string())
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ParallelError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad("truncated wire value"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ParallelError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ParallelError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ParallelError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ParallelError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), ParallelError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes after wire value"))
        }
    }
}

macro_rules! try_scalar {
    ($value:expr, $t:ty, $tag:expr, $enc:expr) => {
        if let Some(v) = $value.downcast_ref::<$t>() {
            let mut out = vec![$tag];
            #[allow(clippy::redundant_closure_call)]
            ($enc)(&mut out, v);
            return Some(out);
        }
    };
}

macro_rules! try_vec {
    ($value:expr, $t:ty, $tag:expr, $enc:expr) => {
        if let Some(v) = $value.downcast_ref::<Vec<$t>>() {
            let mut out = Vec::with_capacity(5 + v.len() * std::mem::size_of::<$t>());
            out.push($tag);
            put_u32(&mut out, v.len() as u32);
            for x in v {
                #[allow(clippy::redundant_closure_call)]
                ($enc)(&mut out, x);
            }
            return Some(out);
        }
    };
}

/// Encodes a payload of one of the supported concrete types; `None` for
/// anything outside the set (the caller turns that into
/// [`ParallelError::Unserializable`] with the type's name).
pub fn encode_any(value: &dyn Any) -> Option<Vec<u8>> {
    try_scalar!(value, (), T_UNIT, |_out: &mut Vec<u8>, _v: &()| {});
    try_scalar!(value, bool, T_BOOL, |out: &mut Vec<u8>, v: &bool| out
        .push(*v as u8));
    try_scalar!(value, i32, T_I32, |out: &mut Vec<u8>, v: &i32| out
        .extend_from_slice(&v.to_le_bytes()));
    try_scalar!(value, i64, T_I64, |out: &mut Vec<u8>, v: &i64| out
        .extend_from_slice(&v.to_le_bytes()));
    try_scalar!(value, u32, T_U32, |out: &mut Vec<u8>, v: &u32| put_u32(
        out, *v
    ));
    try_scalar!(value, u64, T_U64, |out: &mut Vec<u8>, v: &u64| put_u64(
        out, *v
    ));
    try_scalar!(value, usize, T_USIZE, |out: &mut Vec<u8>, v: &usize| {
        put_u64(out, *v as u64)
    });
    try_scalar!(value, f32, T_F32, |out: &mut Vec<u8>, v: &f32| out
        .extend_from_slice(&v.to_le_bytes()));
    try_scalar!(value, f64, T_F64, |out: &mut Vec<u8>, v: &f64| out
        .extend_from_slice(&v.to_le_bytes()));
    if let Some(v) = value.downcast_ref::<String>() {
        let mut out = Vec::with_capacity(5 + v.len());
        out.push(T_STRING);
        put_u32(&mut out, v.len() as u32);
        out.extend_from_slice(v.as_bytes());
        return Some(out);
    }
    try_vec!(value, f64, T_VEC_F64, |out: &mut Vec<u8>, v: &f64| out
        .extend_from_slice(&v.to_le_bytes()));
    try_vec!(value, u64, T_VEC_U64, |out: &mut Vec<u8>, v: &u64| put_u64(
        out, *v
    ));
    try_vec!(value, i64, T_VEC_I64, |out: &mut Vec<u8>, v: &i64| out
        .extend_from_slice(&v.to_le_bytes()));
    try_vec!(value, usize, T_VEC_USIZE, |out: &mut Vec<u8>, v: &usize| {
        put_u64(out, *v as u64)
    });
    if let Some(v) = value.downcast_ref::<Vec<u8>>() {
        let mut out = Vec::with_capacity(5 + v.len());
        out.push(T_VEC_U8);
        put_u32(&mut out, v.len() as u32);
        out.extend_from_slice(v);
        return Some(out);
    }
    try_vec!(value, u32, T_VEC_U32, |out: &mut Vec<u8>, v: &u32| put_u32(
        out, *v
    ));
    if let Some((a, b)) = value.downcast_ref::<(f64, f64)>() {
        let mut out = Vec::with_capacity(17);
        out.push(T_PAIR_F64);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        return Some(out);
    }
    if let Some((a, b)) = value.downcast_ref::<(usize, usize)>() {
        let mut out = Vec::with_capacity(17);
        out.push(T_PAIR_USIZE);
        put_u64(&mut out, *a as u64);
        put_u64(&mut out, *b as u64);
        return Some(out);
    }
    // The `split` collective's allgathered (color, key, world_rank):
    // scalar on the gather leg, vector on the broadcast leg.
    if let Some(t) = value.downcast_ref::<SplitTriple>() {
        let mut out = Vec::with_capacity(22);
        out.push(T_SPLIT_TRIPLE);
        put_split_triple(&mut out, t);
        return Some(out);
    }
    if let Some(v) = value.downcast_ref::<Vec<SplitTriple>>() {
        let mut out = Vec::with_capacity(5 + v.len() * 21);
        out.push(T_VEC_SPLIT_TRIPLE);
        put_u32(&mut out, v.len() as u32);
        for t in v {
            put_split_triple(&mut out, t);
        }
        return Some(out);
    }
    None
}

fn read_split_triple(r: &mut Reader<'_>) -> Result<SplitTriple, ParallelError> {
    let present = r.u8()? != 0;
    let c = r.u32()?;
    let color = if present { Some(c) } else { None };
    let key = i64::from_le_bytes(r.take(8)?.try_into().unwrap());
    let world = r.u64()? as usize;
    Ok((color, key, world))
}

/// Decodes wire bytes back into a boxed value of the encoded concrete
/// type. The caller downcasts to its expected `T`; a mismatch surfaces
/// as the same [`ParallelError::TypeMismatch`] the in-process path
/// raises.
pub fn decode_to_box(bytes: &[u8]) -> Result<Box<dyn Any + Send>, ParallelError> {
    let mut r = Reader { bytes, pos: 0 };
    let tag = r.u8()?;
    let boxed: Box<dyn Any + Send> = match tag {
        T_UNIT => Box::new(()),
        T_BOOL => Box::new(r.u8()? != 0),
        T_I32 => Box::new(i32::from_le_bytes(r.take(4)?.try_into().unwrap())),
        T_I64 => Box::new(i64::from_le_bytes(r.take(8)?.try_into().unwrap())),
        T_U32 => Box::new(r.u32()?),
        T_U64 => Box::new(r.u64()?),
        T_USIZE => Box::new(r.u64()? as usize),
        T_F32 => Box::new(f32::from_le_bytes(r.take(4)?.try_into().unwrap())),
        T_F64 => Box::new(r.f64()?),
        T_STRING => {
            let n = r.u32()? as usize;
            let s = std::str::from_utf8(r.take(n)?)
                .map_err(|_| bad("non-utf8 wire string"))?
                .to_string();
            Box::new(s)
        }
        T_VEC_F64 => {
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f64()?);
            }
            Box::new(v)
        }
        T_VEC_U64 => {
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u64()?);
            }
            Box::new(v)
        }
        T_VEC_I64 => {
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(i64::from_le_bytes(r.take(8)?.try_into().unwrap()));
            }
            Box::new(v)
        }
        T_VEC_USIZE => {
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u64()? as usize);
            }
            Box::new(v)
        }
        T_VEC_U8 => {
            let n = r.u32()? as usize;
            Box::new(r.take(n)?.to_vec())
        }
        T_VEC_U32 => {
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u32()?);
            }
            Box::new(v)
        }
        T_PAIR_F64 => {
            let a = r.f64()?;
            let b = r.f64()?;
            Box::new((a, b))
        }
        T_PAIR_USIZE => {
            let a = r.u64()? as usize;
            let b = r.u64()? as usize;
            Box::new((a, b))
        }
        T_SPLIT_TRIPLE => Box::new(read_split_triple(&mut r)?),
        T_VEC_SPLIT_TRIPLE => {
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(read_split_triple(&mut r)?);
            }
            Box::new(v)
        }
        other => return Err(bad(&format!("unknown wire value tag {other}"))),
    };
    r.done()?;
    Ok(boxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: PartialEq + std::fmt::Debug + Clone + Send + 'static>(v: T) {
        let bytes = encode_any(&v).expect("type in the supported set");
        let back = decode_to_box(&bytes).unwrap();
        let back = back.downcast::<T>().expect("round trip preserves type");
        assert_eq!(*back, v);
    }

    #[test]
    fn supported_types_round_trip() {
        round_trip(());
        round_trip(true);
        round_trip(false);
        round_trip(-42i32);
        round_trip(-42i64);
        round_trip(42u32);
        round_trip(42u64);
        round_trip(42usize);
        round_trip(1.5f32);
        round_trip(std::f64::consts::PI);
        round_trip("héllo".to_string());
        round_trip(vec![1.0f64, -2.5, 3.25]);
        round_trip(vec![1u64, 2, 3]);
        round_trip(vec![-1i64, 2, -3]);
        round_trip(vec![0usize, usize::MAX]);
        round_trip(vec![1u8, 2, 3]);
        round_trip(vec![7u32, 8]);
        round_trip((1.25f64, -2.5f64));
        round_trip((3usize, 9usize));
        round_trip((Some(3u32), -7i64, 2usize));
        round_trip((None::<u32>, 0i64, 5usize));
        round_trip(vec![(Some(1u32), 2i64, 3usize), (None, -4, 5)]);
    }

    #[test]
    fn f64_bytes_are_bitwise_exact() {
        let v = 0.1f64 + 0.2; // a value with no short decimal form
        let bytes = encode_any(&v).unwrap();
        let back = decode_to_box(&bytes).unwrap().downcast::<f64>().unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn unsupported_type_is_refused() {
        struct Opaque;
        assert!(encode_any(&Opaque).is_none());
        assert!(encode_any(&vec![String::new()]).is_none());
    }

    #[test]
    fn truncated_and_trailing_inputs_are_typed_errors() {
        let mut bytes = encode_any(&vec![1.0f64, 2.0]).unwrap();
        bytes.pop();
        assert!(matches!(
            decode_to_box(&bytes),
            Err(ParallelError::Codec(_))
        ));
        let mut bytes = encode_any(&7u32).unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_to_box(&bytes),
            Err(ParallelError::Codec(_))
        ));
        assert!(matches!(
            decode_to_box(&[255u8]),
            Err(ParallelError::Codec(_))
        ));
        assert!(matches!(decode_to_box(&[]), Err(ParallelError::Codec(_))));
    }

    #[test]
    fn decoded_type_mismatch_surfaces_on_downcast() {
        let bytes = encode_any(&42i64).unwrap();
        let back = decode_to_box(&bytes).unwrap();
        assert!(back.downcast::<String>().is_err());
    }
}
