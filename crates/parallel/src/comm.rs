//! Communicators: typed point-to-point messaging and collectives.
//!
//! A [`Comm`] is the in-process stand-in for an MPI communicator. Each rank
//! is an OS thread; messages travel over crossbeam channels; payloads are
//! moved (never serialized) because all ranks share an address space —
//! matching the paper's "tightly coupled" fast path. Serialization only
//! appears in `cca-rpc`, where the paper's *distributed* connections live.
//!
//! Since the fleet work, a rank may instead live in a *separate process*:
//! the same `Comm` then routes every message through a [`WireLink`]
//! (constructed with [`Comm::over_wire`]), which serializes payloads with
//! the closed codec in [`crate::wire`] and carries the identical
//! (source, context, tag) matching triple. The two paths meet in one
//! [`RankEndpoint`] enum; collectives, tag matching, sub-communicators,
//! and the unexpected-message buffer are shared code, so SPMD programs
//! are oblivious to which substrate they run on.
//!
//! Sub-communicators created with [`Comm::split`] reuse the world channel
//! mesh with a *context id*, exactly how MPI implementations isolate
//! communicator traffic on one network.

use crate::error::ParallelError;
use crate::reduce::ReduceOp;
use crate::wire::{self, WireLink};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A user message tag. Tags below [`Tag::MAX_USER`] are available to
/// applications; higher values are reserved for internal collectives.
pub type Tag = u32;

/// Highest user-assignable tag value.
pub const MAX_USER_TAG: Tag = 0x7fff_ffff;

/// Internal tag bit marking collective traffic.
const COLLECTIVE_BIT: u64 = 1 << 63;

/// A message payload in either of its two representations: moved (ranks
/// share an address space) or encoded (ranks are separate processes).
enum Payload {
    Local(Box<dyn Any + Send>),
    Wire(Vec<u8>),
}

/// One in-flight message.
struct Envelope {
    src_world: usize,
    context: u32,
    tag: u64,
    payload: Payload,
}

/// Where this rank's messages come from and go to: the crossbeam channel
/// mesh when all ranks are threads of one process, or a [`WireLink`] when
/// this rank is a supervised child process in a fleet.
enum RankEndpoint {
    Local {
        rx: Receiver<Envelope>,
        /// Senders to every *world* rank.
        senders: Arc<Vec<Sender<Envelope>>>,
    },
    Wire {
        link: Arc<dyn WireLink>,
    },
}

/// Per-rank receive endpoint: the transport plus a buffer of messages
/// that arrived before anyone asked for them (out-of-order matching, as
/// MPI requires). The buffer is shared by all communicators of the rank,
/// which is what makes cross-communicator arrival order irrelevant.
struct Endpoint {
    kind: RankEndpoint,
    unexpected: RefCell<Vec<Envelope>>,
}

/// Materializes a payload as the receiver's expected type, decoding the
/// wire form first when needed. Both representations fail the same way:
/// a typed [`ParallelError::TypeMismatch`].
fn extract<T: Send + 'static>(payload: Payload) -> Result<T, ParallelError> {
    let boxed: Box<dyn Any + Send> = match payload {
        Payload::Local(b) => b,
        Payload::Wire(bytes) => wire::decode_to_box(&bytes)?,
    };
    boxed
        .downcast::<T>()
        .map(|b| *b)
        .map_err(|_| ParallelError::TypeMismatch {
            expected: std::any::type_name::<T>(),
        })
}

/// An MPI-flavoured communicator over a group of thread ranks.
///
/// `Comm` is deliberately **not** `Send`: it belongs to the rank thread
/// that received it from [`spmd`], like an MPI rank's communicator handle.
pub struct Comm {
    endpoint: Rc<Endpoint>,
    /// World ranks of this communicator's members, indexed by group rank.
    group: Arc<Vec<usize>>,
    /// My rank within this communicator.
    rank: usize,
    /// My world rank (cached `group[rank]`).
    world_rank: usize,
    /// Context id isolating this communicator's traffic.
    context: u32,
    /// Per-thread counter for allocating child context ids. Stays in sync
    /// across ranks because communicator creation is collective.
    next_context: Rc<Cell<u32>>,
    /// Per-communicator collective sequence number.
    coll_seq: Cell<u64>,
}

impl Comm {
    /// Builds a world communicator for an out-of-process rank whose
    /// traffic rides `link`. `rank`/`size` come from the fleet join
    /// handshake; every peer is reached through the link (the supervisor
    /// hub relays), so there is no local channel mesh at all.
    pub fn over_wire(link: Arc<dyn WireLink>, rank: usize, size: usize) -> Comm {
        assert!(rank < size, "wire rank {rank} out of range for size {size}");
        Comm {
            endpoint: Rc::new(Endpoint {
                kind: RankEndpoint::Wire { link },
                unexpected: RefCell::new(Vec::new()),
            }),
            group: Arc::new((0..size).collect()),
            rank,
            world_rank: rank,
            context: 0,
            next_context: Rc::new(Cell::new(1)),
            coll_seq: Cell::new(0),
        }
    }

    /// My rank in this communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// My rank in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// The world ranks of this communicator's members.
    pub fn group(&self) -> &[usize] {
        &self.group
    }

    fn check_rank(&self, rank: usize) -> Result<(), ParallelError> {
        if rank >= self.size() {
            Err(ParallelError::RankOutOfRange {
                rank,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }

    /// Sends `value` to group rank `dst` with a user `tag`. Never blocks
    /// (channels are unbounded, the usual "eager" MPI small-message mode).
    pub fn send<T: Send + 'static>(
        &self,
        dst: usize,
        tag: Tag,
        value: T,
    ) -> Result<(), ParallelError> {
        self.check_rank(dst)?;
        self.send_value(dst, tag as u64, value)
    }

    fn send_value<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        value: T,
    ) -> Result<(), ParallelError> {
        let world_dst = self.group[dst];
        match &self.endpoint.kind {
            RankEndpoint::Local { senders, .. } => senders[world_dst]
                .send(Envelope {
                    src_world: self.world_rank,
                    context: self.context,
                    tag,
                    payload: Payload::Local(Box::new(value)),
                })
                .map_err(|_| ParallelError::Disconnected { peer: dst }),
            RankEndpoint::Wire { link } => {
                let bytes =
                    wire::encode_any(&value).ok_or_else(|| ParallelError::Unserializable {
                        type_name: std::any::type_name::<T>(),
                    })?;
                link.send(world_dst, self.context, tag, bytes)
            }
        }
    }

    /// Receives a `T` from group rank `src` with matching `tag`, blocking
    /// until it arrives. Messages from other (src, tag) pairs are buffered.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: Tag) -> Result<T, ParallelError> {
        self.check_rank(src)?;
        self.recv_raw(self.group[src], tag as u64)
    }

    fn recv_raw<T: Send + 'static>(&self, src_world: usize, tag: u64) -> Result<T, ParallelError> {
        // First check the buffer of earlier arrivals.
        {
            let mut buf = self.endpoint.unexpected.borrow_mut();
            if let Some(pos) = buf
                .iter()
                .position(|e| e.src_world == src_world && e.context == self.context && e.tag == tag)
            {
                let env = buf.remove(pos);
                drop(buf);
                return extract::<T>(env.payload);
            }
        }
        // Then pull from the transport, buffering anything that doesn't
        // match. Both substrates deliver the same Envelope shape, so the
        // matching logic is shared.
        loop {
            let env = match &self.endpoint.kind {
                RankEndpoint::Local { rx, .. } => rx
                    .recv()
                    .map_err(|_| ParallelError::Disconnected { peer: src_world })?,
                RankEndpoint::Wire { link } => {
                    let m = link.recv()?;
                    Envelope {
                        src_world: m.src_world,
                        context: m.context,
                        tag: m.tag,
                        payload: Payload::Wire(m.bytes),
                    }
                }
            };
            if env.src_world == src_world && env.context == self.context && env.tag == tag {
                return extract::<T>(env.payload);
            }
            self.endpoint.unexpected.borrow_mut().push(env);
        }
    }

    /// Number of messages buffered as "unexpected" on this rank's
    /// endpoint (diagnostic; a fresh communicator after a fleet rollback
    /// starts at zero).
    pub fn unexpected_depth(&self) -> usize {
        self.endpoint.unexpected.borrow().len()
    }

    /// Allocates the tag for the next collective operation on this
    /// communicator (same value on every rank under SPMD discipline).
    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLLECTIVE_BIT | seq
    }

    /// Synchronizes all ranks: no rank leaves before every rank has entered.
    pub fn barrier(&self) -> Result<(), ParallelError> {
        let tag = self.next_coll_tag();
        // Dissemination barrier: log2(size) rounds, no root bottleneck.
        let size = self.size();
        let mut round = 1usize;
        let mut k = 0u64;
        while round < size {
            let dst = (self.rank + round) % size;
            let src = (self.rank + size - round) % size;
            self.send_value(dst, tag ^ (k << 32), ())?;
            let _: () = self.recv_raw(self.group[src], tag ^ (k << 32))?;
            round <<= 1;
            k += 1;
        }
        Ok(())
    }

    /// Broadcasts the root's value to every rank. On the root, pass
    /// `Some(value)`; elsewhere pass `None`. Returns the value on all ranks.
    pub fn bcast<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> Result<T, ParallelError> {
        self.check_rank(root)?;
        let tag = self.next_coll_tag();
        if self.rank == root {
            let v = value.ok_or_else(|| {
                ParallelError::CollectiveMismatch("bcast root must supply a value".into())
            })?;
            for r in 0..self.size() {
                if r != root {
                    self.send_value(r, tag, v.clone())?;
                }
            }
            Ok(v)
        } else {
            self.recv_raw(self.group[root], tag)
        }
    }

    /// Gathers one value from every rank to the root, ordered by rank.
    /// Returns `Some(values)` on the root, `None` elsewhere.
    pub fn gather<T: Send + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Result<Option<Vec<T>>, ParallelError> {
        self.check_rank(root)?;
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for r in 0..self.size() {
                if r != root {
                    out[r] = Some(self.recv_raw(self.group[r], tag)?);
                }
            }
            Ok(Some(out.into_iter().map(Option::unwrap).collect()))
        } else {
            self.send_value(root, tag, value)?;
            Ok(None)
        }
    }

    /// Scatters one value per rank from the root. On the root pass
    /// `Some(values)` with `values.len() == size`; elsewhere `None`.
    pub fn scatter<T: Send + 'static>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
    ) -> Result<T, ParallelError> {
        self.check_rank(root)?;
        let tag = self.next_coll_tag();
        if self.rank == root {
            let values = values.ok_or_else(|| {
                ParallelError::CollectiveMismatch("scatter root must supply values".into())
            })?;
            if values.len() != self.size() {
                return Err(ParallelError::CollectiveMismatch(format!(
                    "scatter got {} values for {} ranks",
                    values.len(),
                    self.size()
                )));
            }
            let mut mine = None;
            for (r, v) in values.into_iter().enumerate() {
                if r == self.rank {
                    mine = Some(v);
                } else {
                    self.send_value(r, tag, v)?;
                }
            }
            Ok(mine.expect("root receives its own slot"))
        } else {
            self.recv_raw(self.group[root], tag)
        }
    }

    /// Gathers one value from every rank to *every* rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Result<Vec<T>, ParallelError> {
        let gathered = self.gather(0, value)?;
        self.bcast(0, gathered)
    }

    /// Reduces values from all ranks onto the root with `op`.
    /// Returns `Some(result)` on the root, `None` elsewhere.
    pub fn reduce<T: Send + 'static>(
        &self,
        root: usize,
        value: T,
        op: &dyn ReduceOp<T>,
    ) -> Result<Option<T>, ParallelError> {
        let gathered = self.gather(root, value)?;
        Ok(gathered.map(|vs| {
            let mut it = vs.into_iter();
            let first = it.next().expect("communicator has at least one rank");
            it.fold(first, |a, b| op.combine(a, b))
        }))
    }

    /// Reduces values from all ranks and delivers the result to all ranks.
    pub fn allreduce<T: Clone + Send + 'static>(
        &self,
        value: T,
        op: &dyn ReduceOp<T>,
    ) -> Result<T, ParallelError> {
        let reduced = self.reduce(0, value, op)?;
        self.bcast(0, reduced)
    }

    /// Variable-count gather (`MPI_Gatherv`): every rank contributes a
    /// vector of arbitrary length; the root receives them concatenated in
    /// rank order (with per-rank boundaries preserved in the nested form).
    pub fn gatherv<T: Send + 'static>(
        &self,
        root: usize,
        values: Vec<T>,
    ) -> Result<Option<Vec<Vec<T>>>, ParallelError> {
        self.gather(root, values)
    }

    /// Variable-count scatter (`MPI_Scatterv`): the root supplies one
    /// vector per rank (arbitrary lengths); each rank receives its own.
    pub fn scatterv<T: Send + 'static>(
        &self,
        root: usize,
        values: Option<Vec<Vec<T>>>,
    ) -> Result<Vec<T>, ParallelError> {
        self.scatter(root, values)
    }

    /// Exclusive prefix reduction (`MPI_Exscan`): rank r receives the
    /// combination of ranks `0..r`'s values (`None` on rank 0).
    pub fn exscan<T: Clone + Send + 'static>(
        &self,
        value: T,
        op: &dyn ReduceOp<T>,
    ) -> Result<Option<T>, ParallelError> {
        let all = self.allgather(value)?;
        if self.rank == 0 {
            return Ok(None);
        }
        let mut it = all.into_iter().take(self.rank);
        let first = it.next().expect("rank > 0");
        Ok(Some(it.fold(first, |a, b| op.combine(a, b))))
    }

    /// Personalized all-to-all: rank i's `values[j]` is delivered as the
    /// i-th element of rank j's result.
    pub fn alltoall<T: Send + 'static>(&self, values: Vec<T>) -> Result<Vec<T>, ParallelError> {
        if values.len() != self.size() {
            return Err(ParallelError::CollectiveMismatch(format!(
                "alltoall got {} values for {} ranks",
                values.len(),
                self.size()
            )));
        }
        let tag = self.next_coll_tag();
        let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
        for (r, v) in values.into_iter().enumerate() {
            if r == self.rank {
                out[r] = Some(v);
            } else {
                self.send_value(r, tag, v)?;
            }
        }
        for r in 0..self.size() {
            if r != self.rank {
                out[r] = Some(self.recv_raw(self.group[r], tag)?);
            }
        }
        Ok(out.into_iter().map(Option::unwrap).collect())
    }

    /// Splits the communicator by `color`: ranks sharing a color form a new
    /// communicator, ordered by `key` (ties broken by old rank). Returns
    /// `None` for ranks passing `color = None` (MPI's `MPI_UNDEFINED`).
    ///
    /// Collective: every rank of `self` must call it.
    pub fn split(&self, color: Option<u32>, key: i64) -> Result<Option<Comm>, ParallelError> {
        // Everyone learns everyone's (color, key, world_rank).
        let triples = self.allgather((color, key, self.world_rank))?;
        // Context id for *each* color must be distinct and identical on all
        // ranks: allocate one id per distinct color, in sorted color order.
        let mut colors: Vec<u32> = triples.iter().filter_map(|t| t.0).collect();
        colors.sort_unstable();
        colors.dedup();
        let base = self.next_context.get();
        self.next_context.set(base + colors.len() as u32);
        let Some(my_color) = color else {
            return Ok(None);
        };
        let color_index = colors.binary_search(&my_color).expect("own color present") as u32;
        let context = base + color_index;
        let mut members: Vec<(i64, usize)> = triples
            .iter()
            .filter(|t| t.0 == Some(my_color))
            .map(|t| (t.1, t.2))
            .collect();
        members.sort();
        let group: Vec<usize> = members.iter().map(|&(_, w)| w).collect();
        let rank = group
            .iter()
            .position(|&w| w == self.world_rank)
            .expect("self in own color group");
        Ok(Some(Comm {
            endpoint: Rc::clone(&self.endpoint),
            group: Arc::new(group),
            rank,
            world_rank: self.world_rank,
            context,
            next_context: Rc::clone(&self.next_context),
            coll_seq: Cell::new(0),
        }))
    }

    /// Creates a duplicate communicator with isolated collective/tag space.
    pub fn dup(&self) -> Result<Comm, ParallelError> {
        Ok(self
            .split(Some(0), self.rank as i64)?
            .expect("all ranks participate in dup"))
    }
}

/// Runs `f` as an SPMD program over `n` thread ranks and returns every
/// rank's result, ordered by rank. Panics in any rank propagate.
pub fn spmd<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    assert!(n > 0, "SPMD group must have at least one rank");
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    let group: Arc<Vec<usize>> = Arc::new((0..n).collect());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let group = Arc::clone(&group);
            let f = &f;
            handles.push(scope.spawn(move || {
                let comm = Comm {
                    endpoint: Rc::new(Endpoint {
                        kind: RankEndpoint::Local { rx, senders },
                        unexpected: RefCell::new(Vec::new()),
                    }),
                    group,
                    rank,
                    world_rank: rank,
                    context: 0,
                    next_context: Rc::new(Cell::new(1)),
                    coll_seq: Cell::new(0),
                };
                f(&comm)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("SPMD rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::{MaxOp, SumOp};

    #[test]
    fn ring_pass_accumulates() {
        let results = spmd(4, |c| {
            // Each rank sends its rank+accumulator around the ring once.
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let mut acc = c.rank();
            for _ in 0..c.size() - 1 {
                c.send(next, 7, acc).unwrap();
                let got: usize = c.recv(prev, 7).unwrap();
                acc = got + c.rank();
            }
            acc
        });
        // Every rank ends with sum over some traversal; verify determinism
        // of the ring arithmetic instead of a closed form: recompute.
        let expect = |rank: usize| {
            let size = 4usize;
            let mut accs: Vec<usize> = (0..size).collect();
            for _ in 0..size - 1 {
                let sent = accs.clone();
                for r in 0..size {
                    let prev = (r + size - 1) % size;
                    accs[r] = sent[prev] + r;
                }
            }
            accs[rank]
        };
        for (r, &got) in results.iter().enumerate() {
            assert_eq!(got, expect(r));
        }
    }

    #[test]
    fn out_of_order_tag_matching() {
        let results = spmd(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1.
                c.send(1, 2, "second".to_string()).unwrap();
                c.send(1, 1, "first".to_string()).unwrap();
                String::new()
            } else {
                // Receive tag 1 first: the tag-2 message must be buffered.
                let a: String = c.recv(0, 1).unwrap();
                let b: String = c.recv(0, 2).unwrap();
                format!("{a},{b}")
            }
        });
        assert_eq!(results[1], "first,second");
    }

    #[test]
    fn type_mismatch_detected() {
        let results = spmd(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, 42i32).unwrap();
                true
            } else {
                matches!(
                    c.recv::<String>(0, 0),
                    Err(ParallelError::TypeMismatch { .. })
                )
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn rank_bounds_checked() {
        spmd(2, |c| {
            assert!(matches!(
                c.send(5, 0, 0u8),
                Err(ParallelError::RankOutOfRange { rank: 5, size: 2 })
            ));
            assert!(c.recv::<u8>(9, 0).is_err());
        });
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        spmd(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier().unwrap();
            // After the barrier every rank must observe all 4 arrivals.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn bcast_delivers_to_all() {
        let results = spmd(4, |c| {
            if c.rank() == 2 {
                c.bcast(2, Some(vec![1.0f64, 2.0, 3.0])).unwrap()
            } else {
                c.bcast(2, None).unwrap()
            }
        });
        for r in results {
            assert_eq!(r, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        let results = spmd(4, |c| c.gather(1, c.rank() * 10).unwrap());
        assert_eq!(results[1], Some(vec![0, 10, 20, 30]));
        assert_eq!(results[0], None);
        assert_eq!(results[2], None);
    }

    #[test]
    fn scatter_distributes_by_rank() {
        let results = spmd(3, |c| {
            let input = if c.rank() == 0 {
                Some(vec!["a".to_string(), "b".to_string(), "c".to_string()])
            } else {
                None
            };
            c.scatter(0, input).unwrap()
        });
        assert_eq!(results, vec!["a", "b", "c"]);
    }

    #[test]
    fn scatter_length_mismatch_errors_on_root() {
        let results = spmd(2, |c| {
            if c.rank() == 0 {
                matches!(
                    c.scatter(0, Some(vec![1, 2, 3])),
                    Err(ParallelError::CollectiveMismatch(_))
                )
            } else {
                // Rank 1 would block forever waiting for its slice; don't
                // participate in the failing collective.
                true
            }
        });
        assert!(results.iter().all(|&b| b));
    }

    #[test]
    fn allgather_matches_gather_plus_bcast() {
        let results = spmd(4, |c| c.allgather(c.rank() as i64).unwrap());
        for r in results {
            assert_eq!(r, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        let results = spmd(4, |c| {
            let s = c.reduce(0, (c.rank() + 1) as f64, &SumOp).unwrap();
            let m = c.allreduce(c.rank() as i64, &MaxOp).unwrap();
            (s, m)
        });
        assert_eq!(results[0].0, Some(10.0));
        for (r, (_, m)) in results.iter().enumerate() {
            assert_eq!(*m, 3, "rank {r}");
        }
    }

    #[test]
    fn alltoall_transposes() {
        let results = spmd(3, |c| {
            let send: Vec<(usize, usize)> = (0..3).map(|j| (c.rank(), j)).collect();
            c.alltoall(send).unwrap()
        });
        for (j, row) in results.iter().enumerate() {
            let expect: Vec<(usize, usize)> = (0..3).map(|i| (i, j)).collect();
            assert_eq!(*row, expect);
        }
    }

    #[test]
    fn split_forms_disjoint_subgroups() {
        let results = spmd(6, |c| {
            // Even ranks form one group, odd ranks another.
            let color = (c.rank() % 2) as u32;
            let sub = c.split(Some(color), c.rank() as i64).unwrap().unwrap();
            // Sum within the subgroup.
            let sum = sub.allreduce(c.rank() as i64, &SumOp).unwrap();
            (sub.rank(), sub.size(), sum)
        });
        for (world, (sub_rank, sub_size, sum)) in results.iter().enumerate() {
            assert_eq!(*sub_size, 3);
            assert_eq!(*sub_rank, world / 2);
            let expect: i64 = if world % 2 == 0 { 2 + 4 } else { 1 + 3 + 5 };
            assert_eq!(*sum, expect);
        }
    }

    #[test]
    fn split_with_none_color_returns_none() {
        let results = spmd(4, |c| {
            let color = if c.rank() < 2 { Some(0) } else { None };
            c.split(color, 0).unwrap().is_some()
        });
        assert_eq!(results, vec![true, true, false, false]);
    }

    #[test]
    fn split_key_reorders_ranks() {
        let results = spmd(3, |c| {
            // Reverse order via key.
            let sub = c.split(Some(0), -(c.rank() as i64)).unwrap().unwrap();
            sub.rank()
        });
        assert_eq!(results, vec![2, 1, 0]);
    }

    #[test]
    fn subcommunicator_traffic_is_isolated() {
        let results = spmd(4, |c| {
            let sub = c.split(Some((c.rank() % 2) as u32), 0).unwrap().unwrap();
            // Same tag used on world and sub communicators concurrently.
            if c.rank() == 0 {
                c.send(1, 5, 100i32).unwrap();
            }
            if sub.rank() == 0 {
                sub.send(1, 5, 200i32).unwrap();
            }
            let mut got = Vec::new();
            if c.rank() == 1 {
                got.push(c.recv::<i32>(0, 5).unwrap());
            }
            if sub.rank() == 1 {
                got.push(sub.recv::<i32>(0, 5).unwrap());
            }
            got
        });
        // Groups: even = {0,2} (sub ranks 0,1), odd = {1,3} (sub ranks 0,1).
        // World rank 1 receives only the world message (it is sub rank 0);
        // world rank 2 receives 200 from world 0; world rank 3 receives 200
        // from world 1. Identical tags on the two communicators never mix.
        assert_eq!(results[0], Vec::<i32>::new());
        assert_eq!(results[1], vec![100]);
        assert_eq!(results[2], vec![200]);
        assert_eq!(results[3], vec![200]);
    }

    #[test]
    fn dup_isolates_collectives() {
        let results = spmd(3, |c| {
            let d = c.dup().unwrap();
            assert_eq!(d.rank(), c.rank());
            assert_eq!(d.size(), c.size());
            // Interleave collectives on both communicators.
            let a = c.allreduce(1i64, &SumOp).unwrap();
            let b = d.allreduce(2i64, &SumOp).unwrap();
            (a, b)
        });
        for (a, b) in results {
            assert_eq!(a, 3);
            assert_eq!(b, 6);
        }
    }

    #[test]
    fn single_rank_group_works() {
        let results = spmd(1, |c| {
            c.barrier().unwrap();
            let v = c.bcast(0, Some(9)).unwrap();
            let g = c.gather(0, v).unwrap();
            let s = c.allreduce(5.0f64, &SumOp).unwrap();
            (v, g, s)
        });
        assert_eq!(results[0], (9, Some(vec![9]), 5.0));
    }

    #[test]
    fn large_payload_moves_without_copy_semantics_breaking() {
        let results = spmd(2, |c| {
            if c.rank() == 0 {
                let big: Vec<u64> = (0..100_000).collect();
                c.send(1, 0, big).unwrap();
                0u64
            } else {
                let big: Vec<u64> = c.recv(0, 0).unwrap();
                big.iter().sum::<u64>()
            }
        });
        assert_eq!(results[1], (0..100_000u64).sum::<u64>());
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;
    use crate::reduce::SumOp;

    #[test]
    fn gatherv_concatenates_ragged_contributions() {
        let results = spmd(3, |c| {
            let mine: Vec<u32> = (0..c.rank() as u32 + 1).collect();
            c.gatherv(0, mine).unwrap()
        });
        assert_eq!(results[0], Some(vec![vec![0], vec![0, 1], vec![0, 1, 2]]));
        assert_eq!(results[1], None);
    }

    #[test]
    fn scatterv_distributes_ragged_pieces() {
        let results = spmd(3, |c| {
            let input = if c.rank() == 1 {
                Some(vec![vec![9u8], vec![], vec![1, 2, 3]])
            } else {
                None
            };
            c.scatterv(1, input).unwrap()
        });
        assert_eq!(results[0], vec![9]);
        assert_eq!(results[1], Vec::<u8>::new());
        assert_eq!(results[2], vec![1, 2, 3]);
    }

    #[test]
    fn exscan_is_exclusive_prefix_sum() {
        let results = spmd(4, |c| c.exscan((c.rank() + 1) as i64, &SumOp).unwrap());
        assert_eq!(results, vec![None, Some(1), Some(3), Some(6)]);
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use crate::reduce::{MaxOp, SumOp};
    use crate::wire::WireMsg;
    use std::collections::VecDeque;
    use std::sync::{Condvar, Mutex};

    /// An in-memory wire mesh: one mailbox per rank, every link shares
    /// the mesh. Exercises the Wire endpoint and the codec without any
    /// transport underneath.
    struct MemMesh {
        boxes: Vec<(Mutex<VecDeque<WireMsg>>, Condvar)>,
    }

    struct MemLink {
        mesh: Arc<MemMesh>,
        rank: usize,
    }

    impl WireLink for MemLink {
        fn send(
            &self,
            dst_world: usize,
            context: u32,
            tag: u64,
            bytes: Vec<u8>,
        ) -> Result<(), ParallelError> {
            let (lock, cv) = &self.mesh.boxes[dst_world];
            lock.lock().unwrap().push_back(WireMsg {
                src_world: self.rank,
                context,
                tag,
                bytes,
            });
            cv.notify_all();
            Ok(())
        }

        fn recv(&self) -> Result<WireMsg, ParallelError> {
            let (lock, cv) = &self.mesh.boxes[self.rank];
            let mut q = lock.lock().unwrap();
            loop {
                if let Some(m) = q.pop_front() {
                    return Ok(m);
                }
                q = cv.wait(q).unwrap();
            }
        }
    }

    fn wire_spmd<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        let mesh = Arc::new(MemMesh {
            boxes: (0..n)
                .map(|_| (Mutex::new(VecDeque::new()), Condvar::new()))
                .collect(),
        });
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let mesh = Arc::clone(&mesh);
                    let f = &f;
                    scope.spawn(move || {
                        let link = Arc::new(MemLink { mesh, rank });
                        let comm = Comm::over_wire(link, rank, n);
                        f(&comm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("wire rank panicked"))
                .collect()
        })
    }

    #[test]
    fn point_to_point_and_buffering_over_wire() {
        let results = wire_spmd(2, |c| {
            if c.rank() == 0 {
                c.send(1, 2, vec![2.0f64]).unwrap();
                c.send(1, 1, vec![1.0f64]).unwrap();
                Vec::new()
            } else {
                let a: Vec<f64> = c.recv(0, 1).unwrap();
                let b: Vec<f64> = c.recv(0, 2).unwrap();
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn collectives_over_wire_match_thread_substrate() {
        let over_wire = wire_spmd(4, |c| {
            c.barrier().unwrap();
            let sum = c.allreduce((c.rank() + 1) as f64, &SumOp).unwrap();
            let max = c.allreduce(c.rank() as i64, &MaxOp).unwrap();
            let pair = c
                .allreduce(
                    (1.0, c.rank() as f64),
                    &crate::reduce::FnOp(|a: (f64, f64), b: (f64, f64)| (a.0 + b.0, a.1 + b.1)),
                )
                .unwrap();
            let gathered = c.allgather(c.rank()).unwrap();
            (sum, max, pair, gathered)
        });
        for (sum, max, pair, gathered) in over_wire {
            assert_eq!(sum, 10.0);
            assert_eq!(max, 3);
            assert_eq!(pair, (4.0, 6.0));
            assert_eq!(gathered, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn split_works_over_wire() {
        let results = wire_spmd(4, |c| {
            let sub = c.split(Some((c.rank() % 2) as u32), 0).unwrap().unwrap();
            sub.allreduce(c.rank() as i64, &SumOp).unwrap()
        });
        assert_eq!(results, vec![2, 4, 2, 4]);
    }

    #[test]
    fn unsupported_payload_fails_on_sender() {
        struct NotWireable;
        let results = wire_spmd(2, |c| {
            if c.rank() == 0 {
                // Tell rank 1 not to wait for a real message.
                c.send(1, 1, ()).unwrap();
                matches!(
                    c.send(1, 0, NotWireable),
                    Err(ParallelError::Unserializable { .. })
                )
            } else {
                let () = c.recv(0, 1).unwrap();
                true
            }
        });
        assert!(results.iter().all(|&b| b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::reduce::{MaxOp, SumOp};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Collectives equal their sequential specification for arbitrary
        /// per-rank values and group sizes.
        #[test]
        fn collectives_match_sequential_spec(
            size in 1usize..5,
            values in proptest::collection::vec(-100i64..100, 5),
        ) {
            let values = values[..size].to_vec();
            let expect_sum: i64 = values.iter().sum();
            let expect_max: i64 = *values.iter().max().unwrap();
            let v2 = values.clone();
            let results = spmd(size, move |c| {
                let mine = v2[c.rank()];
                let sum = c.allreduce(mine, &SumOp).unwrap();
                let max = c.allreduce(mine, &MaxOp).unwrap();
                let gathered = c.allgather(mine).unwrap();
                let scan = c.exscan(mine, &SumOp).unwrap();
                (sum, max, gathered, scan)
            });
            for (r, (sum, max, gathered, scan)) in results.into_iter().enumerate() {
                prop_assert_eq!(sum, expect_sum);
                prop_assert_eq!(max, expect_max);
                prop_assert_eq!(&gathered, &values);
                let expect_scan: Option<i64> = if r == 0 {
                    None
                } else {
                    Some(values[..r].iter().sum())
                };
                prop_assert_eq!(scan, expect_scan);
            }
        }

        /// alltoall is a transpose for arbitrary payloads.
        #[test]
        fn alltoall_transposes(size in 1usize..5, seed in 0i64..1000) {
            let results = spmd(size, move |c| {
                let send: Vec<i64> = (0..size)
                    .map(|j| seed + (c.rank() * size + j) as i64)
                    .collect();
                c.alltoall(send).unwrap()
            });
            for (j, row) in results.iter().enumerate() {
                for (i, &v) in row.iter().enumerate() {
                    prop_assert_eq!(v, seed + (i * size + j) as i64);
                }
            }
        }
    }
}
