//! Cartesian process topologies for mesh-structured components.
//!
//! The paper's Figure 1 mesh component distributes itself over four
//! processes; structured-mesh codes like CHAD decompose their domain over a
//! cartesian process grid and exchange halos with axis neighbours. This
//! module reproduces MPI's `MPI_Cart_create` / `MPI_Dims_create` /
//! `MPI_Cart_shift` triple on top of [`Comm`].

use crate::comm::{Comm, Tag};
use crate::error::ParallelError;

/// A communicator with cartesian structure layered on top.
pub struct CartComm<'a> {
    comm: &'a Comm,
    dims: Vec<usize>,
    periodic: Vec<bool>,
}

impl<'a> CartComm<'a> {
    /// Wraps `comm` in a cartesian topology with the given per-dimension
    /// extents (product must equal `comm.size()`) and periodicity flags.
    pub fn new(comm: &'a Comm, dims: &[usize], periodic: &[bool]) -> Result<Self, ParallelError> {
        if dims.is_empty() || dims.iter().product::<usize>() != comm.size() {
            return Err(ParallelError::InvalidTopology(format!(
                "dims {dims:?} do not tile {} ranks",
                comm.size()
            )));
        }
        if periodic.len() != dims.len() {
            return Err(ParallelError::InvalidTopology(
                "periodic flags must match dims".into(),
            ));
        }
        Ok(CartComm {
            comm,
            dims: dims.to_vec(),
            periodic: periodic.to_vec(),
        })
    }

    /// Factors `size` into `ndims` extents as squarely as possible
    /// (`MPI_Dims_create`). Extents are non-increasing.
    pub fn dims_create(size: usize, ndims: usize) -> Vec<usize> {
        assert!(ndims > 0 && size > 0);
        let mut dims = vec![1usize; ndims];
        let mut remaining = size;
        // Repeatedly peel the smallest prime factor onto the smallest dim.
        let mut factors = Vec::new();
        let mut f = 2usize;
        while f * f <= remaining {
            while remaining.is_multiple_of(f) {
                factors.push(f);
                remaining /= f;
            }
            f += 1;
        }
        if remaining > 1 {
            factors.push(remaining);
        }
        // Assign largest factors first to the currently smallest dimension.
        factors.sort_unstable_by(|a, b| b.cmp(a));
        for f in factors {
            let i = (0..ndims).min_by_key(|&i| dims[i]).unwrap();
            dims[i] *= f;
        }
        dims.sort_unstable_by(|a, b| b.cmp(a));
        dims
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        self.comm
    }

    /// Per-dimension grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// My cartesian coordinates (first dimension varies fastest, matching
    /// `cca_data::ProcessGrid`).
    pub fn coords(&self) -> Vec<usize> {
        self.coords_of(self.comm.rank())
    }

    /// Coordinates of an arbitrary rank.
    pub fn coords_of(&self, mut rank: usize) -> Vec<usize> {
        let mut coords = Vec::with_capacity(self.dims.len());
        for &e in &self.dims {
            coords.push(rank % e);
            rank /= e;
        }
        coords
    }

    /// Rank holding the given coordinates.
    pub fn rank_of(&self, coords: &[usize]) -> Result<usize, ParallelError> {
        if coords.len() != self.dims.len() {
            return Err(ParallelError::InvalidTopology(format!(
                "coords {coords:?} have wrong rank"
            )));
        }
        let mut rank = 0usize;
        let mut stride = 1usize;
        for (d, &c) in coords.iter().enumerate() {
            if c >= self.dims[d] {
                return Err(ParallelError::InvalidTopology(format!(
                    "coordinate {c} out of range in dimension {d}"
                )));
            }
            rank += c * stride;
            stride *= self.dims[d];
        }
        Ok(rank)
    }

    /// The (source, destination) neighbour ranks for a shift of `disp`
    /// along dimension `dim` (`MPI_Cart_shift`). `None` means "off the edge"
    /// of a non-periodic dimension.
    pub fn shift(&self, dim: usize, disp: isize) -> (Option<usize>, Option<usize>) {
        let coords = self.coords();
        let neighbour = |delta: isize| -> Option<usize> {
            let e = self.dims[dim] as isize;
            let mut c = coords[dim] as isize + delta;
            if self.periodic[dim] {
                c = c.rem_euclid(e);
            } else if c < 0 || c >= e {
                return None;
            }
            let mut nc = coords.clone();
            nc[dim] = c as usize;
            Some(self.rank_of(&nc).expect("in-range coordinates"))
        };
        (neighbour(-disp), neighbour(disp))
    }

    /// Exchanges halo values with both neighbours along `dim`: sends
    /// `to_minus` toward the lower neighbour and `to_plus` toward the upper
    /// neighbour, returning `(from_minus, from_plus)`. Edge ranks of
    /// non-periodic dimensions get `None` on the missing side.
    pub fn halo_exchange<T: Send + 'static>(
        &self,
        dim: usize,
        tag: Tag,
        to_minus: T,
        to_plus: T,
    ) -> Result<(Option<T>, Option<T>), ParallelError> {
        let (minus, plus) = self.shift(dim, 1);
        // Post sends first (channels are unbounded, so this cannot deadlock).
        if let Some(m) = minus {
            self.comm.send(m, tag, to_minus)?;
        }
        if let Some(p) = plus {
            self.comm.send(p, tag, to_plus)?;
        }
        let from_minus = match minus {
            Some(m) => Some(self.comm.recv(m, tag)?),
            None => None,
        };
        let from_plus = match plus {
            Some(p) => Some(self.comm.recv(p, tag)?),
            None => None,
        };
        Ok((from_minus, from_plus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::spmd;

    #[test]
    fn dims_create_is_square_ish() {
        assert_eq!(CartComm::dims_create(4, 2), vec![2, 2]);
        assert_eq!(CartComm::dims_create(6, 2), vec![3, 2]);
        assert_eq!(CartComm::dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(CartComm::dims_create(12, 2), vec![4, 3]);
        assert_eq!(CartComm::dims_create(7, 2), vec![7, 1]);
        assert_eq!(CartComm::dims_create(1, 1), vec![1]);
    }

    #[test]
    fn coords_round_trip() {
        spmd(6, |c| {
            let cart = CartComm::new(c, &[3, 2], &[false, false]).unwrap();
            let coords = cart.coords();
            assert_eq!(cart.rank_of(&coords).unwrap(), c.rank());
        });
    }

    #[test]
    fn invalid_topologies_rejected() {
        spmd(4, |c| {
            assert!(CartComm::new(c, &[3], &[false]).is_err());
            assert!(CartComm::new(c, &[2, 2], &[false]).is_err());
            assert!(CartComm::new(c, &[], &[]).is_err());
        });
    }

    #[test]
    fn shift_non_periodic_has_edges() {
        spmd(4, |c| {
            let cart = CartComm::new(c, &[4], &[false]).unwrap();
            let (minus, plus) = cart.shift(0, 1);
            match c.rank() {
                0 => {
                    assert_eq!(minus, None);
                    assert_eq!(plus, Some(1));
                }
                3 => {
                    assert_eq!(minus, Some(2));
                    assert_eq!(plus, None);
                }
                r => {
                    assert_eq!(minus, Some(r - 1));
                    assert_eq!(plus, Some(r + 1));
                }
            }
        });
    }

    #[test]
    fn shift_periodic_wraps() {
        spmd(4, |c| {
            let cart = CartComm::new(c, &[4], &[true]).unwrap();
            let (minus, plus) = cart.shift(0, 1);
            assert_eq!(minus, Some((c.rank() + 3) % 4));
            assert_eq!(plus, Some((c.rank() + 1) % 4));
        });
    }

    #[test]
    fn halo_exchange_1d() {
        let results = spmd(4, |c| {
            let cart = CartComm::new(c, &[4], &[false]).unwrap();
            let r = c.rank() as i64;
            // Send my rank to both neighbours.
            let (from_minus, from_plus) = cart.halo_exchange(0, 3, r, r).unwrap();
            (from_minus, from_plus)
        });
        assert_eq!(results[0], (None, Some(1)));
        assert_eq!(results[1], (Some(0), Some(2)));
        assert_eq!(results[2], (Some(1), Some(3)));
        assert_eq!(results[3], (Some(2), None));
    }

    #[test]
    fn halo_exchange_2d_grid() {
        spmd(6, |c| {
            let cart = CartComm::new(c, &[3, 2], &[false, true]).unwrap();
            let coords = cart.coords();
            // Dimension 1 is periodic with extent 2: neighbour is the other row.
            let (fm, fp) = cart
                .halo_exchange(1, 9, coords.clone(), coords.clone())
                .unwrap();
            let other = vec![coords[0], 1 - coords[1]];
            assert_eq!(fm, Some(other.clone()));
            assert_eq!(fp, Some(other));
        });
    }
}
