#![warn(missing_docs)]
// Index-based loops over multiple same-length buffers are the clearest
// idiom for stencil/linear-algebra kernels; the iterator rewrites clippy
// suggests obscure them.
#![allow(clippy::needless_range_loop)]
//! # cca-parallel — SPMD substrate for parallel CCA components
//!
//! The paper's parallel components "use multiple processes or threads" and
//! communicate internally with MPI (Fig. 1: "component A (a mesh) uses MPI
//! to communicate among the four processes over which it is distributed").
//! We reproduce that substrate in-process: a *process group* is a set of
//! OS threads, one per rank, and a [`Comm`] gives each rank MPI-flavoured
//! point-to-point messaging and collective operations.
//!
//! Running ranks as threads instead of processes preserves everything the
//! CCA collective-port model cares about — rank identity, message matching,
//! collective semantics, communicator splitting for component subgroups —
//! while remaining runnable on a laptop (see DESIGN.md §2, substitutions).
//!
//! ## SPMD discipline
//!
//! As with MPI, collective operations (including [`Comm::split`]) must be
//! called by *all* ranks of a communicator in the same order. Internal
//! sequence numbers keep concurrent collectives from interfering, but they
//! rely on that discipline.

pub mod comm;
pub mod error;
pub mod reduce;
pub mod topology;
pub mod wire;

pub use comm::{spmd, Comm, Tag};
pub use error::ParallelError;
pub use reduce::{FnOp, LandOp, LorOp, MaxOp, MinOp, ProdOp, ReduceOp, SumOp};
pub use topology::CartComm;
pub use wire::{WireLink, WireMsg};
