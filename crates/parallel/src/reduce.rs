//! Reduction operators for collective operations.
//!
//! MPI defines a fixed set of built-in reduction operators plus user-defined
//! ones; [`ReduceOp`] reproduces that shape as a trait so solver components
//! can reduce with dot-product-friendly semantics and applications can
//! define their own (e.g. the residual-norm pair used by `cca-solvers`).

/// A binary, associative combination of two values.
pub trait ReduceOp<T>: Sync {
    /// Combines two values. Must be associative; commutativity is assumed
    /// by tree-based implementations.
    fn combine(&self, a: T, b: T) -> T;
}

/// Elementwise sum (`MPI_SUM`).
pub struct SumOp;
/// Elementwise product (`MPI_PROD`).
pub struct ProdOp;
/// Elementwise minimum (`MPI_MIN`).
pub struct MinOp;
/// Elementwise maximum (`MPI_MAX`).
pub struct MaxOp;
/// Logical AND (`MPI_LAND`).
pub struct LandOp;
/// Logical OR (`MPI_LOR`).
pub struct LorOp;

macro_rules! impl_numeric_ops {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for SumOp {
            fn combine(&self, a: $t, b: $t) -> $t { a + b }
        }
        impl ReduceOp<$t> for ProdOp {
            fn combine(&self, a: $t, b: $t) -> $t { a * b }
        }
        impl ReduceOp<$t> for MinOp {
            fn combine(&self, a: $t, b: $t) -> $t { if b < a { b } else { a } }
        }
        impl ReduceOp<$t> for MaxOp {
            fn combine(&self, a: $t, b: $t) -> $t { if b > a { b } else { a } }
        }
        // Vector (elementwise) variants, as MPI applies ops per element.
        impl ReduceOp<Vec<$t>> for SumOp {
            fn combine(&self, mut a: Vec<$t>, b: Vec<$t>) -> Vec<$t> {
                assert_eq!(a.len(), b.len(), "elementwise reduce length mismatch");
                for (x, y) in a.iter_mut().zip(b) { *x += y; }
                a
            }
        }
        impl ReduceOp<Vec<$t>> for MaxOp {
            fn combine(&self, mut a: Vec<$t>, b: Vec<$t>) -> Vec<$t> {
                assert_eq!(a.len(), b.len(), "elementwise reduce length mismatch");
                for (x, y) in a.iter_mut().zip(b) { if y > *x { *x = y; } }
                a
            }
        }
    )*};
}

impl_numeric_ops!(i32, i64, u32, u64, usize, f32, f64);

impl ReduceOp<bool> for LandOp {
    fn combine(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

impl ReduceOp<bool> for LorOp {
    fn combine(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

/// A closure-backed user-defined reduction (`MPI_Op_create` analogue).
pub struct FnOp<F>(pub F);

impl<T, F: Fn(T, T) -> T + Sync> ReduceOp<T> for FnOp<F> {
    fn combine(&self, a: T, b: T) -> T {
        (self.0)(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_ops() {
        assert_eq!(SumOp.combine(2i64, 3), 5);
        assert_eq!(ProdOp.combine(2.0f64, 3.0), 6.0);
        assert_eq!(MinOp.combine(2u32, 3), 2);
        assert_eq!(MaxOp.combine(2usize, 3), 3);
        assert!(LandOp.combine(true, true));
        assert!(!LandOp.combine(true, false));
        assert!(LorOp.combine(false, true));
    }

    #[test]
    fn elementwise_vector_ops() {
        assert_eq!(
            SumOp.combine(vec![1.0f64, 2.0], vec![10.0, 20.0]),
            vec![11.0, 22.0]
        );
        assert_eq!(MaxOp.combine(vec![1i64, 9], vec![5, 3]), vec![5, 9]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn vector_length_mismatch_panics() {
        SumOp.combine(vec![1.0f64], vec![1.0, 2.0]);
    }

    #[test]
    fn user_defined_op() {
        // "argmax" over (value, rank) pairs — MPI_MAXLOC.
        let maxloc = FnOp(|a: (f64, usize), b: (f64, usize)| if b.0 > a.0 { b } else { a });
        assert_eq!(maxloc.combine((1.0, 0), (3.0, 2)), (3.0, 2));
        assert_eq!(maxloc.combine((5.0, 1), (3.0, 2)), (5.0, 1));
    }
}
