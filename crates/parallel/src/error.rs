//! Error type for the SPMD substrate.

use std::fmt;

/// Errors produced by the communicator layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// A rank argument was outside `0..size`.
    RankOutOfRange {
        /// The offending rank argument.
        rank: usize,
        /// The communicator's size.
        size: usize,
    },
    /// A received payload had a different type than the receiver requested.
    TypeMismatch {
        /// The Rust type the receiver requested.
        expected: &'static str,
    },
    /// The peer's channel is closed (its thread exited).
    Disconnected {
        /// The peer whose channel closed.
        peer: usize,
    },
    /// A collective was called with inconsistent arguments across ranks
    /// (detected where cheaply possible, e.g. scatter length != size).
    CollectiveMismatch(String),
    /// An invalid group size or topology request.
    InvalidTopology(String),
    /// A payload type outside the wire-codec set was sent over a
    /// [`WireLink`](crate::wire::WireLink) route.
    Unserializable {
        /// The Rust type of the offending payload.
        type_name: &'static str,
    },
    /// Malformed bytes on a wire route (truncated, trailing, unknown tag).
    Codec(String),
    /// The rank group's generation changed under this operation — a peer
    /// rank died and the fleet is rolling back. Carries the new
    /// generation; callers resynchronize and replay from the last
    /// committed checkpoint rather than treating this as fatal.
    Interrupted {
        /// The generation the group moved to.
        generation: u64,
    },
    /// A wire operation exceeded its park deadline without the fleet
    /// either delivering a message or rolling back.
    Timeout {
        /// How long the caller waited, in milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::RankOutOfRange { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            ParallelError::TypeMismatch { expected } => {
                write!(f, "received message payload is not of type {expected}")
            }
            ParallelError::Disconnected { peer } => {
                write!(f, "peer rank {peer} disconnected")
            }
            ParallelError::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
            ParallelError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            ParallelError::Unserializable { type_name } => {
                write!(f, "payload type {type_name} has no wire encoding")
            }
            ParallelError::Codec(msg) => write!(f, "wire codec error: {msg}"),
            ParallelError::Interrupted { generation } => {
                write!(
                    f,
                    "operation interrupted by fleet rollback to generation {generation}"
                )
            }
            ParallelError::Timeout { waited_ms } => {
                write!(f, "wire operation timed out after {waited_ms} ms")
            }
        }
    }
}

impl std::error::Error for ParallelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParallelError::RankOutOfRange { rank: 5, size: 4 };
        assert!(e.to_string().contains("rank 5"));
        let e = ParallelError::TypeMismatch { expected: "f64" };
        assert!(e.to_string().contains("f64"));
    }
}
