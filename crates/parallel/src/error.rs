//! Error type for the SPMD substrate.

use std::fmt;

/// Errors produced by the communicator layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// A rank argument was outside `0..size`.
    RankOutOfRange {
        /// The offending rank argument.
        rank: usize,
        /// The communicator's size.
        size: usize,
    },
    /// A received payload had a different type than the receiver requested.
    TypeMismatch {
        /// The Rust type the receiver requested.
        expected: &'static str,
    },
    /// The peer's channel is closed (its thread exited).
    Disconnected {
        /// The peer whose channel closed.
        peer: usize,
    },
    /// A collective was called with inconsistent arguments across ranks
    /// (detected where cheaply possible, e.g. scatter length != size).
    CollectiveMismatch(String),
    /// An invalid group size or topology request.
    InvalidTopology(String),
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::RankOutOfRange { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            ParallelError::TypeMismatch { expected } => {
                write!(f, "received message payload is not of type {expected}")
            }
            ParallelError::Disconnected { peer } => {
                write!(f, "peer rank {peer} disconnected")
            }
            ParallelError::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
            ParallelError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
        }
    }
}

impl std::error::Error for ParallelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParallelError::RankOutOfRange { rank: 5, size: 4 };
        assert!(e.to_string().contains("rank 5"));
        let e = ParallelError::TypeMismatch { expected: "f64" };
        assert!(e.to_string().contains("f64"));
    }
}
