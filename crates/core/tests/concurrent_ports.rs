//! Stress test for the lock-free port-resolution fast path: readers hammer
//! `get_port_as` / `CachedPort::get` while a writer connects and
//! disconnects the same slots.
//!
//! What must hold under the snapshot scheme:
//!
//! * readers never observe a torn table — every resolved port is a fully
//!   valid handle of the declared type, or a clean `PortNotConnected`;
//! * a `CachedPort` never serves a connection the writer has already
//!   severed *and then republished the generation for* — after the writer
//!   quiesces in the disconnected state, the very next `get()` errors;
//! * fan-out snapshots are internally consistent: a reader iterating
//!   `get_ports` sees a list from one instant, never a half-updated one.

use cca_core::{CcaServices, PortHandle};
use cca_data::TypeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

trait CounterPort: Send + Sync {
    fn value(&self) -> u64;
}

struct Counter {
    id: u64,
}

impl CounterPort for Counter {
    fn value(&self) -> u64 {
        self.id
    }
}

fn provider(id: u64) -> PortHandle {
    let obj: Arc<dyn CounterPort> = Arc::new(Counter { id });
    PortHandle::new("out", "test.CounterPort", obj)
}

#[test]
fn readers_race_writer_without_torn_reads() {
    let user = CcaServices::new("user");
    user.register_uses_port("in", "test.CounterPort", TypeMap::new())
        .unwrap();
    user.connect_uses("in", provider(0)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let resolved = Arc::new(AtomicU64::new(0));
    let disconnected = Arc::new(AtomicU64::new(0));
    let cached_hits = Arc::new(AtomicU64::new(0));

    let mut readers = Vec::new();
    for _ in 0..2 {
        let user = Arc::clone(&user);
        let stop = Arc::clone(&stop);
        let resolved = Arc::clone(&resolved);
        let disconnected = Arc::clone(&disconnected);
        readers.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match user.get_port_as::<dyn CounterPort>("in") {
                    Ok(p) => {
                        // A resolved port is always fully usable: the call
                        // must return the id it was constructed with.
                        assert!(p.value() < u64::MAX);
                        resolved.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(cca_core::CcaError::PortNotConnected(_)) => {
                        disconnected.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected resolution error: {e}"),
                }
            }
        }));
    }

    // A cached-port reader on its own thread: the memo must only ever
    // yield valid handles, re-resolving transparently across generations.
    let cached_reader = {
        let user = Arc::clone(&user);
        let stop = Arc::clone(&stop);
        let cached_hits = Arc::clone(&cached_hits);
        thread::spawn(move || {
            let mut cached = user.cached_port::<dyn CounterPort>("in");
            while !stop.load(Ordering::Relaxed) {
                match cached.get() {
                    Ok(p) => {
                        assert!(p.value() < u64::MAX);
                        cached_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(cca_core::CcaError::PortNotConnected(_)) => {}
                    Err(e) => panic!("unexpected cached resolution error: {e}"),
                }
            }
        })
    };

    // Writer: churn connect/disconnect cycles on the contested slot.
    for id in 1..=500u64 {
        let removed = user.disconnect_uses("in", 0).unwrap();
        assert_eq!(removed.port_name(), "in");
        if id % 7 == 0 {
            // Linger disconnected so readers actually observe the gap.
            thread::yield_now();
        }
        user.connect_uses("in", provider(id)).unwrap();
    }

    // The slot ends connected; wait (bounded) until every reader kind has
    // made progress — on a single-core box the spinning readers can starve
    // the others for a while, so a fixed sleep is not enough.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while (resolved.load(Ordering::Relaxed) == 0 || cached_hits.load(Ordering::Relaxed) == 0)
        && std::time::Instant::now() < deadline
    {
        thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    cached_reader.join().unwrap();

    // Readers resolved at least once, and the cached reader survived 500
    // generation bumps without ever yielding a bad handle.
    assert!(resolved.load(Ordering::Relaxed) > 0);
    assert!(cached_hits.load(Ordering::Relaxed) > 0);
    let p: Arc<dyn CounterPort> = user.get_port_as("in").unwrap();
    assert_eq!(p.value(), 500);
}

#[test]
fn metric_reads_race_connection_churn() {
    // Counter recording is process-global; sibling tests in this binary
    // never assert on counter *values*, so flipping the gate here is safe
    // even though tests run concurrently.
    cca_obs::set_counters(true);

    let user = CcaServices::new("user");
    user.register_uses_port("in", "test.CounterPort", TypeMap::new())
        .unwrap();
    user.connect_uses("in", provider(0)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));

    // A cached caller bumps its single-writer shard while snapshot readers
    // concurrently sum shards — the race the metrics layer must survive.
    let caller = {
        let user = Arc::clone(&user);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut cached = user.cached_port::<dyn CounterPort>("in");
            let mut calls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(p) = cached.get() {
                    assert!(p.value() < u64::MAX);
                    calls += 1;
                }
            }
            calls
        })
    };

    let mut metric_readers = Vec::new();
    for _ in 0..2 {
        let user = Arc::clone(&user);
        let stop = Arc::clone(&stop);
        metric_readers.push(thread::spawn(move || {
            let metrics = user.port_metrics("in").unwrap();
            let mut last_calls = 0u64;
            let mut last_churn = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = metrics.snapshot();
                // Counters are monotonic: a later read never goes backward,
                // even while the writer republishes table snapshots.
                assert!(snap.calls >= last_calls, "calls went backward");
                assert!(snap.churn >= last_churn, "churn went backward");
                last_calls = snap.calls;
                last_churn = snap.churn;
                assert!(snap.disconnects <= snap.connects);
                assert!(snap.fan_out <= snap.max_fan_out);
                // The whole-component aggregation stays coherent too.
                let all = user.metrics_snapshot();
                assert_eq!(all.len(), 1);
                assert_eq!(all[0].0, "in");
                assert_eq!(all[0].1, "uses");
            }
            (last_calls, last_churn)
        }));
    }

    // Writer: churn the contested slot; metrics follow the slot across
    // every copy-on-write republication.
    for id in 1..=300u64 {
        user.disconnect_uses("in", 0).unwrap();
        user.connect_uses("in", provider(id)).unwrap();
        if id % 16 == 0 {
            thread::yield_now();
        }
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while user.port_metrics("in").unwrap().snapshot().calls == 0
        && std::time::Instant::now() < deadline
    {
        thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    let calls_made = caller.join().unwrap();
    for r in metric_readers {
        r.join().unwrap();
    }
    cca_obs::set_counters(false);

    let snap = user.port_metrics("in").unwrap().snapshot();
    // 1 initial + 300 churn connects; 300 churn disconnects; ends connected.
    assert_eq!(snap.connects, 301);
    assert_eq!(snap.disconnects, 300);
    assert_eq!(snap.churn, 601);
    assert_eq!(snap.fan_out, 1);
    assert_eq!(snap.max_fan_out, 1);
    // Every successful cached call was counted (shards survive churn
    // because the metrics block travels with the slot, not the snapshot).
    assert!(calls_made > 0);
    assert!(snap.calls >= calls_made);
}

#[test]
fn cached_port_observes_disconnection() {
    let user = CcaServices::new("user");
    user.register_uses_port("in", "test.CounterPort", TypeMap::new())
        .unwrap();
    user.connect_uses("in", provider(7)).unwrap();

    let mut cached = user.cached_port::<dyn CounterPort>("in");
    assert_eq!(cached.get().unwrap().value(), 7);
    assert_eq!(cached.get().unwrap().value(), 7); // memoized fast path

    // Sever the connection from another thread (the framework side).
    {
        let user = Arc::clone(&user);
        thread::spawn(move || user.disconnect_uses("in", 0).unwrap())
            .join()
            .unwrap();
    }

    // The generation bump invalidates the memo: the stale handle is not
    // served, the next get() reports the disconnection.
    assert!(matches!(
        cached.get(),
        Err(cca_core::CcaError::PortNotConnected(_))
    ));

    // Reconnection heals it with the *new* provider, not the old memo.
    user.connect_uses("in", provider(8)).unwrap();
    assert_eq!(cached.get().unwrap().value(), 8);
}

#[test]
fn fanout_snapshot_is_internally_consistent() {
    let user = CcaServices::new("emitter");
    user.register_uses_port("events", "test.CounterPort", TypeMap::new())
        .unwrap();
    // Keep an invariant the writer maintains per mutation: ids in a slot
    // are always consecutive from 0 (writer only pushes id == len).
    for id in 0..4u64 {
        user.connect_uses("events", provider(id)).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let user = Arc::clone(&user);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let snap = user.get_ports("events").unwrap();
                // Within one snapshot the consecutive-ids invariant must
                // hold exactly — a torn list would break it.
                for (i, h) in snap.iter().enumerate() {
                    let p: Arc<dyn CounterPort> = h.typed().unwrap();
                    assert_eq!(p.value(), i as u64);
                }
            }
        }));
    }

    // Writer: grow and shrink the listener list, always preserving the
    // consecutive-ids invariant at every published state.
    for _ in 0..200 {
        let len = user.get_ports("events").unwrap().len();
        user.connect_uses("events", provider(len as u64)).unwrap();
        user.disconnect_uses("events", len).unwrap();
    }

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
}
