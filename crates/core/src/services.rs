//! The `CCAServices` handle — Figure 3's connection mechanism.
//!
//! "The component creates and adds Provides ports to the CCAServices, and
//! registers and retrieves Uses ports from the CCAServices. The CCAServices
//! enables access to the list of Provides and Uses ports and to an
//! individual port by its instance name." (§6.1)
//!
//! One `CcaServices` instance belongs to one component instance; the
//! framework holds a reference too and performs connections by moving
//! [`PortHandle`]s from one component's provides table into another's uses
//! slots. Whether the handle is the provider's own object (direct connect)
//! or a proxy is entirely the framework's choice — step (2) of Figure 3:
//! "At the framework's option, either the interface or a proxy for the
//! interface can be given to Component 2 through its CCAServices handle."

use crate::error::CcaError;
use crate::port::{PortHandle, PortRecord, UsesSlot};
use cca_data::TypeMap;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-component services handle (Figure 3's `CCAServices`).
///
/// ```
/// use cca_core::{CcaServices, PortHandle};
/// use cca_data::TypeMap;
/// use std::sync::Arc;
///
/// trait Echo: Send + Sync { fn echo(&self) -> i32; }
/// struct E;
/// impl Echo for E { fn echo(&self) -> i32 { 42 } }
///
/// // Provider side (Figure 3 step 1):
/// let provider = CcaServices::new("provider0");
/// let port: Arc<dyn Echo> = Arc::new(E);
/// provider.add_provides_port(PortHandle::new("out", "demo.Echo", port))?;
///
/// // Framework hands the interface to the user (steps 2+3):
/// let user = CcaServices::new("user0");
/// user.register_uses_port("in", "demo.Echo", TypeMap::new())?;
/// user.connect_uses("in", provider.get_provides_port("out")?)?;
///
/// // User side (step 4):
/// let echo: Arc<dyn Echo> = user.get_port_as("in")?;
/// assert_eq!(echo.echo(), 42);
/// # Ok::<(), cca_core::CcaError>(())
/// ```
#[derive(Default)]
pub struct CcaServices {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    component_name: String,
    provides: BTreeMap<String, PortHandle>,
    uses: BTreeMap<String, UsesSlot>,
}

impl CcaServices {
    /// Creates a services handle for the named component instance.
    pub fn new(component_name: impl Into<String>) -> Arc<Self> {
        let s = CcaServices::default();
        s.inner.lock().component_name = component_name.into();
        Arc::new(s)
    }

    /// The owning component's instance name.
    pub fn component_name(&self) -> String {
        self.inner.lock().component_name.clone()
    }

    // ---- provider side -------------------------------------------------

    /// `addProvidesPort` — step (1) of Figure 3: the component makes an
    /// interface it implements known to its containing framework.
    pub fn add_provides_port(&self, handle: PortHandle) -> Result<(), CcaError> {
        let mut inner = self.inner.lock();
        let name = handle.port_name().to_string();
        if inner.provides.contains_key(&name) || inner.uses.contains_key(&name) {
            return Err(CcaError::PortAlreadyExists(name));
        }
        inner.provides.insert(name, handle);
        Ok(())
    }

    /// Removes a provides port; existing connections made from it remain
    /// valid (reference counting keeps the object alive) but no new
    /// connections can be made.
    pub fn remove_provides_port(&self, name: &str) -> Result<PortHandle, CcaError> {
        self.inner
            .lock()
            .provides
            .remove(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))
    }

    /// The provides port registered under `name` (framework-facing; this is
    /// what a builder connects *from*).
    pub fn get_provides_port(&self, name: &str) -> Result<PortHandle, CcaError> {
        self.inner
            .lock()
            .provides
            .get(name)
            .cloned()
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))
    }

    /// All provides-port registrations.
    pub fn provided_ports(&self) -> Vec<PortRecord> {
        self.inner
            .lock()
            .provides
            .values()
            .map(|h| PortRecord {
                name: h.port_name().to_string(),
                port_type: h.port_type().to_string(),
                properties: h.properties().clone(),
            })
            .collect()
    }

    // ---- user side -----------------------------------------------------

    /// `registerUsesPort`: declares that this component will call through a
    /// port of the given SIDL type under the given instance name.
    pub fn register_uses_port(
        &self,
        name: impl Into<String>,
        port_type: impl Into<String>,
        properties: TypeMap,
    ) -> Result<(), CcaError> {
        let name = name.into();
        let mut inner = self.inner.lock();
        if inner.uses.contains_key(&name) || inner.provides.contains_key(&name) {
            return Err(CcaError::PortAlreadyExists(name));
        }
        inner.uses.insert(
            name.clone(),
            UsesSlot::new(PortRecord {
                name,
                port_type: port_type.into(),
                properties,
            }),
        );
        Ok(())
    }

    /// Unregisters a uses port, dropping its connections.
    pub fn unregister_uses_port(&self, name: &str) -> Result<UsesSlot, CcaError> {
        self.inner
            .lock()
            .uses
            .remove(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))
    }

    /// `getPort` — step (4) of Figure 3: retrieves the connection for a
    /// registered uses port. Errors if the slot does not exist or nothing
    /// is connected. With fan-out > 1 the *first* connection is returned;
    /// use [`get_ports`](Self::get_ports) for the whole listener list.
    pub fn get_port(&self, name: &str) -> Result<PortHandle, CcaError> {
        let inner = self.inner.lock();
        let slot = inner
            .uses
            .get(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        slot.connections
            .first()
            .cloned()
            .ok_or_else(|| CcaError::PortNotConnected(name.to_string()))
    }

    /// All connections of a uses port (the fan-out list; may be empty —
    /// "one call may correspond to zero or more invocations").
    pub fn get_ports(&self, name: &str) -> Result<Vec<PortHandle>, CcaError> {
        let inner = self.inner.lock();
        let slot = inner
            .uses
            .get(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        Ok(slot.connections.clone())
    }

    /// Typed convenience: `getPort` plus downcast to the port trait.
    pub fn get_port_as<P: ?Sized + Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<Arc<P>, CcaError> {
        self.get_port(name)?.typed::<P>()
    }

    /// Multicast helper for the §6.1 fan-out semantics: invokes `f` on
    /// every connected provider of the uses port (zero or more), returning
    /// how many were called. Providers that fail the typed downcast are
    /// skipped (mixed typed/proxied fan-out).
    pub fn multicast<P, F>(&self, name: &str, mut f: F) -> Result<usize, CcaError>
    where
        P: ?Sized + Send + Sync + 'static,
        F: FnMut(&Arc<P>),
    {
        let handles = self.get_ports(name)?;
        let mut called = 0;
        for h in &handles {
            if let Ok(p) = h.typed::<P>() {
                f(&p);
                called += 1;
            }
        }
        Ok(called)
    }

    /// `releasePort`: declares the component is done with the current
    /// connection of `name` (the slot stays registered; connections drop).
    pub fn release_port(&self, name: &str) -> Result<(), CcaError> {
        let mut inner = self.inner.lock();
        let slot = inner
            .uses
            .get_mut(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        slot.connections.clear();
        Ok(())
    }

    /// All uses-port declarations.
    pub fn used_ports(&self) -> Vec<PortRecord> {
        self.inner
            .lock()
            .uses
            .values()
            .map(|s| s.record.clone())
            .collect()
    }

    // ---- framework side ------------------------------------------------

    /// Framework-side: attaches a provider handle to a uses slot (step (3)
    /// of Figure 3). Type compatibility is the *framework's* job (it has
    /// the reflection data); this method only enforces slot existence.
    pub fn connect_uses(&self, uses_name: &str, provider: PortHandle) -> Result<(), CcaError> {
        let mut inner = self.inner.lock();
        let slot = inner
            .uses
            .get_mut(uses_name)
            .ok_or_else(|| CcaError::PortNotFound(uses_name.to_string()))?;
        slot.connections.push(provider.renamed(uses_name));
        Ok(())
    }

    /// Framework-side: detaches the provider registered under
    /// `provider_port_type` object identity is not tracked; disconnects by
    /// position. Returns the removed handle.
    pub fn disconnect_uses(&self, uses_name: &str, index: usize) -> Result<PortHandle, CcaError> {
        let mut inner = self.inner.lock();
        let slot = inner
            .uses
            .get_mut(uses_name)
            .ok_or_else(|| CcaError::PortNotFound(uses_name.to_string()))?;
        if index >= slot.connections.len() {
            return Err(CcaError::PortNotConnected(uses_name.to_string()));
        }
        Ok(slot.connections.remove(index))
    }

    /// The declared SIDL type of a uses slot.
    pub fn uses_port_type(&self, name: &str) -> Result<String, CcaError> {
        let inner = self.inner.lock();
        inner
            .uses
            .get(name)
            .map(|s| s.record.port_type.clone())
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))
    }
}

impl std::fmt::Debug for CcaServices {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CcaServices")
            .field("component", &inner.component_name)
            .field("provides", &inner.provides.keys().collect::<Vec<_>>())
            .field("uses", &inner.uses.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Adder: Send + Sync {
        fn add(&self, a: i64, b: i64) -> i64;
    }
    struct AdderImpl;
    impl Adder for AdderImpl {
        fn add(&self, a: i64, b: i64) -> i64 {
            a + b
        }
    }

    fn adder_handle(name: &str) -> PortHandle {
        let obj: Arc<dyn Adder> = Arc::new(AdderImpl);
        PortHandle::new(name, "demo.Adder", obj)
    }

    #[test]
    fn figure3_connection_mechanism() {
        // (1) Component 1 adds a provides port.
        let s1 = CcaServices::new("component1");
        s1.add_provides_port(adder_handle("adder")).unwrap();
        // (2)+(3) The framework takes the interface and gives it to
        // component 2's services.
        let s2 = CcaServices::new("component2");
        s2.register_uses_port("calc", "demo.Adder", TypeMap::new())
            .unwrap();
        let provided = s1.get_provides_port("adder").unwrap();
        s2.connect_uses("calc", provided).unwrap();
        // (4) Component 2 retrieves the interface with getPort.
        let port: Arc<dyn Adder> = s2.get_port_as("calc").unwrap();
        assert_eq!(port.add(20, 22), 42);
    }

    #[test]
    fn get_port_before_connection_errors() {
        let s = CcaServices::new("c");
        s.register_uses_port("calc", "demo.Adder", TypeMap::new())
            .unwrap();
        assert!(matches!(
            s.get_port("calc"),
            Err(CcaError::PortNotConnected(_))
        ));
        assert!(matches!(
            s.get_port("nope"),
            Err(CcaError::PortNotFound(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected_across_tables() {
        let s = CcaServices::new("c");
        s.add_provides_port(adder_handle("x")).unwrap();
        assert!(matches!(
            s.add_provides_port(adder_handle("x")),
            Err(CcaError::PortAlreadyExists(_))
        ));
        assert!(matches!(
            s.register_uses_port("x", "t", TypeMap::new()),
            Err(CcaError::PortAlreadyExists(_))
        ));
        s.register_uses_port("y", "t", TypeMap::new()).unwrap();
        assert!(matches!(
            s.add_provides_port(adder_handle("y")),
            Err(CcaError::PortAlreadyExists(_))
        ));
    }

    #[test]
    fn fan_out_listener_list() {
        let s = CcaServices::new("caller");
        s.register_uses_port("out", "demo.Adder", TypeMap::new())
            .unwrap();
        s.connect_uses("out", adder_handle("a")).unwrap();
        s.connect_uses("out", adder_handle("b")).unwrap();
        let all = s.get_ports("out").unwrap();
        assert_eq!(all.len(), 2);
        // Every listener is invocable.
        for h in all {
            let p: Arc<dyn Adder> = h.typed().unwrap();
            assert_eq!(p.add(1, 1), 2);
        }
        // get_port returns the first.
        assert_eq!(s.get_port("out").unwrap().port_name(), "out");
    }

    #[test]
    fn release_and_disconnect() {
        let s = CcaServices::new("c");
        s.register_uses_port("out", "demo.Adder", TypeMap::new())
            .unwrap();
        s.connect_uses("out", adder_handle("a")).unwrap();
        s.connect_uses("out", adder_handle("b")).unwrap();
        let removed = s.disconnect_uses("out", 0).unwrap();
        assert_eq!(removed.port_type(), "demo.Adder");
        assert_eq!(s.get_ports("out").unwrap().len(), 1);
        assert!(s.disconnect_uses("out", 5).is_err());
        s.release_port("out").unwrap();
        assert!(s.get_ports("out").unwrap().is_empty());
        assert!(matches!(
            s.get_port("out"),
            Err(CcaError::PortNotConnected(_))
        ));
    }

    #[test]
    fn listings_and_metadata() {
        let s = CcaServices::new("c");
        s.add_provides_port(adder_handle("p1")).unwrap();
        let mut props = TypeMap::new();
        props.put_string("flavor", "direct".into());
        s.register_uses_port("u1", "demo.Adder", props).unwrap();
        let provided = s.provided_ports();
        assert_eq!(provided.len(), 1);
        assert_eq!(provided[0].port_type, "demo.Adder");
        let used = s.used_ports();
        assert_eq!(used.len(), 1);
        assert_eq!(used[0].properties.get_string("flavor", String::new()), "direct");
        assert_eq!(s.uses_port_type("u1").unwrap(), "demo.Adder");
        assert_eq!(s.component_name(), "c");
        assert!(format!("{s:?}").contains("p1"));
    }

    #[test]
    fn remove_provides_keeps_existing_connections_alive() {
        let s1 = CcaServices::new("provider");
        s1.add_provides_port(adder_handle("adder")).unwrap();
        let s2 = CcaServices::new("user");
        s2.register_uses_port("calc", "demo.Adder", TypeMap::new())
            .unwrap();
        s2.connect_uses("calc", s1.get_provides_port("adder").unwrap())
            .unwrap();
        s1.remove_provides_port("adder").unwrap();
        assert!(s1.get_provides_port("adder").is_err());
        // The user still holds a live direct connection.
        let port: Arc<dyn Adder> = s2.get_port_as("calc").unwrap();
        assert_eq!(port.add(2, 3), 5);
    }

    #[test]
    fn unregister_uses_port() {
        let s = CcaServices::new("c");
        s.register_uses_port("u", "t", TypeMap::new()).unwrap();
        let slot = s.unregister_uses_port("u").unwrap();
        assert_eq!(slot.record.name, "u");
        assert!(s.unregister_uses_port("u").is_err());
    }
}

#[cfg(test)]
mod multicast_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    trait Listener: Send + Sync {
        fn poke(&self);
    }
    struct L(AtomicUsize);
    impl Listener for L {
        fn poke(&self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn multicast_reaches_every_listener() {
        let user = CcaServices::new("emitter");
        user.register_uses_port("events", "t.Listener", TypeMap::new())
            .unwrap();
        let listeners: Vec<Arc<L>> = (0..3).map(|_| Arc::new(L(AtomicUsize::new(0)))).collect();
        for (i, l) in listeners.iter().enumerate() {
            let port: Arc<dyn Listener> = l.clone();
            user.connect_uses(
                "events",
                PortHandle::new(format!("l{i}"), "t.Listener", port),
            )
            .unwrap();
        }
        let called = user
            .multicast::<dyn Listener, _>("events", |l| l.poke())
            .unwrap();
        assert_eq!(called, 3);
        for l in &listeners {
            assert_eq!(l.0.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn multicast_with_zero_listeners_is_a_noop() {
        let user = CcaServices::new("emitter");
        user.register_uses_port("events", "t.Listener", TypeMap::new())
            .unwrap();
        let called = user
            .multicast::<dyn Listener, _>("events", |_| panic!("no listeners"))
            .unwrap();
        assert_eq!(called, 0);
        // Unknown slot still errors.
        assert!(user
            .multicast::<dyn Listener, _>("ghost", |_| ())
            .is_err());
    }
}
