//! The `CCAServices` handle — Figure 3's connection mechanism.
//!
//! "The component creates and adds Provides ports to the CCAServices, and
//! registers and retrieves Uses ports from the CCAServices. The CCAServices
//! enables access to the list of Provides and Uses ports and to an
//! individual port by its instance name." (§6.1)
//!
//! One `CcaServices` instance belongs to one component instance; the
//! framework holds a reference too and performs connections by moving
//! [`PortHandle`]s from one component's provides table into another's uses
//! slots. Whether the handle is the provider's own object (direct connect)
//! or a proxy is entirely the framework's choice — step (2) of Figure 3:
//! "At the framework's option, either the interface or a proxy for the
//! interface can be given to Component 2 through its CCAServices handle."
//!
//! # Direct-connect fast path
//!
//! §6.2 claims a connected port call costs "nothing more than a direct
//! function call to the connected object". To keep the *resolution* side of
//! that bargain, the provides/uses tables are published as immutable
//! [`Arc`] **snapshots**: a reader clones one `Arc` (no map walk is ever
//! blocked by a writer mutating entries) and every mutation builds a fresh
//! snapshot off-line, swaps the pointer in O(1), and bumps a monotonic
//! **generation counter**. [`CachedPort`] pushes this to the floor: it
//! memoizes the typed downcast and revalidates with a single relaxed atomic
//! load, so the steady-state cost of `get()` + call is one atomic load plus
//! the virtual call — measured in `benches/e9_port_resolution.rs`.

use crate::error::CcaError;
use crate::port::{PortHandle, PortRecord, UsesSlot};
use crate::resilience::{CallPolicy, CircuitBreaker};
use cca_data::TypeMap;
use cca_obs::{CallShard, PortMetrics, PortMetricsSnapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The immutable snapshot of one component's port tables. Readers share it
/// by cloning the outer `Arc`; writers copy, modify, and republish.
#[derive(Default, Clone)]
struct Tables {
    provides: BTreeMap<Arc<str>, PortHandle>,
    uses: BTreeMap<Arc<str>, UsesSlot>,
}

/// Per-component services handle (Figure 3's `CCAServices`).
///
/// ```
/// use cca_core::{CcaServices, PortHandle};
/// use cca_data::TypeMap;
/// use std::sync::Arc;
///
/// trait Echo: Send + Sync { fn echo(&self) -> i32; }
/// struct E;
/// impl Echo for E { fn echo(&self) -> i32 { 42 } }
///
/// // Provider side (Figure 3 step 1):
/// let provider = CcaServices::new("provider0");
/// let port: Arc<dyn Echo> = Arc::new(E);
/// provider.add_provides_port(PortHandle::new("out", "demo.Echo", port))?;
///
/// // Framework hands the interface to the user (steps 2+3):
/// let user = CcaServices::new("user0");
/// user.register_uses_port("in", "demo.Echo", TypeMap::new())?;
/// user.connect_uses("in", provider.get_provides_port("out")?)?;
///
/// // User side (step 4):
/// let echo: Arc<dyn Echo> = user.get_port_as("in")?;
/// assert_eq!(echo.echo(), 42);
/// # Ok::<(), cca_core::CcaError>(())
/// ```
pub struct CcaServices {
    /// Immutable after construction — no lock needed to read it.
    component_name: Arc<str>,
    /// The current snapshot. Writers swap the `Arc` in O(1); readers clone
    /// it and walk the maps entirely outside any critical section.
    tables: RwLock<Arc<Tables>>,
    /// Bumped (release) after every published mutation; [`CachedPort`]
    /// revalidates against it with one relaxed load.
    generation: AtomicU64,
}

impl CcaServices {
    /// Creates a services handle for the named component instance.
    pub fn new(component_name: impl Into<Arc<str>>) -> Arc<Self> {
        Arc::new(CcaServices {
            component_name: component_name.into(),
            tables: RwLock::new(Arc::new(Tables::default())),
            generation: AtomicU64::new(0),
        })
    }

    /// The owning component's instance name.
    pub fn component_name(&self) -> &str {
        &self.component_name
    }

    /// The current table generation. Any `connect`/`disconnect`/
    /// `add`/`remove`/`register`/`release` bumps it; a [`CachedPort`] whose
    /// remembered generation still matches may keep using its memoized
    /// downcast without touching the tables.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Clones the current snapshot (one `Arc` refcount bump under a briefly
    /// held read lock — never blocked by table *construction*, only by the
    /// O(1) pointer swap itself).
    fn snapshot(&self) -> Arc<Tables> {
        Arc::clone(&self.tables.read())
    }

    /// Copy-on-write mutation: clones the tables, applies `f`, republishes
    /// the new snapshot, and bumps the generation. Errors leave the
    /// published snapshot (and generation) untouched.
    fn mutate<R>(&self, f: impl FnOnce(&mut Tables) -> Result<R, CcaError>) -> Result<R, CcaError> {
        let mut guard = self.tables.write();
        let mut next = Tables::clone(&guard);
        let result = f(&mut next)?;
        *guard = Arc::new(next);
        self.generation.fetch_add(1, Ordering::Release);
        Ok(result)
    }

    // ---- provider side -------------------------------------------------

    /// `addProvidesPort` — step (1) of Figure 3: the component makes an
    /// interface it implements known to its containing framework.
    pub fn add_provides_port(&self, handle: PortHandle) -> Result<(), CcaError> {
        self.mutate(|t| {
            let name = Arc::clone(handle.port_name_arc());
            if t.provides.contains_key(&name) || t.uses.contains_key(&name) {
                return Err(CcaError::PortAlreadyExists(name.to_string()));
            }
            t.provides.insert(name, handle);
            Ok(())
        })
    }

    /// Removes a provides port; existing connections made from it remain
    /// valid (reference counting keeps the object alive) but no new
    /// connections can be made.
    pub fn remove_provides_port(&self, name: &str) -> Result<PortHandle, CcaError> {
        self.mutate(|t| {
            t.provides
                .remove(name)
                .ok_or_else(|| CcaError::PortNotFound(name.to_string()))
        })
    }

    /// The provides port registered under `name` (framework-facing; this is
    /// what a builder connects *from*). The returned handle shares the
    /// stored one — cloning it does not allocate.
    pub fn get_provides_port(&self, name: &str) -> Result<PortHandle, CcaError> {
        let handle = self
            .snapshot()
            .provides
            .get(name)
            .cloned()
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        if cca_obs::counters_enabled() {
            handle.metrics().record_resolution();
        }
        Ok(handle)
    }

    /// All provides-port registrations.
    pub fn provided_ports(&self) -> Vec<PortRecord> {
        self.snapshot()
            .provides
            .values()
            .map(|h| PortRecord {
                name: h.port_name().to_string(),
                port_type: h.port_type().to_string(),
                properties: h.properties().clone(),
            })
            .collect()
    }

    // ---- user side -----------------------------------------------------

    /// `registerUsesPort`: declares that this component will call through a
    /// port of the given SIDL type under the given instance name.
    pub fn register_uses_port(
        &self,
        name: impl Into<String>,
        port_type: impl Into<String>,
        properties: TypeMap,
    ) -> Result<(), CcaError> {
        let name = name.into();
        let port_type = port_type.into();
        self.mutate(|t| {
            let key: Arc<str> = Arc::from(name.as_str());
            if t.uses.contains_key(&key) || t.provides.contains_key(&key) {
                return Err(CcaError::PortAlreadyExists(name.clone()));
            }
            t.uses.insert(
                key,
                UsesSlot::new(PortRecord {
                    name: name.clone(),
                    port_type: port_type.clone(),
                    properties: properties.clone(),
                }),
            );
            Ok(())
        })
    }

    /// Unregisters a uses port, dropping its connections.
    pub fn unregister_uses_port(&self, name: &str) -> Result<UsesSlot, CcaError> {
        self.mutate(|t| {
            t.uses
                .remove(name)
                .ok_or_else(|| CcaError::PortNotFound(name.to_string()))
        })
    }

    /// `getPort` — step (4) of Figure 3: retrieves the connection for a
    /// registered uses port. Errors if the slot does not exist or nothing
    /// is connected. With fan-out > 1 the *first* connection is returned;
    /// use [`get_ports`](Self::get_ports) for the whole listener list.
    pub fn get_port(&self, name: &str) -> Result<PortHandle, CcaError> {
        let tables = self.snapshot();
        let slot = tables
            .uses
            .get(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        let handle = slot
            .connections()
            .first()
            .cloned()
            .ok_or_else(|| CcaError::PortNotConnected(name.to_string()))?;
        if cca_obs::counters_enabled() {
            slot.metrics().record_resolution();
            slot.metrics().record_direct_call();
        }
        Ok(handle)
    }

    /// All connections of a uses port (the fan-out list; may be empty —
    /// "one call may correspond to zero or more invocations"). Returns the
    /// **shared** snapshot: one refcount bump, no per-call `Vec` clone.
    /// The list is immutable; later connects/disconnects publish a new one.
    ///
    /// Quarantined providers (open circuit breaker, see
    /// [`crate::resilience`]) are transparently skipped — legal because
    /// §6.1 already allows zero providers. Slots without breakers (no
    /// policy attached) return the shared snapshot unfiltered, exactly as
    /// before.
    pub fn get_ports(&self, name: &str) -> Result<Arc<[PortHandle]>, CcaError> {
        let tables = self.snapshot();
        let slot = tables
            .uses
            .get(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        Ok(slot.healthy_connections())
    }

    /// The raw connection list, quarantined providers included. This is
    /// what builders and monitors walk — a quarantined connection still
    /// *exists*; it is only skipped by the invocation paths.
    pub fn all_ports(&self, name: &str) -> Result<Arc<[PortHandle]>, CcaError> {
        let tables = self.snapshot();
        let slot = tables
            .uses
            .get(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        Ok(Arc::clone(slot.connections()))
    }

    /// Typed convenience: `getPort` plus downcast to the port trait. For
    /// repeated access prefer [`CachedPort`], which memoizes the downcast.
    pub fn get_port_as<P: ?Sized + Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<Arc<P>, CcaError> {
        self.get_port(name)?.typed::<P>()
    }

    /// Creates a [`CachedPort`] for a uses slot: the memoizing handle that
    /// makes repeated `get()` cost one atomic load (§6.2 steady state).
    /// Resolution is lazy — the slot need not be connected yet.
    pub fn cached_port<P: ?Sized + Send + Sync + 'static>(
        self: &Arc<Self>,
        name: impl Into<Arc<str>>,
    ) -> CachedPort<P> {
        CachedPort::new(Arc::clone(self), name)
    }

    /// Multicast helper for the §6.1 fan-out semantics: invokes `f` on
    /// every connected provider of the uses port (zero or more), returning
    /// how many were called. Providers that fail the typed downcast are
    /// skipped (mixed typed/proxied fan-out). The shared snapshot makes
    /// this allocation-free per call.
    pub fn multicast<P, F>(&self, name: &str, mut f: F) -> Result<usize, CcaError>
    where
        P: ?Sized + Send + Sync + 'static,
        F: FnMut(&Arc<P>),
    {
        let tables = self.snapshot();
        let slot = tables
            .uses
            .get(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        let handles = slot.connections();
        let mut called = 0;
        if cca_obs::counters_enabled() {
            // Instrumented fan-out: per-listener latency into the slot's
            // log2 histogram. Still allocation-free — `Instant::now` and
            // relaxed atomics only.
            let metrics = slot.metrics();
            for h in handles.iter() {
                // One admission check per handle: quarantined providers
                // are skipped (§6.1's zero-or-more makes that legal), and
                // an admitted half-open probe is completed right here.
                if !h.admissible() {
                    continue;
                }
                if let Ok(p) = h.typed::<P>() {
                    let started = Instant::now();
                    f(&p);
                    metrics.record_latency_ns(started.elapsed().as_nanos() as u64);
                    metrics.record_direct_call();
                    called += 1;
                    if let Some(b) = h.breaker() {
                        // `f` returned: the listener serviced the call, so
                        // an in-flight probe closes the breaker.
                        b.record_success();
                    }
                }
            }
        } else {
            for h in handles.iter() {
                if !h.admissible() {
                    continue;
                }
                if let Ok(p) = h.typed::<P>() {
                    f(&p);
                    called += 1;
                    if let Some(b) = h.breaker() {
                        b.record_success();
                    }
                }
            }
        }
        Ok(called)
    }

    /// `releasePort`: declares the component is done with the current
    /// connection of `name` (the slot stays registered; connections drop).
    pub fn release_port(&self, name: &str) -> Result<(), CcaError> {
        self.mutate(|t| {
            let slot = t
                .uses
                .get_mut(name)
                .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
            slot.clear_connections();
            Ok(())
        })
    }

    /// All uses-port declarations.
    pub fn used_ports(&self) -> Vec<PortRecord> {
        self.snapshot()
            .uses
            .values()
            .map(|s| s.record.clone())
            .collect()
    }

    // ---- framework side ------------------------------------------------

    /// Framework-side: attaches a provider handle to a uses slot (step (3)
    /// of Figure 3). Type compatibility is the *framework's* job (it has
    /// the reflection data); this method only enforces slot existence.
    pub fn connect_uses(&self, uses_name: &str, provider: PortHandle) -> Result<(), CcaError> {
        self.mutate(|t| {
            let slot = t
                .uses
                .get_mut(uses_name)
                .ok_or_else(|| CcaError::PortNotFound(uses_name.to_string()))?;
            slot.push_connection(provider.renamed(uses_name));
            Ok(())
        })
    }

    /// Framework-side: detaches the provider registered under
    /// `provider_port_type` object identity is not tracked; disconnects by
    /// position. Returns the removed handle.
    pub fn disconnect_uses(&self, uses_name: &str, index: usize) -> Result<PortHandle, CcaError> {
        self.mutate(|t| {
            let slot = t
                .uses
                .get_mut(uses_name)
                .ok_or_else(|| CcaError::PortNotFound(uses_name.to_string()))?;
            slot.remove_connection(index)
                .ok_or_else(|| CcaError::PortNotConnected(uses_name.to_string()))
        })
    }

    /// Attaches (or replaces) a uses slot's invocation policy. Connections
    /// made *afterwards* get a fresh circuit breaker when the policy
    /// configures one; existing connections keep their breakers. The
    /// framework calls this during `connect_with_call_policy`; bare
    /// `CcaServices` users may call it directly.
    pub fn set_call_policy(&self, name: &str, policy: Arc<CallPolicy>) -> Result<(), CcaError> {
        self.mutate(|t| {
            let slot = t
                .uses
                .get_mut(name)
                .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
            slot.set_policy(Arc::clone(&policy));
            Ok(())
        })
    }

    /// The invocation policy attached to a uses slot, if any.
    pub fn call_policy(&self, name: &str) -> Result<Option<Arc<CallPolicy>>, CcaError> {
        self.snapshot()
            .uses
            .get(name)
            .map(|s| s.policy().cloned())
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))
    }

    /// The circuit breaker guarding connection `index` of a uses slot
    /// (`None` if that connection has no breaker). Monitors read breaker
    /// state through this.
    pub fn connection_breaker(
        &self,
        name: &str,
        index: usize,
    ) -> Result<Option<Arc<CircuitBreaker>>, CcaError> {
        let tables = self.snapshot();
        let slot = tables
            .uses
            .get(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        Ok(slot
            .connections()
            .get(index)
            .and_then(|h| h.breaker().cloned()))
    }

    /// The declared SIDL type of a uses slot.
    pub fn uses_port_type(&self, name: &str) -> Result<String, CcaError> {
        self.snapshot()
            .uses
            .get(name)
            .map(|s| s.record.port_type.clone())
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))
    }

    // ---- observability -------------------------------------------------

    /// The live metrics block of the named port (uses slots shadow
    /// provides ports, but names are unique across both tables). The
    /// returned `Arc` stays valid across reconnects — metrics follow the
    /// slot, not one table generation.
    pub fn port_metrics(&self, name: &str) -> Result<Arc<PortMetrics>, CcaError> {
        let tables = self.snapshot();
        if let Some(slot) = tables.uses.get(name) {
            return Ok(Arc::clone(slot.metrics()));
        }
        tables
            .provides
            .get(name)
            .map(|h| Arc::clone(h.metrics()))
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))
    }

    /// A point-in-time metrics snapshot of every port this component owns:
    /// `(port_name, "uses" | "provides", snapshot)`, sorted by name within
    /// each table. This is what the framework's `MonitorPort` aggregates.
    pub fn metrics_snapshot(&self) -> Vec<(String, &'static str, PortMetricsSnapshot)> {
        let tables = self.snapshot();
        let mut out = Vec::with_capacity(tables.provides.len() + tables.uses.len());
        for (name, handle) in &tables.provides {
            out.push((name.to_string(), "provides", handle.metrics().snapshot()));
        }
        for (name, slot) in &tables.uses {
            out.push((name.to_string(), "uses", slot.metrics().snapshot()));
        }
        out
    }

    /// Uncounted resolution for [`CachedPort::revalidate`]: the memoizing
    /// handle counts calls through its [`CallShard`], so routing it through
    /// the public (counting) `get_port_as` would double-count the call that
    /// triggered revalidation.
    ///
    /// Resolves to the **first admissible** connection: a quarantined
    /// first provider fails over to the next healthy one transparently
    /// (admission is checked once per candidate, so an admitted half-open
    /// probe is carried out by the caller). All providers quarantined is
    /// [`CcaError::ProviderQuarantined`]; no providers at all stays
    /// [`CcaError::PortNotConnected`].
    fn resolve_for_cache<P: ?Sized + Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<ResolvedUses<P>, CcaError> {
        let tables = self.snapshot();
        let slot = tables
            .uses
            .get(name)
            .ok_or_else(|| CcaError::PortNotFound(name.to_string()))?;
        let connections = slot.connections();
        if connections.is_empty() {
            return Err(CcaError::PortNotConnected(name.to_string()));
        }
        let handle = connections.iter().find(|h| h.admissible()).ok_or_else(|| {
            CcaError::ProviderQuarantined(format!(
                "all {} provider(s) of '{name}' are quarantined",
                connections.len()
            ))
        })?;
        Ok(ResolvedUses {
            port: handle.typed::<P>()?,
            metrics: Arc::clone(slot.metrics()),
            breaker: handle.breaker().cloned(),
            policy: slot.policy().cloned(),
        })
    }
}

/// What [`CcaServices::resolve_for_cache`] hands a revalidating
/// [`CachedPort`]: the typed provider plus the resilience context it was
/// resolved under.
struct ResolvedUses<P: ?Sized + Send + Sync + 'static> {
    port: Arc<P>,
    metrics: Arc<PortMetrics>,
    breaker: Option<Arc<CircuitBreaker>>,
    policy: Option<Arc<CallPolicy>>,
}

impl std::fmt::Debug for CcaServices {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tables = self.snapshot();
        f.debug_struct("CcaServices")
            .field("component", &self.component_name)
            .field("provides", &tables.provides.keys().collect::<Vec<_>>())
            .field("uses", &tables.uses.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// A memoizing typed handle to one uses slot — the §6.2 steady state.
///
/// The first `get()` resolves the slot and downcasts once; every later
/// `get()` is **one relaxed atomic load** (the generation check) plus a
/// pointer return. Any mutation of the owning [`CcaServices`] — `connect`,
/// `disconnect`, `remove_provides_port`, `release_port`, … — bumps the
/// generation and transparently invalidates the memo, so a cached port can
/// never outlive its connection unobserved: after a disconnect the next
/// `get()` re-resolves and reports [`CcaError::PortNotConnected`].
///
/// `get` takes `&mut self` so the fast path needs no interior locking; a
/// component typically owns one `CachedPort` per uses slot (one per thread
/// for shared slots — they all share the same `CcaServices`).
///
/// ```
/// use cca_core::{CcaServices, PortHandle};
/// use cca_data::TypeMap;
/// use std::sync::Arc;
///
/// trait Echo: Send + Sync { fn echo(&self) -> i32; }
/// struct E;
/// impl Echo for E { fn echo(&self) -> i32 { 7 } }
///
/// let provider = CcaServices::new("p");
/// let obj: Arc<dyn Echo> = Arc::new(E);
/// provider.add_provides_port(PortHandle::new("out", "demo.Echo", obj))?;
/// let user = CcaServices::new("u");
/// user.register_uses_port("in", "demo.Echo", TypeMap::new())?;
/// user.connect_uses("in", provider.get_provides_port("out")?)?;
///
/// let mut port = user.cached_port::<dyn Echo>("in");
/// assert_eq!(port.get()?.echo(), 7); // resolves + memoizes
/// assert_eq!(port.get()?.echo(), 7); // one atomic load + virtual call
/// # Ok::<(), cca_core::CcaError>(())
/// ```
pub struct CachedPort<P: ?Sized + Send + Sync + 'static> {
    services: Arc<CcaServices>,
    name: Arc<str>,
    seen_generation: u64,
    port: Option<Arc<P>>,
    /// The slot's metrics block, captured at resolution time.
    metrics: Option<Arc<PortMetrics>>,
    /// Single-writer call counter: this handle is the only bumper (`get`
    /// takes `&mut self`), so counting costs one relaxed store — no RMW.
    shard: Option<Arc<CallShard>>,
    /// The resolved connection's circuit breaker, captured at resolution
    /// time. `None` for policy-less slots — the fast path then skips
    /// admission entirely, exactly as before this existed.
    breaker: Option<Arc<CircuitBreaker>>,
    /// The slot's invocation policy, captured at resolution time; drives
    /// [`call`](Self::call).
    policy: Option<Arc<CallPolicy>>,
}

impl<P: ?Sized + Send + Sync + 'static> CachedPort<P> {
    /// Creates a lazy cached handle (no resolution until first `get`).
    pub fn new(services: Arc<CcaServices>, name: impl Into<Arc<str>>) -> Self {
        CachedPort {
            services,
            name: name.into(),
            seen_generation: 0,
            port: None,
            metrics: None,
            shard: None,
            breaker: None,
            policy: None,
        }
    }

    /// The uses-slot name this handle resolves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The typed port. Fast path: one relaxed generation load, a compare,
    /// and a borrow of the memoized `Arc<P>` — no lock, no allocation, no
    /// refcount traffic. A connection guarded by a circuit breaker adds
    /// one relaxed load of the breaker's state word while it stays closed
    /// (gated ≤1.1× the unguarded call by `benches/e11_resilience.rs`);
    /// a quarantined connection triggers revalidation, which fails over
    /// to the first admissible provider or reports
    /// [`CcaError::ProviderQuarantined`].
    #[inline]
    pub fn get(&mut self) -> Result<&Arc<P>, CcaError> {
        let generation = self.services.generation.load(Ordering::Relaxed);
        let stale = self.port.is_none() || generation != self.seen_generation;
        // Exactly one admission check per pass: revalidate performs its
        // own (it resolves the first *admissible* provider), so the
        // short-circuit only consults the breaker on the memo-hit path.
        // Checking twice would claim a half-open breaker's single probe
        // and discard it.
        if stale || self.breaker.as_ref().is_some_and(|b| !b.admit()) {
            self.revalidate(generation)?;
        }
        // Counting adds one relaxed flag load + predicted branch when off,
        // and one single-writer shard bump (relaxed load + store) when on —
        // gated at ≤1.1× / ≤1.5× of the bare call by e10_obs_overhead.
        if cca_obs::counters_enabled() {
            if let Some(shard) = &self.shard {
                shard.bump();
            }
        }
        // The revalidate branch above guarantees `port` is Some.
        Ok(self.port.as_ref().unwrap())
    }

    /// Cloning convenience for callers that need an owned `Arc<P>`.
    #[inline]
    pub fn get_cloned(&mut self) -> Result<Arc<P>, CcaError> {
        self.get().map(Arc::clone)
    }

    /// The circuit breaker of the currently resolved connection, if any
    /// (diagnostic — reflects the last resolution).
    pub fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// Invokes `f` on the resolved provider under the slot's
    /// [`CallPolicy`]: breaker admission before each attempt, the outcome
    /// reported back to the breaker, bounded retry with backoff between
    /// failed attempts, and the policy deadline enforced across the whole
    /// sequence. Between attempts the memo is invalidated, so a retry
    /// re-resolves and can **fail over** to the next admissible provider
    /// of a fan-out slot. With no policy attached this is `get` + `f` +
    /// breaker reporting — one extra branch.
    pub fn call<R>(&mut self, mut f: impl FnMut(&P) -> Result<R, CcaError>) -> Result<R, CcaError> {
        // Resolve first so the slot's policy (captured at resolution) is
        // current for this call.
        self.get()?;
        let Some(policy) = self.policy.clone() else {
            let port = Arc::clone(self.port.as_ref().unwrap());
            let result = f(&port);
            if let Some(b) = &self.breaker {
                match &result {
                    Ok(_) => b.record_success(),
                    Err(_) => b.record_failure(),
                }
            }
            return result;
        };
        let max_attempts = policy.max_attempts();
        let mut backoff = policy.retry().map(|r| r.schedule());
        let started = policy.clock().now_ns();
        let mut attempt = 0u32;
        loop {
            // One admission check per attempt: the pre-loop `get` already
            // resolved attempt 0 (claiming a half-open breaker's single
            // probe if one was due) — re-checking admission here would
            // discard that probe and wrongly report the sole provider of
            // a fan-out-1 slot as quarantined. Later attempts re-resolve:
            // `get` checks breaker admission (or fails over inside
            // revalidate) — a quarantined-everywhere slot surfaces as
            // ProviderQuarantined here.
            let resolution = if attempt == 0 {
                Ok(Arc::clone(self.port.as_ref().unwrap()))
            } else {
                self.get_cloned()
            };
            let error = match resolution {
                Ok(port) => {
                    let result = f(&port);
                    if let Some(b) = &self.breaker {
                        match &result {
                            Ok(_) => b.record_success(),
                            Err(_) => b.record_failure(),
                        }
                    }
                    match result {
                        Ok(v) => return Ok(v),
                        Err(e) => {
                            // Force the next attempt to re-resolve: with
                            // fan-out > 1 and this provider now tripped,
                            // resolution fails over to a healthy one.
                            self.invalidate();
                            e
                        }
                    }
                }
                Err(e) => e,
            };
            attempt += 1;
            if attempt >= max_attempts {
                return Err(error);
            }
            let wait = backoff.as_mut().and_then(|s| s.next()).unwrap_or(0);
            if let Some(deadline) = policy.deadline_ns() {
                let spent = policy.clock().now_ns().saturating_sub(started);
                if spent.saturating_add(wait) > deadline {
                    cca_obs::resilience().record_deadline_hit();
                    return Err(CcaError::DeadlineExceeded(format!(
                        "'{}' exhausted its {deadline} ns budget after {attempt} attempt(s): \
                         {error}",
                        self.name
                    )));
                }
            }
            cca_obs::resilience().record_retry();
            policy.clock().sleep_ns(wait);
        }
    }

    /// True if the memo is currently populated (diagnostic; says nothing
    /// about staleness until the next `get`).
    pub fn is_resolved(&self) -> bool {
        self.port.is_some()
    }

    /// Drops the memo, forcing the next `get` to re-resolve.
    pub fn invalidate(&mut self) {
        self.port = None;
    }

    #[cold]
    fn revalidate(&mut self, generation: u64) -> Result<(), CcaError> {
        // Drop the stale memo first: if resolution fails (slot was
        // disconnected or unregistered) the error must be sticky rather
        // than silently serving the dead provider.
        self.port = None;
        self.breaker = None;
        // `generation` was loaded *before* the snapshot read below, so a
        // concurrent mutation can only make us conservatively re-resolve
        // next time — never serve a stale memo as fresh.
        let resolved = self.services.resolve_for_cache::<P>(&self.name)?;
        if cca_obs::counters_enabled() {
            resolved.metrics.record_resolution();
        }
        // Keep the existing shard when the slot's metrics block is
        // unchanged (the common reconnect case) so counts accumulate;
        // register a fresh one if the slot was re-registered.
        let stale = match &self.metrics {
            Some(old) => !Arc::ptr_eq(old, &resolved.metrics),
            None => true,
        };
        if stale || self.shard.is_none() {
            self.shard = Some(resolved.metrics.call_shard());
            self.metrics = Some(resolved.metrics);
        }
        self.breaker = resolved.breaker;
        self.policy = resolved.policy;
        self.port = Some(resolved.port);
        self.seen_generation = generation;
        Ok(())
    }
}

impl<P: ?Sized + Send + Sync + 'static> std::fmt::Debug for CachedPort<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedPort")
            .field("name", &self.name)
            .field("resolved", &self.port.is_some())
            .field("seen_generation", &self.seen_generation)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Adder: Send + Sync {
        fn add(&self, a: i64, b: i64) -> i64;
    }
    struct AdderImpl;
    impl Adder for AdderImpl {
        fn add(&self, a: i64, b: i64) -> i64 {
            a + b
        }
    }

    fn adder_handle(name: &str) -> PortHandle {
        let obj: Arc<dyn Adder> = Arc::new(AdderImpl);
        PortHandle::new(name, "demo.Adder", obj)
    }

    #[test]
    fn figure3_connection_mechanism() {
        // (1) Component 1 adds a provides port.
        let s1 = CcaServices::new("component1");
        s1.add_provides_port(adder_handle("adder")).unwrap();
        // (2)+(3) The framework takes the interface and gives it to
        // component 2's services.
        let s2 = CcaServices::new("component2");
        s2.register_uses_port("calc", "demo.Adder", TypeMap::new())
            .unwrap();
        let provided = s1.get_provides_port("adder").unwrap();
        s2.connect_uses("calc", provided).unwrap();
        // (4) Component 2 retrieves the interface with getPort.
        let port: Arc<dyn Adder> = s2.get_port_as("calc").unwrap();
        assert_eq!(port.add(20, 22), 42);
    }

    #[test]
    fn get_port_before_connection_errors() {
        let s = CcaServices::new("c");
        s.register_uses_port("calc", "demo.Adder", TypeMap::new())
            .unwrap();
        assert!(matches!(
            s.get_port("calc"),
            Err(CcaError::PortNotConnected(_))
        ));
        assert!(matches!(s.get_port("nope"), Err(CcaError::PortNotFound(_))));
    }

    #[test]
    fn duplicate_names_rejected_across_tables() {
        let s = CcaServices::new("c");
        s.add_provides_port(adder_handle("x")).unwrap();
        assert!(matches!(
            s.add_provides_port(adder_handle("x")),
            Err(CcaError::PortAlreadyExists(_))
        ));
        assert!(matches!(
            s.register_uses_port("x", "t", TypeMap::new()),
            Err(CcaError::PortAlreadyExists(_))
        ));
        s.register_uses_port("y", "t", TypeMap::new()).unwrap();
        assert!(matches!(
            s.add_provides_port(adder_handle("y")),
            Err(CcaError::PortAlreadyExists(_))
        ));
    }

    #[test]
    fn failed_mutations_do_not_bump_generation() {
        let s = CcaServices::new("c");
        s.add_provides_port(adder_handle("x")).unwrap();
        let g = s.generation();
        assert!(s.add_provides_port(adder_handle("x")).is_err());
        assert!(s.remove_provides_port("ghost").is_err());
        assert!(s.release_port("ghost").is_err());
        assert_eq!(s.generation(), g);
        s.remove_provides_port("x").unwrap();
        assert_eq!(s.generation(), g + 1);
    }

    #[test]
    fn fan_out_listener_list() {
        let s = CcaServices::new("caller");
        s.register_uses_port("out", "demo.Adder", TypeMap::new())
            .unwrap();
        s.connect_uses("out", adder_handle("a")).unwrap();
        s.connect_uses("out", adder_handle("b")).unwrap();
        let all = s.get_ports("out").unwrap();
        assert_eq!(all.len(), 2);
        // Every listener is invocable.
        for h in all.iter() {
            let p: Arc<dyn Adder> = h.typed().unwrap();
            assert_eq!(p.add(1, 1), 2);
        }
        // get_port returns the first.
        assert_eq!(s.get_port("out").unwrap().port_name(), "out");
        // The snapshot is shared, not copied: fetching twice without an
        // intervening mutation yields the same allocation.
        let again = s.get_ports("out").unwrap();
        assert!(Arc::ptr_eq(&all, &again));
        // A mutation publishes a fresh list; the old snapshot is unchanged.
        s.connect_uses("out", adder_handle("c")).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(s.get_ports("out").unwrap().len(), 3);
    }

    #[test]
    fn release_and_disconnect() {
        let s = CcaServices::new("c");
        s.register_uses_port("out", "demo.Adder", TypeMap::new())
            .unwrap();
        s.connect_uses("out", adder_handle("a")).unwrap();
        s.connect_uses("out", adder_handle("b")).unwrap();
        let removed = s.disconnect_uses("out", 0).unwrap();
        assert_eq!(removed.port_type(), "demo.Adder");
        assert_eq!(s.get_ports("out").unwrap().len(), 1);
        assert!(s.disconnect_uses("out", 5).is_err());
        s.release_port("out").unwrap();
        assert!(s.get_ports("out").unwrap().is_empty());
        assert!(matches!(
            s.get_port("out"),
            Err(CcaError::PortNotConnected(_))
        ));
    }

    #[test]
    fn listings_and_metadata() {
        let s = CcaServices::new("c");
        s.add_provides_port(adder_handle("p1")).unwrap();
        let mut props = TypeMap::new();
        props.put_string("flavor", "direct".into());
        s.register_uses_port("u1", "demo.Adder", props).unwrap();
        let provided = s.provided_ports();
        assert_eq!(provided.len(), 1);
        assert_eq!(provided[0].port_type, "demo.Adder");
        let used = s.used_ports();
        assert_eq!(used.len(), 1);
        assert_eq!(
            used[0].properties.get_string("flavor", String::new()),
            "direct"
        );
        assert_eq!(s.uses_port_type("u1").unwrap(), "demo.Adder");
        assert_eq!(s.component_name(), "c");
        assert!(format!("{s:?}").contains("p1"));
    }

    #[test]
    fn remove_provides_keeps_existing_connections_alive() {
        let s1 = CcaServices::new("provider");
        s1.add_provides_port(adder_handle("adder")).unwrap();
        let s2 = CcaServices::new("user");
        s2.register_uses_port("calc", "demo.Adder", TypeMap::new())
            .unwrap();
        s2.connect_uses("calc", s1.get_provides_port("adder").unwrap())
            .unwrap();
        s1.remove_provides_port("adder").unwrap();
        assert!(s1.get_provides_port("adder").is_err());
        // The user still holds a live direct connection.
        let port: Arc<dyn Adder> = s2.get_port_as("calc").unwrap();
        assert_eq!(port.add(2, 3), 5);
    }

    #[test]
    fn unregister_uses_port() {
        let s = CcaServices::new("c");
        s.register_uses_port("u", "t", TypeMap::new()).unwrap();
        let slot = s.unregister_uses_port("u").unwrap();
        assert_eq!(slot.record.name, "u");
        assert!(s.unregister_uses_port("u").is_err());
    }
}

#[cfg(test)]
mod cached_port_tests {
    use super::*;

    trait Adder: Send + Sync {
        fn add(&self, a: i64, b: i64) -> i64;
    }
    struct Plus(i64);
    impl Adder for Plus {
        fn add(&self, a: i64, b: i64) -> i64 {
            a + b + self.0
        }
    }

    fn plus_handle(name: &str, bias: i64) -> PortHandle {
        let obj: Arc<dyn Adder> = Arc::new(Plus(bias));
        PortHandle::new(name, "demo.Adder", obj)
    }

    fn wired(bias: i64) -> (Arc<CcaServices>, Arc<CcaServices>) {
        let provider = CcaServices::new("p");
        provider
            .add_provides_port(plus_handle("out", bias))
            .unwrap();
        let user = CcaServices::new("u");
        user.register_uses_port("in", "demo.Adder", TypeMap::new())
            .unwrap();
        user.connect_uses("in", provider.get_provides_port("out").unwrap())
            .unwrap();
        (user, provider)
    }

    #[test]
    fn memoizes_until_generation_changes() {
        let (user, _p) = wired(0);
        let mut port = user.cached_port::<dyn Adder>("in");
        assert!(!port.is_resolved());
        let first = Arc::as_ptr(port.get().unwrap());
        assert!(port.is_resolved());
        // No mutation — the memo survives and is the identical object.
        assert_eq!(Arc::as_ptr(port.get().unwrap()), first);
        assert_eq!(port.get().unwrap().add(1, 2), 3);
        assert!(format!("{port:?}").contains("\"in\""));
    }

    #[test]
    fn observes_disconnection() {
        let (user, _p) = wired(0);
        let mut port = user.cached_port::<dyn Adder>("in");
        assert_eq!(port.get().unwrap().add(2, 2), 4);
        user.disconnect_uses("in", 0).unwrap();
        // The stale memo must not be served after the disconnect.
        assert!(matches!(port.get(), Err(CcaError::PortNotConnected(_))));
        assert!(!port.is_resolved());
        // Errors stay sticky until a reconnect...
        assert!(port.get().is_err());
        let provider2 = CcaServices::new("p2");
        provider2
            .add_provides_port(plus_handle("out", 100))
            .unwrap();
        user.connect_uses("in", provider2.get_provides_port("out").unwrap())
            .unwrap();
        // ...after which the new provider is resolved transparently.
        assert_eq!(port.get().unwrap().add(0, 0), 100);
    }

    #[test]
    fn observes_redirection_to_new_provider() {
        let (user, _p) = wired(0);
        let mut port = user.cached_port::<dyn Adder>("in");
        assert_eq!(port.get().unwrap().add(0, 0), 0);
        // Swap providers: disconnect old, connect biased one.
        user.disconnect_uses("in", 0).unwrap();
        let p2 = CcaServices::new("p2");
        p2.add_provides_port(plus_handle("out", 7)).unwrap();
        user.connect_uses("in", p2.get_provides_port("out").unwrap())
            .unwrap();
        assert_eq!(port.get().unwrap().add(0, 0), 7);
    }

    #[test]
    fn manual_invalidate_forces_reresolve() {
        let (user, _p) = wired(0);
        let mut port = user.cached_port::<dyn Adder>("in");
        port.get().unwrap();
        port.invalidate();
        assert!(!port.is_resolved());
        assert_eq!(port.get().unwrap().add(5, 5), 10);
        assert_eq!(port.name(), "in");
    }

    #[test]
    fn wrong_type_error_propagates() {
        trait Other: Send + Sync {}
        let (user, _p) = wired(0);
        let mut port = user.cached_port::<dyn Other>("in");
        assert!(matches!(port.get(), Err(CcaError::WrongPortRust { .. })));
        let mut missing = user.cached_port::<dyn Adder>("ghost");
        assert!(matches!(missing.get(), Err(CcaError::PortNotFound(_))));
    }
}

#[cfg(test)]
mod metrics_tests {
    use super::*;

    trait Adder: Send + Sync {
        fn add(&self, a: i64, b: i64) -> i64;
    }
    struct AdderImpl;
    impl Adder for AdderImpl {
        fn add(&self, a: i64, b: i64) -> i64 {
            a + b
        }
    }

    fn adder_handle(name: &str) -> PortHandle {
        let obj: Arc<dyn Adder> = Arc::new(AdderImpl);
        PortHandle::new(name, "demo.Adder", obj)
    }

    #[test]
    fn connection_shape_metrics_are_always_on() {
        // No counter gate involved: connects/disconnects/fan-out record
        // unconditionally because they ride the rare mutation path.
        let s = CcaServices::new("c");
        s.register_uses_port("out", "demo.Adder", TypeMap::new())
            .unwrap();
        s.connect_uses("out", adder_handle("a")).unwrap();
        let a: Arc<dyn Adder> = s.get_port_as("out").unwrap();
        assert_eq!(a.add(2, 3), 5);
        s.connect_uses("out", adder_handle("b")).unwrap();
        s.disconnect_uses("out", 0).unwrap();
        let snap = s.port_metrics("out").unwrap().snapshot();
        assert_eq!(snap.connects, 2);
        assert_eq!(snap.disconnects, 1);
        assert_eq!(snap.fan_out, 1);
        assert_eq!(snap.max_fan_out, 2);
        assert_eq!(snap.churn, 3);
        // release_port drops the remaining connection in one churn step.
        s.release_port("out").unwrap();
        let snap = s.port_metrics("out").unwrap().snapshot();
        assert_eq!(snap.disconnects, 2);
        assert_eq!(snap.fan_out, 0);
        assert!(s.port_metrics("ghost").is_err());
    }

    #[test]
    fn metrics_survive_copy_on_write_republication() {
        let s = CcaServices::new("c");
        s.register_uses_port("out", "demo.Adder", TypeMap::new())
            .unwrap();
        let before = s.port_metrics("out").unwrap();
        // Unrelated mutations rebuild the whole table snapshot…
        s.add_provides_port(adder_handle("p")).unwrap();
        s.connect_uses("out", adder_handle("a")).unwrap();
        // …but the slot keeps the identical metrics block.
        let after = s.port_metrics("out").unwrap();
        assert!(Arc::ptr_eq(&before, &after));
    }

    #[test]
    fn snapshot_covers_both_tables() {
        let s = CcaServices::new("c");
        s.add_provides_port(adder_handle("give")).unwrap();
        s.register_uses_port("take", "demo.Adder", TypeMap::new())
            .unwrap();
        let all = s.metrics_snapshot();
        assert_eq!(all.len(), 2);
        assert_eq!((all[0].0.as_str(), all[0].1), ("give", "provides"));
        assert_eq!((all[1].0.as_str(), all[1].1), ("take", "uses"));
        assert!(s.port_metrics("give").is_ok());
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use crate::resilience::{BreakerPolicy, BreakerState, Clock, MockClock, RetryPolicy};
    use std::sync::atomic::AtomicUsize;

    trait Flaky: Send + Sync {
        fn id(&self) -> &'static str;
        fn work(&self) -> Result<i64, CcaError>;
    }

    /// Fails its first `fail_first` calls, then succeeds forever.
    struct FlakyImpl {
        name: &'static str,
        fail_first: usize,
        calls: AtomicUsize,
    }
    impl Flaky for FlakyImpl {
        fn id(&self) -> &'static str {
            self.name
        }
        fn work(&self) -> Result<i64, CcaError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                Err(CcaError::Framework(format!("{} flaking ({n})", self.name)))
            } else {
                Ok(n as i64)
            }
        }
    }

    fn flaky_handle(name: &'static str, fail_first: usize) -> PortHandle {
        let obj: Arc<dyn Flaky> = Arc::new(FlakyImpl {
            name,
            fail_first,
            calls: AtomicUsize::new(0),
        });
        PortHandle::new(name, "demo.Flaky", obj)
    }

    fn wired_with_policy(
        policy: CallPolicy,
        providers: &[(&'static str, usize)],
    ) -> Arc<CcaServices> {
        let user = CcaServices::new("user");
        user.register_uses_port("work", "demo.Flaky", TypeMap::new())
            .unwrap();
        user.set_call_policy("work", Arc::new(policy)).unwrap();
        for (name, fail_first) in providers {
            user.connect_uses("work", flaky_handle(name, *fail_first))
                .unwrap();
        }
        user
    }

    #[test]
    fn cached_call_retries_deterministically() {
        let clock = MockClock::new();
        let policy = CallPolicy::with_clock(clock.clone())
            .with_retry(RetryPolicy::new(5, 100, 1_000).with_jitter_seed(11));
        let user = wired_with_policy(policy, &[("p1", 2)]);
        let mut port = user.cached_port::<dyn Flaky>("work");
        let v = port.call(|p| p.work()).unwrap();
        assert_eq!(v, 2, "two failures were retried through");
        assert!(clock.now_ns() >= 200, "two backoff waits were charged");
    }

    #[test]
    fn quarantine_fails_over_to_the_next_provider() {
        let clock = MockClock::new();
        let policy = CallPolicy::with_clock(clock.clone())
            .with_retry(RetryPolicy::new(4, 10, 50).with_jitter_seed(12))
            .with_breaker(BreakerPolicy::new(2, 1_000_000));
        // p1 always fails; p2 is healthy.
        let user = wired_with_policy(policy, &[("p1", usize::MAX), ("p2", 0)]);
        let mut port = user.cached_port::<dyn Flaky>("work");
        let v = port.call(|p| p.work()).unwrap();
        // Attempts 1+2 hit p1 (tripping its breaker at K=2); the breaker
        // opens, resolution fails over, and the call completes on p2.
        assert_eq!(v, 0);
        let b1 = user.connection_breaker("work", 0).unwrap().unwrap();
        assert_eq!(b1.state(), BreakerState::Open);
        // Steady state now serves p2 directly.
        let resolved = port.get().unwrap();
        assert_eq!(resolved.id(), "p2");
        // get_ports skips the quarantined provider; the raw list keeps it.
        assert_eq!(user.get_ports("work").unwrap().len(), 1);
        assert_eq!(user.all_ports("work").unwrap().len(), 2);
    }

    #[test]
    fn all_quarantined_is_provider_quarantined_not_a_hang() {
        let clock = MockClock::new();
        let policy = CallPolicy::with_clock(clock.clone())
            .with_retry(RetryPolicy::new(3, 10, 50).with_jitter_seed(13))
            .with_breaker(BreakerPolicy::new(1, 1_000_000));
        let user = wired_with_policy(policy, &[("p1", usize::MAX)]);
        let mut port = user.cached_port::<dyn Flaky>("work");
        let e = port.call(|p| p.work()).unwrap_err();
        assert!(matches!(e, CcaError::ProviderQuarantined(_)), "got {e:?}");
        // Zero *healthy* providers is a legal §6.1 fan-out outcome.
        assert!(user.get_ports("work").unwrap().is_empty());
        // After the cooldown, the half-open probe lets a recovered
        // provider rejoin (the same object now succeeds: fail_first only
        // applied to its first calls... use a fresh success run).
        clock.advance_ns(1_000_000);
        assert_eq!(user.get_ports("work").unwrap().len(), 1);
    }

    #[test]
    fn deadline_bounds_the_retry_sequence() {
        let clock = MockClock::new();
        let policy = CallPolicy::with_clock(clock.clone())
            .with_retry(RetryPolicy::new(1_000, 1_000, 1_000).with_jitter_seed(14))
            .with_deadline_ns(4_500);
        let user = wired_with_policy(policy, &[("p1", usize::MAX)]);
        let mut port = user.cached_port::<dyn Flaky>("work");
        let e = port.call(|p| p.work()).unwrap_err();
        assert!(matches!(e, CcaError::DeadlineExceeded(_)), "got {e:?}");
        assert!(clock.now_ns() <= 4_500, "no sleep past the deadline");
    }

    #[test]
    fn call_without_policy_is_a_plain_invocation() {
        let user = CcaServices::new("user");
        user.register_uses_port("work", "demo.Flaky", TypeMap::new())
            .unwrap();
        user.connect_uses("work", flaky_handle("p1", 1)).unwrap();
        let mut port = user.cached_port::<dyn Flaky>("work");
        // No retry: the first (failing) call surfaces directly.
        assert!(port.call(|p| p.work()).is_err());
        assert_eq!(port.call(|p| p.work()).unwrap(), 1);
        assert!(port.breaker().is_none());
    }
}

#[cfg(test)]
mod multicast_tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    trait Listener: Send + Sync {
        fn poke(&self);
    }
    struct L(AtomicUsize);
    impl Listener for L {
        fn poke(&self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn multicast_reaches_every_listener() {
        let user = CcaServices::new("emitter");
        user.register_uses_port("events", "t.Listener", TypeMap::new())
            .unwrap();
        let listeners: Vec<Arc<L>> = (0..3).map(|_| Arc::new(L(AtomicUsize::new(0)))).collect();
        for (i, l) in listeners.iter().enumerate() {
            let port: Arc<dyn Listener> = l.clone();
            user.connect_uses(
                "events",
                PortHandle::new(format!("l{i}"), "t.Listener", port),
            )
            .unwrap();
        }
        let called = user
            .multicast::<dyn Listener, _>("events", |l| l.poke())
            .unwrap();
        assert_eq!(called, 3);
        for l in &listeners {
            assert_eq!(l.0.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn multicast_with_zero_listeners_is_a_noop() {
        let user = CcaServices::new("emitter");
        user.register_uses_port("events", "t.Listener", TypeMap::new())
            .unwrap();
        let called = user
            .multicast::<dyn Listener, _>("events", |_| panic!("no listeners"))
            .unwrap();
        assert_eq!(called, 0);
        // Unknown slot still errors.
        assert!(user.multicast::<dyn Listener, _>("ghost", |_| ()).is_err());
    }
}
