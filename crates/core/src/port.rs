//! The CCA Ports model (§6.1–6.2).
//!
//! A **provides port** is an object a component exposes; a **uses port** is
//! a named slot holding connections to zero or more provides ports ("each
//! Uses port maintains a list of listeners ... one call may correspond to
//! zero or more invocations on provider components").
//!
//! [`PortHandle`] is the direct-connect representation of §6.2: it holds an
//! `Arc` to the provider's actual object, so once a component has retrieved
//! it via `getPort`, a method call "reacts as quickly as an inline
//! [virtual] function call" — there is no framework interposition on the
//! call path. A framework *may* instead hand out a proxy (the distributed
//! case); the component cannot tell, which is exactly the paper's design.

use crate::error::CcaError;
use cca_data::TypeMap;
use cca_sidl::DynObject;
use std::any::Any;
use std::sync::Arc;

/// A type-erased, shareable reference to a provides-port object.
///
/// The provider registers its port as an `Arc<dyn SomePortTrait>`; the
/// handle stores that `Arc` behind `Any` so the consumer can recover
/// exactly the same trait object (`downcast::<dyn SomePortTrait>()`),
/// giving a direct virtual call into the provider — the §6.2 fast path.
/// A parallel `Arc<dyn DynObject>` facade can be attached so reflective
/// tools and remote proxies can reach the same port without compile-time
/// knowledge of the trait.
#[derive(Clone)]
pub struct PortHandle {
    port_name: String,
    port_type: String,
    object: Arc<dyn Any + Send + Sync>,
    dynamic: Option<Arc<dyn DynObject>>,
    properties: TypeMap,
}

impl PortHandle {
    /// Wraps a trait-object port. `P` is typically `dyn SomePortTrait`.
    pub fn new<P: ?Sized + Send + Sync + 'static>(
        port_name: impl Into<String>,
        port_type: impl Into<String>,
        object: Arc<P>,
    ) -> Self {
        PortHandle {
            port_name: port_name.into(),
            port_type: port_type.into(),
            object: Arc::new(object),
            dynamic: None,
            properties: TypeMap::new(),
        }
    }

    /// Attaches a dynamic-invocation facade (usually the SIDL-generated
    /// skeleton wrapping the same implementation).
    pub fn with_dynamic(mut self, dynamic: Arc<dyn DynObject>) -> Self {
        self.dynamic = Some(dynamic);
        self
    }

    /// Attaches port properties.
    pub fn with_properties(mut self, properties: TypeMap) -> Self {
        self.properties = properties;
        self
    }

    /// The port's instance name (unique within its component).
    pub fn port_name(&self) -> &str {
        &self.port_name
    }

    /// The port's SIDL interface type.
    pub fn port_type(&self) -> &str {
        &self.port_type
    }

    /// Port properties.
    pub fn properties(&self) -> &TypeMap {
        &self.properties
    }

    /// Recovers the typed trait object — the direct-connect call path.
    /// `P` must be the exact `dyn Trait` (or concrete type) the provider
    /// registered.
    pub fn typed<P: ?Sized + Send + Sync + 'static>(&self) -> Result<Arc<P>, CcaError> {
        self.object
            .downcast_ref::<Arc<P>>()
            .cloned()
            .ok_or_else(|| CcaError::WrongPortRust {
                port: self.port_name.clone(),
                requested: std::any::type_name::<P>(),
            })
    }

    /// The dynamic facade, if the provider attached one.
    pub fn dynamic(&self) -> Option<&Arc<dyn DynObject>> {
        self.dynamic.as_ref()
    }

    /// Renames the handle (used by the framework when the provider's port
    /// name differs from the consumer's uses-slot name).
    pub fn renamed(&self, port_name: impl Into<String>) -> Self {
        let mut h = self.clone();
        h.port_name = port_name.into();
        h
    }
}

impl std::fmt::Debug for PortHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortHandle")
            .field("port_name", &self.port_name)
            .field("port_type", &self.port_type)
            .field("dynamic", &self.dynamic.is_some())
            .finish()
    }
}

/// The registration record of a provides port (what `addProvidesPort`
/// stores) or of a uses port declaration.
#[derive(Debug, Clone)]
pub struct PortRecord {
    /// Instance name.
    pub name: String,
    /// SIDL interface type of the port.
    pub port_type: String,
    /// Registration properties.
    pub properties: TypeMap,
}

/// A uses port: a declaration plus the current connection list.
///
/// §6.1: "Provides ports are generalized listeners in the sense that they
/// listen to Uses interfaces ... Each Uses port maintains a list of
/// listeners."
#[derive(Debug, Clone)]
pub struct UsesSlot {
    /// The declaration.
    pub record: PortRecord,
    /// Connected providers, in connection order.
    pub connections: Vec<PortHandle>,
}

impl UsesSlot {
    /// Creates an empty slot.
    pub fn new(record: PortRecord) -> Self {
        UsesSlot {
            record,
            connections: Vec::new(),
        }
    }

    /// Number of connected providers.
    pub fn fan_out(&self) -> usize {
        self.connections.len()
    }

    /// True if at least one provider is connected.
    pub fn is_connected(&self) -> bool {
        !self.connections.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Greeter: Send + Sync {
        fn greet(&self) -> String;
    }

    struct English;
    impl Greeter for English {
        fn greet(&self) -> String {
            "hello".into()
        }
    }

    #[test]
    fn typed_round_trip_through_handle() {
        let provider: Arc<dyn Greeter> = Arc::new(English);
        let handle = PortHandle::new("greeter", "demo.Greeter", provider);
        let back: Arc<dyn Greeter> = handle.typed().unwrap();
        assert_eq!(back.greet(), "hello");
        assert_eq!(handle.port_type(), "demo.Greeter");
        assert_eq!(handle.port_name(), "greeter");
    }

    #[test]
    fn direct_connect_is_same_object() {
        let provider: Arc<dyn Greeter> = Arc::new(English);
        let handle = PortHandle::new("greeter", "demo.Greeter", Arc::clone(&provider));
        let back: Arc<dyn Greeter> = handle.typed().unwrap();
        // The §6.2 property: the consumer holds the provider's own object.
        assert!(Arc::ptr_eq(&provider, &back));
    }

    #[test]
    fn wrong_rust_type_is_detected() {
        trait Other: Send + Sync {}
        let provider: Arc<dyn Greeter> = Arc::new(English);
        let handle = PortHandle::new("greeter", "demo.Greeter", provider);
        match handle.typed::<dyn Other>() {
            Err(CcaError::WrongPortRust { port, .. }) => assert_eq!(port, "greeter"),
            Ok(_) => panic!("downcast to the wrong trait must fail"),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn concrete_types_work_too() {
        let handle = PortHandle::new("n", "demo.Num", Arc::new(42i64));
        let v: Arc<i64> = handle.typed().unwrap();
        assert_eq!(*v, 42);
    }

    #[test]
    fn properties_and_rename() {
        let mut props = TypeMap::new();
        props.put_int("maxClients", 4);
        let handle = PortHandle::new("a", "t", Arc::new(0u8)).with_properties(props);
        assert_eq!(handle.properties().get_int("maxClients", 0), 4);
        let renamed = handle.renamed("b");
        assert_eq!(renamed.port_name(), "b");
        assert_eq!(handle.port_name(), "a");
        assert!(format!("{handle:?}").contains("\"a\""));
    }

    #[test]
    fn uses_slot_fan_out_counts() {
        let mut slot = UsesSlot::new(PortRecord {
            name: "solvers".into(),
            port_type: "esi.Solver".into(),
            properties: TypeMap::new(),
        });
        assert!(!slot.is_connected());
        assert_eq!(slot.fan_out(), 0);
        slot.connections
            .push(PortHandle::new("s1", "esi.Solver", Arc::new(1u8)));
        slot.connections
            .push(PortHandle::new("s2", "esi.Solver", Arc::new(2u8)));
        assert!(slot.is_connected());
        assert_eq!(slot.fan_out(), 2);
    }
}
