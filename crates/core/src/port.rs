//! The CCA Ports model (§6.1–6.2).
//!
//! A **provides port** is an object a component exposes; a **uses port** is
//! a named slot holding connections to zero or more provides ports ("each
//! Uses port maintains a list of listeners ... one call may correspond to
//! zero or more invocations on provider components").
//!
//! [`PortHandle`] is the direct-connect representation of §6.2: it holds an
//! `Arc` to the provider's actual object, so once a component has retrieved
//! it via `getPort`, a method call "reacts as quickly as an inline
//! [virtual] function call" — there is no framework interposition on the
//! call path. A framework *may* instead hand out a proxy (the distributed
//! case); the component cannot tell, which is exactly the paper's design.
//!
//! Handles are deliberately cheap to copy: names, types, and properties are
//! interned behind `Arc`s, so `PortHandle::clone` is a handful of reference
//! count bumps with **zero heap allocation**. This is what lets the services
//! layer publish whole connection tables as immutable snapshots (see
//! `services`) without paying per-read allocation costs.

use crate::error::CcaError;
use crate::resilience::{CallPolicy, CircuitBreaker};
use cca_data::TypeMap;
use cca_obs::PortMetrics;
use cca_sidl::DynObject;
use std::any::Any;
use std::sync::Arc;

/// A type-erased, shareable reference to a provides-port object.
///
/// The provider registers its port as an `Arc<dyn SomePortTrait>`; the
/// handle stores that `Arc` behind `Any` so the consumer can recover
/// exactly the same trait object (`downcast::<dyn SomePortTrait>()`),
/// giving a direct virtual call into the provider — the §6.2 fast path.
/// A parallel `Arc<dyn DynObject>` facade can be attached so reflective
/// tools and remote proxies can reach the same port without compile-time
/// knowledge of the trait.
#[derive(Clone)]
pub struct PortHandle {
    port_name: Arc<str>,
    port_type: Arc<str>,
    object: Arc<dyn Any + Send + Sync>,
    dynamic: Option<Arc<dyn DynObject>>,
    properties: Arc<TypeMap>,
    /// Shared across every clone of this handle (and thus every table
    /// snapshot it appears in), so counters survive COW republication.
    metrics: Arc<PortMetrics>,
    /// Per-connection circuit breaker, attached at connect time when the
    /// uses slot carries a breaker-bearing [`CallPolicy`]. Shared by every
    /// clone, so breaker state survives COW table republication.
    breaker: Option<Arc<CircuitBreaker>>,
}

impl PortHandle {
    /// Wraps a trait-object port. `P` is typically `dyn SomePortTrait`.
    pub fn new<P: ?Sized + Send + Sync + 'static>(
        port_name: impl Into<Arc<str>>,
        port_type: impl Into<Arc<str>>,
        object: Arc<P>,
    ) -> Self {
        PortHandle {
            port_name: port_name.into(),
            port_type: port_type.into(),
            object: Arc::new(object),
            dynamic: None,
            properties: Arc::new(TypeMap::new()),
            metrics: PortMetrics::new(),
            breaker: None,
        }
    }

    /// Attaches a dynamic-invocation facade (usually the SIDL-generated
    /// skeleton wrapping the same implementation).
    pub fn with_dynamic(mut self, dynamic: Arc<dyn DynObject>) -> Self {
        self.dynamic = Some(dynamic);
        self
    }

    /// Attaches port properties.
    pub fn with_properties(mut self, properties: TypeMap) -> Self {
        self.properties = Arc::new(properties);
        self
    }

    /// Attaches a circuit breaker. The framework does this to the
    /// *delivered* handle at connect time, so the breaker guards this one
    /// connection — the provider's original handle (and its appearances in
    /// other slots) keeps its own state.
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// The port's instance name (unique within its component).
    pub fn port_name(&self) -> &str {
        &self.port_name
    }

    /// The interned instance name (shareable without copying).
    pub fn port_name_arc(&self) -> &Arc<str> {
        &self.port_name
    }

    /// The port's SIDL interface type.
    pub fn port_type(&self) -> &str {
        &self.port_type
    }

    /// The interned SIDL interface type (shareable without copying).
    pub fn port_type_arc(&self) -> &Arc<str> {
        &self.port_type
    }

    /// Port properties.
    pub fn properties(&self) -> &TypeMap {
        &self.properties
    }

    /// Recovers the typed trait object — the direct-connect call path.
    /// `P` must be the exact `dyn Trait` (or concrete type) the provider
    /// registered. The returned `Arc` is a reference-count bump, not an
    /// allocation.
    pub fn typed<P: ?Sized + Send + Sync + 'static>(&self) -> Result<Arc<P>, CcaError> {
        self.object
            .downcast_ref::<Arc<P>>()
            .cloned()
            .ok_or_else(|| CcaError::WrongPortRust {
                port: self.port_name.to_string(),
                requested: std::any::type_name::<P>(),
            })
    }

    /// The dynamic facade, if the provider attached one.
    pub fn dynamic(&self) -> Option<&Arc<dyn DynObject>> {
        self.dynamic.as_ref()
    }

    /// This port's metrics block. Shared by every clone of the handle —
    /// whichever uses slot the handle lands in, calls observed through it
    /// accumulate here (the provider-side view of §6.1's listener lists).
    pub fn metrics(&self) -> &Arc<PortMetrics> {
        &self.metrics
    }

    /// This connection's circuit breaker, if policy attached one.
    pub fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// Whether a call through this handle may proceed right now: `true`
    /// when no breaker is attached or the breaker admits the call. One
    /// relaxed load when the breaker is closed. **At most one admission
    /// check per call attempt** — a half-open breaker hands out a single
    /// probe, and asking twice would claim it and then discard it.
    #[inline]
    pub fn admissible(&self) -> bool {
        match &self.breaker {
            None => true,
            Some(b) => b.admit(),
        }
    }

    /// Renames the handle (used by the framework when the provider's port
    /// name differs from the consumer's uses-slot name). When the name is
    /// unchanged this is a plain clone — no allocation.
    pub fn renamed(&self, port_name: impl Into<Arc<str>>) -> Self {
        let port_name = port_name.into();
        let mut h = self.clone();
        if *h.port_name != *port_name {
            h.port_name = port_name;
        }
        h
    }
}

impl std::fmt::Debug for PortHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortHandle")
            .field("port_name", &self.port_name)
            .field("port_type", &self.port_type)
            .field("dynamic", &self.dynamic.is_some())
            .finish()
    }
}

/// The registration record of a provides port (what `addProvidesPort`
/// stores) or of a uses port declaration.
#[derive(Debug, Clone)]
pub struct PortRecord {
    /// Instance name.
    pub name: String,
    /// SIDL interface type of the port.
    pub port_type: String,
    /// Registration properties.
    pub properties: TypeMap,
}

/// An empty, shared fan-out list — the zero-listener steady state costs no
/// allocation either.
fn empty_connections() -> Arc<[PortHandle]> {
    Arc::from(Vec::new())
}

/// A uses port: a declaration plus the current connection list.
///
/// §6.1: "Provides ports are generalized listeners in the sense that they
/// listen to Uses interfaces ... Each Uses port maintains a list of
/// listeners."
///
/// The connection list is stored as an immutable `Arc<[PortHandle]>`
/// snapshot: readers (`get_ports`, fan-out invocation) share the slice by
/// bumping one reference count; mutators build a fresh slice. Fan-out
/// invocation therefore performs **zero heap allocations per call**.
#[derive(Debug, Clone)]
pub struct UsesSlot {
    /// The declaration.
    pub record: PortRecord,
    connections: Arc<[PortHandle]>,
    /// Shared across snapshot clones of the slot (the `Arc` travels with
    /// every COW republication), so connection churn and call counts
    /// accumulate over the slot's whole lifetime, not one generation.
    metrics: Arc<PortMetrics>,
    /// The invocation policy for this uses port, if one was attached
    /// (retry/backoff, deadline, breaker configuration for new
    /// connections).
    policy: Option<Arc<CallPolicy>>,
}

impl UsesSlot {
    /// Creates an empty slot.
    pub fn new(record: PortRecord) -> Self {
        UsesSlot {
            record,
            connections: empty_connections(),
            metrics: PortMetrics::new(),
            policy: None,
        }
    }

    /// Attaches (or replaces) the slot's invocation policy. Affects
    /// connections made *afterwards*: each gets a fresh breaker when the
    /// policy configures one. Existing connections keep their breakers.
    pub fn set_policy(&mut self, policy: Arc<CallPolicy>) {
        self.policy = Some(policy);
    }

    /// The slot's invocation policy, if any.
    pub fn policy(&self) -> Option<&Arc<CallPolicy>> {
        self.policy.as_ref()
    }

    /// The shared fan-out list snapshot.
    pub fn connections(&self) -> &Arc<[PortHandle]> {
        &self.connections
    }

    /// This slot's metrics block (call counts, churn, fan-out width).
    pub fn metrics(&self) -> &Arc<PortMetrics> {
        &self.metrics
    }

    /// Appends a connection (copy-on-write: builds a new shared slice).
    ///
    /// Connection-shape metrics are recorded unconditionally: mutations
    /// are rare (they already rebuild the table snapshot) so they are not
    /// behind the per-call counter gate.
    pub fn push_connection(&mut self, handle: PortHandle) {
        // If the slot's policy wants per-provider breakers and the caller
        // (framework) didn't pre-attach an observer-wired one, give the
        // connection a plain breaker so quarantine works even for bare
        // `CcaServices` users with no framework in the loop.
        let handle = match (&self.policy, handle.breaker()) {
            (Some(policy), None) => match policy.new_breaker() {
                Some(b) => handle.with_breaker(Arc::new(b)),
                None => handle,
            },
            _ => handle,
        };
        let mut v: Vec<PortHandle> = self.connections.to_vec();
        v.push(handle);
        self.connections = Arc::from(v);
        self.metrics.record_connect(self.connections.len() as u64);
    }

    /// Removes the connection at `index` (copy-on-write), returning it.
    /// Returns `None` if the index is out of bounds.
    pub fn remove_connection(&mut self, index: usize) -> Option<PortHandle> {
        if index >= self.connections.len() {
            return None;
        }
        let mut v: Vec<PortHandle> = self.connections.to_vec();
        let removed = v.remove(index);
        self.connections = Arc::from(v);
        self.metrics
            .record_disconnect(1, self.connections.len() as u64);
        Some(removed)
    }

    /// Drops every connection.
    pub fn clear_connections(&mut self) {
        let dropped = self.connections.len();
        self.connections = empty_connections();
        if dropped > 0 {
            self.metrics.record_disconnect(dropped as u64, 0);
        }
    }

    /// The fan-out list with quarantined providers skipped.
    ///
    /// §6.1 makes "zero or more invocations" per uses-port call legal, so
    /// skipping an open-breaker connection is just a temporarily shorter
    /// listener list — callers cannot tell quarantine from disconnect.
    ///
    /// Fast path: when every connection is admissible (the common case —
    /// no breakers, or all closed, verified with one relaxed load each)
    /// the shared snapshot is returned as-is, zero allocation. Only a
    /// degraded slot pays for a filtered copy. Admission is checked
    /// exactly once per handle: a half-open breaker's single probe is
    /// *claimed* by the check, so the caller receiving the filtered list
    /// must actually attempt those providers.
    pub fn healthy_connections(&self) -> Arc<[PortHandle]> {
        let all_admissible = self.connections.iter().all(|h| h.breaker().is_none());
        if all_admissible {
            return Arc::clone(&self.connections);
        }
        // At least one breaker exists: single admission pass.
        let mut healthy: Vec<PortHandle> = Vec::with_capacity(self.connections.len());
        let mut skipped = false;
        for h in self.connections.iter() {
            if h.admissible() {
                healthy.push(h.clone());
            } else {
                skipped = true;
            }
        }
        if skipped {
            Arc::from(healthy)
        } else {
            Arc::clone(&self.connections)
        }
    }

    /// Number of connected providers.
    pub fn fan_out(&self) -> usize {
        self.connections.len()
    }

    /// True if at least one provider is connected.
    pub fn is_connected(&self) -> bool {
        !self.connections.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Greeter: Send + Sync {
        fn greet(&self) -> String;
    }

    struct English;
    impl Greeter for English {
        fn greet(&self) -> String {
            "hello".into()
        }
    }

    #[test]
    fn typed_round_trip_through_handle() {
        let provider: Arc<dyn Greeter> = Arc::new(English);
        let handle = PortHandle::new("greeter", "demo.Greeter", provider);
        let back: Arc<dyn Greeter> = handle.typed().unwrap();
        assert_eq!(back.greet(), "hello");
        assert_eq!(handle.port_type(), "demo.Greeter");
        assert_eq!(handle.port_name(), "greeter");
    }

    #[test]
    fn direct_connect_is_same_object() {
        let provider: Arc<dyn Greeter> = Arc::new(English);
        let handle = PortHandle::new("greeter", "demo.Greeter", Arc::clone(&provider));
        let back: Arc<dyn Greeter> = handle.typed().unwrap();
        // The §6.2 property: the consumer holds the provider's own object.
        assert!(Arc::ptr_eq(&provider, &back));
    }

    #[test]
    fn clone_and_same_name_rename_share_interned_strings() {
        let provider: Arc<dyn Greeter> = Arc::new(English);
        let handle = PortHandle::new("greeter", "demo.Greeter", provider);
        let copy = handle.clone();
        assert!(Arc::ptr_eq(handle.port_name_arc(), copy.port_name_arc()));
        assert!(Arc::ptr_eq(handle.port_type_arc(), copy.port_type_arc()));
        // Renaming to the identical name keeps the interned original.
        let same = handle.renamed("greeter");
        assert!(Arc::ptr_eq(handle.port_name_arc(), same.port_name_arc()));
    }

    #[test]
    fn wrong_rust_type_is_detected() {
        trait Other: Send + Sync {}
        let provider: Arc<dyn Greeter> = Arc::new(English);
        let handle = PortHandle::new("greeter", "demo.Greeter", provider);
        match handle.typed::<dyn Other>() {
            Err(CcaError::WrongPortRust { port, .. }) => assert_eq!(port, "greeter"),
            Ok(_) => panic!("downcast to the wrong trait must fail"),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn concrete_types_work_too() {
        let handle = PortHandle::new("n", "demo.Num", Arc::new(42i64));
        let v: Arc<i64> = handle.typed().unwrap();
        assert_eq!(*v, 42);
    }

    #[test]
    fn properties_and_rename() {
        let mut props = TypeMap::new();
        props.put_int("maxClients", 4);
        let handle = PortHandle::new("a", "t", Arc::new(0u8)).with_properties(props);
        assert_eq!(handle.properties().get_int("maxClients", 0), 4);
        let renamed = handle.renamed("b");
        assert_eq!(renamed.port_name(), "b");
        assert_eq!(handle.port_name(), "a");
        assert!(format!("{handle:?}").contains("\"a\""));
    }

    #[test]
    fn uses_slot_fan_out_counts() {
        let mut slot = UsesSlot::new(PortRecord {
            name: "solvers".into(),
            port_type: "esi.Solver".into(),
            properties: TypeMap::new(),
        });
        assert!(!slot.is_connected());
        assert_eq!(slot.fan_out(), 0);
        slot.push_connection(PortHandle::new("s1", "esi.Solver", Arc::new(1u8)));
        slot.push_connection(PortHandle::new("s2", "esi.Solver", Arc::new(2u8)));
        assert!(slot.is_connected());
        assert_eq!(slot.fan_out(), 2);
        // Copy-on-write: an earlier snapshot is unaffected by mutation.
        let snapshot = Arc::clone(slot.connections());
        assert!(slot.remove_connection(0).is_some());
        assert!(slot.remove_connection(5).is_none());
        assert_eq!(slot.fan_out(), 1);
        assert_eq!(snapshot.len(), 2);
        slot.clear_connections();
        assert!(!slot.is_connected());
    }

    #[test]
    fn healthy_connections_shares_the_snapshot_when_no_breakers() {
        let mut slot = UsesSlot::new(PortRecord {
            name: "solvers".into(),
            port_type: "esi.Solver".into(),
            properties: TypeMap::new(),
        });
        slot.push_connection(PortHandle::new("s1", "esi.Solver", Arc::new(1u8)));
        let healthy = slot.healthy_connections();
        assert!(
            Arc::ptr_eq(&healthy, slot.connections()),
            "no breakers: the shared snapshot is returned unfiltered"
        );
    }

    #[test]
    fn policy_attaches_breakers_and_quarantine_filters_fan_out() {
        use crate::resilience::{BreakerPolicy, BreakerState, CallPolicy, MockClock};

        let clock = MockClock::new();
        let policy =
            CallPolicy::with_clock(clock.clone()).with_breaker(BreakerPolicy::new(2, 1_000));
        let mut slot = UsesSlot::new(PortRecord {
            name: "solvers".into(),
            port_type: "esi.Solver".into(),
            properties: TypeMap::new(),
        });
        slot.set_policy(Arc::new(policy));
        slot.push_connection(PortHandle::new("s1", "esi.Solver", Arc::new(1u8)));
        slot.push_connection(PortHandle::new("s2", "esi.Solver", Arc::new(2u8)));
        let conns = Arc::clone(slot.connections());
        let b0 = conns[0].breaker().expect("policy attached a breaker");
        assert!(conns[1].breaker().is_some());

        // All closed: the full list, and the shared snapshot (breakers
        // attached but nothing skipped still avoids publishing a copy
        // when every provider admits).
        assert_eq!(slot.healthy_connections().len(), 2);

        // Trip s1's breaker: fan-out skips it.
        b0.record_failure();
        b0.record_failure();
        assert_eq!(b0.state(), BreakerState::Open);
        let healthy = slot.healthy_connections();
        assert_eq!(healthy.len(), 1);
        assert_eq!(healthy[0].port_name(), "s2");

        // After the cooldown the half-open probe rejoins the list once.
        clock.advance_ns(1_000);
        assert_eq!(slot.healthy_connections().len(), 2);
        assert_eq!(b0.state(), BreakerState::HalfOpen);
        // Probe outstanding: s1 is filtered again.
        assert_eq!(slot.healthy_connections().len(), 1);
        // Probe succeeds: fully recovered.
        b0.record_success();
        assert_eq!(slot.healthy_connections().len(), 2);
        assert_eq!(b0.state(), BreakerState::Closed);
    }
}
