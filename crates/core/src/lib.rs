#![warn(missing_docs)]
//! # cca-core — the Common Component Architecture specification
//!
//! This crate is the Rust rendering of the CCA standard the paper defines
//! (§4 and §6): the things a *component* sees. It deliberately contains no
//! framework implementation — `cca-framework` provides that — mirroring the
//! paper's separation between "parts of the CCA standards necessary for
//! component-level interoperability" (white boxes of Figure 2) and
//! "specific implementations of a component architecture" (gray boxes).
//!
//! * [`port`] — the Port model of §6.1: provides ports as generalized
//!   listeners, uses ports holding a listener list, type-compatible
//!   connection, and the direct-connect representation of §6.2 where a
//!   retrieved port *is* the provider's object and a call on it is a plain
//!   (virtual) function call.
//! * [`services`] — the `CCAServices` handle of Figure 3: components add
//!   provides ports, register uses ports, and `getPort` their connections;
//!   "all interaction between the component and its containing framework
//!   will occur through the component's CCAServices object". Port tables
//!   are published as immutable snapshots guarded by a generation counter,
//!   and [`CachedPort`] memoizes the typed downcast so steady-state port
//!   access costs one atomic load plus the virtual call (§6.2).
//! * [`component`] — the `Component` trait (`setServices`) plus the
//!   conventional `GoPort` used to drive an assembled application.
//! * [`event`] — connection/configuration events, the vocabulary of the
//!   CCA Configuration API ("notifying components that they have been
//!   added to a scenario ..., redirecting interactions between components,
//!   or notifying a builder of a component failure").
//! * [`resilience`] — fault-tolerant invocation: per-uses-port
//!   [`CallPolicy`] (bounded retry with decorrelated-jitter backoff, call
//!   deadlines) and per-provider [`CircuitBreaker`] quarantine, all
//!   mock-clock drivable so fault scenarios are deterministic.
//! * [`error`] — the error vocabulary shared by all CCA layers.

pub mod component;
pub mod error;
pub mod event;
pub mod port;
pub mod resilience;
pub mod services;

pub use component::{Component, GoPort};
pub use error::CcaError;
pub use event::{ConfigEvent, ConfigListener};
pub use port::{PortHandle, PortRecord, UsesSlot};
pub use resilience::{
    BackoffSchedule, BreakerObserver, BreakerPolicy, BreakerState, CallPolicy, CircuitBreaker,
    Clock, MockClock, RetryPolicy, SplitMix64, SystemClock, DEADLINE_EXCEPTION_TYPE,
};
pub use services::{CachedPort, CcaServices};
