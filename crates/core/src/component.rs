//! The Component contract and the conventional `GoPort`.
//!
//! "A component is an independent unit of software deployment. It satisfies
//! a set of behavior rules and implements standard component interfaces"
//! (§1). In the CCA those behavior rules reduce to one required interface:
//! `setServices`, through which the containing framework hands the
//! component its [`CcaServices`] handle so it can declare its ports.

use crate::error::CcaError;
use crate::services::CcaServices;
use std::sync::Arc;

/// The one interface every CCA component implements.
///
/// `set_services` is called exactly once, when the framework instantiates
/// the component; the component must register all its provides and uses
/// ports before returning. `release` is called when the component is
/// removed from a scenario.
pub trait Component: Send + Sync {
    /// The component's SIDL class name (used for repository lookups and
    /// diagnostics).
    fn component_type(&self) -> &str;

    /// Called by the framework on instantiation; the component declares its
    /// ports on the supplied services handle.
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError>;

    /// Called by the framework when the component is removed. Default:
    /// nothing to clean up.
    fn release(&self) {}
}

/// The conventional driver port: a builder connects the scenario's entry
/// component's `GoPort` and calls [`GoPort::go`] to run the application
/// (Ccaffeine's convention, which our reference framework follows).
pub trait GoPort: Send + Sync {
    /// Runs the component's main action, returning when done.
    fn go(&self) -> Result<(), CcaError>;
}

/// The fully qualified SIDL name of the `GoPort` interface.
pub const GO_PORT_TYPE: &str = "cca.ports.GoPort";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::PortHandle;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    struct Hello {
        ran: AtomicUsize,
        released: AtomicBool,
    }

    impl Component for Hello {
        fn component_type(&self) -> &str {
            "demo.Hello"
        }

        fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
            // Provide nothing, use nothing — the minimal legal component.
            let _ = services;
            Ok(())
        }

        fn release(&self) {
            self.released.store(true, Ordering::SeqCst);
        }
    }

    impl GoPort for Hello {
        fn go(&self) -> Result<(), CcaError> {
            self.ran.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    #[test]
    fn minimal_component_lifecycle() {
        let c = Arc::new(Hello {
            ran: AtomicUsize::new(0),
            released: AtomicBool::new(false),
        });
        let services = CcaServices::new("hello0");
        c.set_services(Arc::clone(&services)).unwrap();
        assert_eq!(c.component_type(), "demo.Hello");
        c.release();
        assert!(c.released.load(Ordering::SeqCst));
    }

    #[test]
    fn go_port_through_services() {
        let c = Arc::new(Hello {
            ran: AtomicUsize::new(0),
            released: AtomicBool::new(false),
        });
        let services = CcaServices::new("hello0");
        let go: Arc<dyn GoPort> = c.clone();
        services
            .add_provides_port(PortHandle::new("go", GO_PORT_TYPE, go))
            .unwrap();
        let h = services.get_provides_port("go").unwrap();
        let p: Arc<dyn GoPort> = h.typed().unwrap();
        p.go().unwrap();
        p.go().unwrap();
        assert_eq!(c.ran.load(Ordering::SeqCst), 2);
    }
}
