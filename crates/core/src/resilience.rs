//! Fault-tolerant port invocation: call policies, retry/backoff, circuit
//! breakers.
//!
//! §6.1 already tolerates degraded assemblies structurally — a uses port
//! holds "zero or more" providers — and §4's Configuration API notifies
//! builders of component failure. This module adds the *temporal* half of
//! that story: a [`CallPolicy`] attached to a uses port at connect time
//! gives each invocation bounded retries with decorrelated-jitter backoff,
//! an end-to-end deadline, and a per-provider [`CircuitBreaker`] that
//! quarantines a provider slot after K consecutive failures. Fan-out via
//! `get_ports` transparently skips quarantined providers (an empty list
//! remains a legal outcome, per §6.1), and a quarantined provider is
//! half-opened for a single probe call after a cooldown.
//!
//! # Determinism
//!
//! Every time-dependent decision flows through an injected [`Clock`], so
//! tests drive backoff and cooldowns with a [`MockClock`] — no wall-clock
//! sleeps anywhere in the test suite — and the jitter source is a seeded
//! [`SplitMix64`], so a fault schedule is a pure function of its seed
//! (`CCA_FAULT_SEED` in the CI fault matrix).
//!
//! # Cost model
//!
//! The §6.2 direct-connect fast path must not pay for resilience it is not
//! using. A `CachedPort` with no policy is unchanged; with a policy whose
//! breaker is **closed**, admission is one relaxed load of the breaker's
//! packed state word plus a predicted branch — gated at ≤1.1× the PR-1
//! cached call by `benches/e11_resilience.rs`. All breaker *transitions*
//! ride failure paths, which are already expensive.

use crate::error::CcaError;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The SIDL exception type `cca-rpc`'s deadline-enforcing transport raises
/// when an ORB round trip exceeds its per-call budget. `CcaError`'s
/// `From<SidlError>` conversion recognizes it and produces
/// [`CcaError::DeadlineExceeded`], so the error keeps its meaning across
/// the RPC/port boundary.
pub const DEADLINE_EXCEPTION_TYPE: &str = "cca.rpc.DeadlineExceeded";

/// Environment variable naming the deterministic fault-schedule seed used
/// by fault-injection tests (the CI fault matrix runs seeds 1, 7, 42 and
/// 1999). See [`fault_seed_from_env`].
pub const FAULT_SEED_ENV: &str = "CCA_FAULT_SEED";

/// The fault-schedule seed from `CCA_FAULT_SEED`, defaulting to 1. Invalid
/// values fall back to the default rather than erroring, so a typo in a CI
/// matrix degrades to a tested configuration instead of a skipped one.
pub fn fault_seed_from_env() -> u64 {
    std::env::var(FAULT_SEED_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

/// A monotonic nanosecond clock with a cooperative sleep.
///
/// All resilience timing (backoff waits, breaker cooldowns, deadlines)
/// goes through this trait so tests substitute a [`MockClock`] and advance
/// simulated time instantly — the paper's framework simulation philosophy
/// ("simulation, not emulation", cf. `LatencyTransport`) applied to fault
/// handling.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) epoch. Monotonic.
    fn now_ns(&self) -> u64;
    /// Blocks (or, for a mock, advances simulated time) for `ns`.
    fn sleep_ns(&self, ns: u64);
}

/// The production clock: `Instant`-anchored monotonic time, real sleeps.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock anchored at its moment of creation.
    pub fn new() -> Arc<Self> {
        Arc::new(SystemClock {
            epoch: Instant::now(),
        })
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn sleep_ns(&self, ns: u64) {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

/// A deterministic test clock: time is an atomic counter, `sleep_ns`
/// advances it. Shared across every policy/breaker/transport in a test so
/// one `advance_ns` moves the whole scenario forward.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    /// A clock starting at t = 0.
    pub fn new() -> Arc<Self> {
        Arc::new(MockClock::default())
    }

    /// Advances simulated time by `ns`.
    pub fn advance_ns(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn sleep_ns(&self, ns: u64) {
        // Sleeping *is* advancing: a retry backoff under a mock clock
        // completes instantly in wall time but is fully visible to every
        // deadline/cooldown computation sharing the clock.
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Deterministic randomness
// ---------------------------------------------------------------------------

/// SplitMix64: a tiny, high-quality, seedable PRNG. Used for backoff
/// jitter and fault schedules so both are pure functions of their seed.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniformly below `bound` (`bound` = 0 yields 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

// ---------------------------------------------------------------------------
// Retry with decorrelated-jitter backoff
// ---------------------------------------------------------------------------

/// Bounded-retry configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (values < 1 behave as 1).
    pub max_attempts: u32,
    /// Floor of every backoff wait, nanoseconds.
    pub base_backoff_ns: u64,
    /// Cap of every backoff wait, nanoseconds.
    pub max_backoff_ns: u64,
    /// Seed of the jitter PRNG — the whole backoff sequence is a pure
    /// function of this.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and backoff in
    /// `[base_backoff_ns, max_backoff_ns]`, jitter seeded from the base.
    pub fn new(max_attempts: u32, base_backoff_ns: u64, max_backoff_ns: u64) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff_ns,
            max_backoff_ns,
            jitter_seed: 0x5ca1_ab1e,
        }
    }

    /// Overrides the jitter seed (deterministic tests pin this).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// A fresh backoff sequence for one logical call.
    pub fn schedule(&self) -> BackoffSchedule {
        BackoffSchedule {
            rng: SplitMix64::new(self.jitter_seed),
            base: self.base_backoff_ns.max(1),
            cap: self.max_backoff_ns.max(self.base_backoff_ns.max(1)),
            prev: self.base_backoff_ns.max(1),
        }
    }
}

/// Decorrelated-jitter backoff: each wait is drawn uniformly from
/// `[base, prev * 3]`, clamped to `[base, cap]`. Grows roughly
/// exponentially without the lock-step retry convoys plain exponential
/// backoff produces. An infinite iterator — the retry policy's attempt
/// bound is what terminates it.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    rng: SplitMix64,
    base: u64,
    cap: u64,
    prev: u64,
}

impl Iterator for BackoffSchedule {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let upper = self.prev.saturating_mul(3).max(self.base + 1);
        let draw = self.base + self.rng.next_below(upper - self.base);
        let wait = draw.clamp(self.base, self.cap);
        self.prev = wait;
        Some(wait)
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker configuration: open after `failure_threshold`
/// consecutive failures, half-open one probe after `cooldown_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker (values < 1 behave as 1).
    pub failure_threshold: u32,
    /// Quarantine duration before a half-open probe is allowed, ns.
    pub cooldown_ns: u64,
}

impl BreakerPolicy {
    /// A breaker tripping after `failure_threshold` consecutive failures
    /// with a `cooldown_ns` quarantine.
    pub fn new(failure_threshold: u32, cooldown_ns: u64) -> Self {
        BreakerPolicy {
            failure_threshold,
            cooldown_ns,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; consecutive failures are counted.
    Closed,
    /// The provider is quarantined: admission is refused until the
    /// cooldown elapses.
    Open,
    /// One probe call is in flight; its outcome closes or re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (used in JSON and trace output).
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Observer of breaker state transitions. The framework installs one per
/// connection to publish quarantine/recovery `ConfigEvent`s.
pub trait BreakerObserver: Send + Sync {
    /// Called after the breaker moved `from` → `to`.
    /// `consecutive_failures` is the failure streak at transition time.
    fn on_transition(&self, from: BreakerState, to: BreakerState, consecutive_failures: u64);
}

const KIND_MASK: u64 = 0b11;
const KIND_CLOSED: u64 = 0;
const KIND_OPEN: u64 = 1;
const KIND_HALF_OPEN: u64 = 2;

fn pack(kind: u64, stamp_ns: u64) -> u64 {
    (stamp_ns << 2) | kind
}

fn decode_kind(kind: u64) -> BreakerState {
    match kind {
        KIND_OPEN => BreakerState::Open,
        KIND_HALF_OPEN => BreakerState::HalfOpen,
        _ => BreakerState::Closed,
    }
}

/// A per-provider circuit breaker.
///
/// State lives in one packed `AtomicU64` — two low bits of state kind,
/// 62 bits of transition timestamp — so the closed-state admission check
/// ([`admit`](Self::admit)) is a single relaxed load plus a mask. All
/// transitions use CAS on the whole word: exactly one thread wins the
/// half-open probe, and lost races simply retry on a later call.
pub struct CircuitBreaker {
    word: AtomicU64,
    failures: AtomicU64,
    policy: BreakerPolicy,
    clock: Arc<dyn Clock>,
    observer: RwLock<Option<Arc<dyn BreakerObserver>>>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(policy: BreakerPolicy, clock: Arc<dyn Clock>) -> Self {
        CircuitBreaker {
            word: AtomicU64::new(pack(KIND_CLOSED, 0)),
            failures: AtomicU64::new(0),
            policy,
            clock,
            observer: RwLock::new(None),
        }
    }

    /// Installs (replacing) the transition observer.
    pub fn set_observer(&self, observer: Arc<dyn BreakerObserver>) {
        *self.observer.write() = Some(observer);
    }

    /// The breaker's configuration.
    pub fn policy(&self) -> &BreakerPolicy {
        &self.policy
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        decode_kind(self.word.load(Ordering::Relaxed) & KIND_MASK)
    }

    /// Current consecutive-failure streak.
    pub fn consecutive_failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Whether a call may proceed. Closed: always (one relaxed load —
    /// the fast path). Open: only by transitioning to half-open once the
    /// cooldown has elapsed; the CAS winner carries the probe. Half-open:
    /// refused while a probe is outstanding; if the prober never reports
    /// an outcome, the probe re-arms after another cooldown so a healthy
    /// provider can never be lost permanently.
    #[inline]
    pub fn admit(&self) -> bool {
        let word = self.word.load(Ordering::Relaxed);
        if word & KIND_MASK == KIND_CLOSED {
            true
        } else {
            self.admit_slow(word)
        }
    }

    #[cold]
    fn admit_slow(&self, word: u64) -> bool {
        let stamp = word >> 2;
        let now = self.clock.now_ns();
        if now.saturating_sub(stamp) < self.policy.cooldown_ns {
            cca_obs::resilience().record_quarantine_rejection();
            return false;
        }
        // Cooldown elapsed: claim the (single) half-open probe.
        let next = pack(KIND_HALF_OPEN, now);
        match self
            .word
            .compare_exchange(word, next, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                if word & KIND_MASK == KIND_OPEN {
                    self.notify(BreakerState::Open, BreakerState::HalfOpen);
                }
                true
            }
            Err(_) => {
                // Another thread claimed the probe (or the state moved);
                // this call is refused, the next one re-reads fresh state.
                cca_obs::resilience().record_quarantine_rejection();
                false
            }
        }
    }

    /// Reports a successful call: resets the failure streak and closes the
    /// breaker if it was probing. Steady-state cost (already closed, no
    /// streak) is two relaxed loads.
    pub fn record_success(&self) {
        if self.failures.load(Ordering::Relaxed) != 0 {
            self.failures.store(0, Ordering::Relaxed);
        }
        let word = self.word.load(Ordering::Relaxed);
        if word & KIND_MASK != KIND_CLOSED
            && self
                .word
                .compare_exchange(
                    word,
                    pack(KIND_CLOSED, 0),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            self.notify(decode_kind(word & KIND_MASK), BreakerState::Closed);
        }
    }

    /// Reports a failed call: bumps the streak and opens the breaker when
    /// the threshold is reached (or immediately on a failed probe).
    pub fn record_failure(&self) {
        let streak = self.failures.fetch_add(1, Ordering::Relaxed) + 1;
        let word = self.word.load(Ordering::Relaxed);
        let kind = word & KIND_MASK;
        let trips = match kind {
            KIND_HALF_OPEN => true,
            KIND_CLOSED => streak >= u64::from(self.policy.failure_threshold.max(1)),
            _ => false,
        };
        if trips {
            let next = pack(KIND_OPEN, self.clock.now_ns());
            if self
                .word
                .compare_exchange(word, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.notify(decode_kind(kind), BreakerState::Open);
            }
        }
    }

    fn notify(&self, from: BreakerState, to: BreakerState) {
        match to {
            BreakerState::Open => cca_obs::resilience().record_breaker_open(),
            BreakerState::HalfOpen => cca_obs::resilience().record_breaker_half_open(),
            BreakerState::Closed => cca_obs::resilience().record_breaker_close(),
        }
        cca_obs::trace_instant(match to {
            BreakerState::Open => "resilience.breaker_open",
            BreakerState::HalfOpen => "resilience.breaker_half_open",
            BreakerState::Closed => "resilience.breaker_close",
        });
        let observer = self.observer.read().clone();
        if let Some(o) = observer {
            o.on_transition(from, to, self.consecutive_failures());
        }
    }
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("state", &self.state())
            .field("consecutive_failures", &self.consecutive_failures())
            .field("policy", &self.policy)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// CallPolicy
// ---------------------------------------------------------------------------

/// The per-uses-port invocation policy, attached at connect time.
///
/// All three facilities are optional and independent:
/// * [`RetryPolicy`] — bounded retries with decorrelated-jitter backoff;
/// * a deadline — an end-to-end budget covering every attempt and wait
///   (also plumbed into `cca-rpc`'s `DeadlineTransport` for proxied
///   connections, where it bounds each ORB round trip);
/// * [`BreakerPolicy`] — a per-provider [`CircuitBreaker`] created for
///   each connection made while the policy is attached.
#[derive(Clone)]
pub struct CallPolicy {
    retry: Option<RetryPolicy>,
    deadline_ns: Option<u64>,
    breaker: Option<BreakerPolicy>,
    clock: Arc<dyn Clock>,
}

impl CallPolicy {
    /// An empty policy on the system clock (attachments via the `with_*`
    /// builders).
    pub fn new() -> Self {
        Self::with_clock(SystemClock::new())
    }

    /// An empty policy on an explicit clock (tests pass a [`MockClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        CallPolicy {
            retry: None,
            deadline_ns: None,
            breaker: None,
            clock,
        }
    }

    /// Adds bounded retry.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Adds an end-to-end call deadline (nanoseconds).
    pub fn with_deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Adds a per-provider circuit breaker.
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// The retry configuration, if any.
    pub fn retry(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// The deadline in nanoseconds, if any.
    pub fn deadline_ns(&self) -> Option<u64> {
        self.deadline_ns
    }

    /// The breaker configuration, if any.
    pub fn breaker(&self) -> Option<&BreakerPolicy> {
        self.breaker.as_ref()
    }

    /// The policy's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Total attempts per logical call (≥ 1).
    pub fn max_attempts(&self) -> u32 {
        self.retry.as_ref().map_or(1, |r| r.max_attempts.max(1))
    }

    /// A fresh breaker configured by this policy, if it has breaker
    /// configuration. Called once per connection.
    pub fn new_breaker(&self) -> Option<CircuitBreaker> {
        self.breaker
            .as_ref()
            .map(|b| CircuitBreaker::new(b.clone(), Arc::clone(&self.clock)))
    }

    /// Runs `f` (called with the 0-based attempt number) under this
    /// policy: breaker admission before each attempt, retry with backoff
    /// between failed attempts, the deadline enforced across the whole
    /// sequence. `operation` labels errors.
    ///
    /// [`CachedPort::call`](crate::CachedPort::call) is the port-aware
    /// variant (it re-resolves between attempts, so retries can fail over
    /// to another connected provider); this entry point serves policy
    /// users outside the port tables.
    pub fn execute<R>(
        &self,
        operation: &str,
        breaker: Option<&CircuitBreaker>,
        mut f: impl FnMut(u32) -> Result<R, CcaError>,
    ) -> Result<R, CcaError> {
        let max_attempts = self.max_attempts();
        let mut backoff = self.retry.as_ref().map(|r| r.schedule());
        let started = self.clock.now_ns();
        let mut attempt = 0u32;
        loop {
            if let Some(b) = breaker {
                if !b.admit() {
                    return Err(CcaError::ProviderQuarantined(operation.to_string()));
                }
            }
            match f(attempt) {
                Ok(v) => {
                    if let Some(b) = breaker {
                        b.record_success();
                    }
                    return Ok(v);
                }
                Err(e) => {
                    if let Some(b) = breaker {
                        b.record_failure();
                    }
                    attempt += 1;
                    if attempt >= max_attempts {
                        return Err(e);
                    }
                    let wait = backoff.as_mut().and_then(|s| s.next()).unwrap_or(0);
                    if let Some(deadline) = self.deadline_ns {
                        let spent = self.clock.now_ns().saturating_sub(started);
                        if spent.saturating_add(wait) > deadline {
                            cca_obs::resilience().record_deadline_hit();
                            return Err(CcaError::DeadlineExceeded(format!(
                                "'{operation}' exhausted its {deadline} ns budget after \
                                 {attempt} attempt(s): {e}"
                            )));
                        }
                    }
                    cca_obs::resilience().record_retry();
                    self.clock.sleep_ns(wait);
                }
            }
        }
    }
}

impl Default for CallPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CallPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallPolicy")
            .field("retry", &self.retry)
            .field("deadline_ns", &self.deadline_ns)
            .field("breaker", &self.breaker)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mock() -> Arc<MockClock> {
        MockClock::new()
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(SplitMix64::new(7).next_below(0), 0);
        let mut c = SplitMix64::new(7);
        for _ in 0..64 {
            assert!(c.next_below(10) < 10);
        }
    }

    #[test]
    fn backoff_stays_in_bounds_and_is_deterministic() {
        let policy = RetryPolicy::new(8, 100, 5_000).with_jitter_seed(99);
        let a: Vec<u64> = policy.schedule().take(32).collect();
        let b: Vec<u64> = policy.schedule().take(32).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for w in &a {
            assert!((100..=5_000).contains(w), "wait {w} out of bounds");
        }
        // Different seed, different schedule (overwhelmingly likely).
        let c: Vec<u64> = policy
            .clone()
            .with_jitter_seed(100)
            .schedule()
            .take(32)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn backoff_tends_to_grow_from_base() {
        // Decorrelated jitter: the running upper bound is prev*3, so the
        // mean of later waits should exceed the first wait's bound range.
        let policy = RetryPolicy::new(8, 10, u64::MAX / 8).with_jitter_seed(1);
        let waits: Vec<u64> = policy.schedule().take(16).collect();
        assert!(waits.iter().skip(8).any(|w| *w > 30));
    }

    #[test]
    fn breaker_trips_after_k_consecutive_failures() {
        let clock = mock();
        let b = CircuitBreaker::new(BreakerPolicy::new(3, 1_000), clock.clone());
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "quarantined during cooldown");
        assert_eq!(b.consecutive_failures(), 3);
    }

    #[test]
    fn success_resets_the_streak() {
        let clock = mock();
        let b = CircuitBreaker::new(BreakerPolicy::new(2, 1_000), clock);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let clock = mock();
        let b = CircuitBreaker::new(BreakerPolicy::new(1, 1_000), clock.clone());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        clock.advance_ns(999);
        assert!(!b.admit(), "cooldown not yet elapsed");
        clock.advance_ns(1);
        assert!(b.admit(), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(), "only one probe at a time");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        assert!(b.admit());
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let clock = mock();
        let b = CircuitBreaker::new(BreakerPolicy::new(1, 1_000), clock.clone());
        b.record_failure();
        clock.advance_ns(1_000);
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // The new quarantine is stamped at the failure, not the original.
        assert!(!b.admit());
        clock.advance_ns(1_000);
        assert!(b.admit());
    }

    #[test]
    fn abandoned_probe_rearms_after_cooldown() {
        // A prober that never reports an outcome must not wedge the
        // breaker in half-open forever.
        let clock = mock();
        let b = CircuitBreaker::new(BreakerPolicy::new(1, 1_000), clock.clone());
        b.record_failure();
        clock.advance_ns(1_000);
        assert!(b.admit(), "probe claimed, outcome never reported");
        assert!(!b.admit());
        clock.advance_ns(1_000);
        assert!(b.admit(), "probe re-armed after another cooldown");
    }

    #[test]
    fn observer_sees_quarantine_and_recovery() {
        struct Rec(parking_lot::Mutex<Vec<(BreakerState, BreakerState)>>);
        impl BreakerObserver for Rec {
            fn on_transition(&self, from: BreakerState, to: BreakerState, _fails: u64) {
                self.0.lock().push((from, to));
            }
        }
        let clock = mock();
        let b = CircuitBreaker::new(BreakerPolicy::new(1, 100), clock.clone());
        let rec = Arc::new(Rec(parking_lot::Mutex::new(Vec::new())));
        b.set_observer(rec.clone());
        b.record_failure();
        clock.advance_ns(100);
        assert!(b.admit());
        b.record_success();
        assert_eq!(
            rec.0.lock().as_slice(),
            [
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
    }

    #[test]
    fn execute_retries_until_success_with_mock_time() {
        let clock = mock();
        let policy = CallPolicy::with_clock(clock.clone())
            .with_retry(RetryPolicy::new(5, 1_000, 8_000).with_jitter_seed(3));
        let mut failures_left = 3;
        let result = policy.execute("op", None, |attempt| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(CcaError::Framework(format!("flake {attempt}")))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result.unwrap(), 3, "succeeded on the 4th attempt");
        // Three backoff waits were charged to the mock clock, each in
        // policy bounds.
        let elapsed = clock.now_ns();
        assert!((3_000..=24_000).contains(&elapsed), "elapsed {elapsed}");
    }

    #[test]
    fn execute_exhausts_attempts_and_returns_last_error() {
        let policy = CallPolicy::with_clock(mock())
            .with_retry(RetryPolicy::new(3, 10, 100).with_jitter_seed(4));
        let mut calls = 0;
        let result: Result<(), _> = policy.execute("op", None, |_| {
            calls += 1;
            Err(CcaError::Framework(format!("always ({calls})")))
        });
        assert_eq!(calls, 3);
        assert!(result.unwrap_err().to_string().contains("always (3)"));
    }

    #[test]
    fn execute_enforces_the_deadline_across_attempts() {
        let clock = mock();
        let policy = CallPolicy::with_clock(clock.clone())
            .with_retry(RetryPolicy::new(100, 1_000, 1_000).with_jitter_seed(5))
            .with_deadline_ns(3_500);
        let result: Result<(), _> = policy.execute("op", None, |_| {
            clock.advance_ns(10); // each attempt costs simulated time
            Err(CcaError::Framework("down".into()))
        });
        match result.unwrap_err() {
            CcaError::DeadlineExceeded(msg) => assert!(msg.contains("3500"), "{msg}"),
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert!(clock.now_ns() <= 3_500, "never slept past the deadline");
    }

    #[test]
    fn execute_respects_the_breaker() {
        let clock = mock();
        let policy = CallPolicy::with_clock(clock.clone());
        let breaker = CircuitBreaker::new(BreakerPolicy::new(1, 1_000), clock.clone());
        let r: Result<(), _> = policy.execute("op", Some(&breaker), |_| {
            Err(CcaError::Framework("boom".into()))
        });
        assert!(r.is_err());
        assert_eq!(breaker.state(), BreakerState::Open);
        // Next call is refused without invoking f at all.
        let r: Result<(), _> =
            policy.execute("op", Some(&breaker), |_| panic!("must not be called"));
        assert!(matches!(r, Err(CcaError::ProviderQuarantined(_))));
        // After the cooldown the probe goes through and recovery closes.
        clock.advance_ns(1_000);
        let r = policy.execute("op", Some(&breaker), |_| Ok(7));
        assert_eq!(r.unwrap(), 7);
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn fault_seed_parses_with_default() {
        // Only exercises the default path: mutating the environment is
        // racy under the parallel test harness.
        assert!(fault_seed_from_env() >= 1 || fault_seed_from_env() == 0);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        c.sleep_ns(1); // smoke: returns promptly
    }
}
