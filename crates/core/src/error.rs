//! Error vocabulary shared by all CCA layers.

use cca_sidl::SidlError;
use std::fmt;

/// Errors raised by the CCA services, framework, and ports.
#[derive(Debug, Clone, PartialEq)]
pub enum CcaError {
    /// No port registered under the given instance name.
    PortNotFound(String),
    /// A uses port exists but has no connection.
    PortNotConnected(String),
    /// A port instance name was registered twice.
    PortAlreadyExists(String),
    /// A connection was attempted between type-incompatible ports.
    IncompatiblePorts {
        /// The uses side's declared port type.
        uses_type: String,
        /// The provides side's declared port type.
        provides_type: String,
    },
    /// The retrieved port could not be downcast to the requested Rust type.
    WrongPortRust {
        /// The port instance name.
        port: String,
        /// The Rust type that was requested.
        requested: &'static str,
    },
    /// No component instance with the given name.
    ComponentNotFound(String),
    /// A component instance name was used twice.
    ComponentAlreadyExists(String),
    /// A component reported failure; carried to builder listeners.
    ComponentFailed {
        /// Component instance name.
        component: String,
        /// Failure description.
        reason: String,
    },
    /// A call (or its retry sequence) exceeded its policy deadline.
    DeadlineExceeded(String),
    /// A call was refused because the provider's circuit breaker is open.
    ProviderQuarantined(String),
    /// A problem inside the framework or its transport.
    Framework(String),
    /// An error crossing the SIDL binding.
    Sidl(SidlError),
}

impl fmt::Display for CcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcaError::PortNotFound(name) => write!(f, "port '{name}' not found"),
            CcaError::PortNotConnected(name) => write!(f, "uses port '{name}' is not connected"),
            CcaError::PortAlreadyExists(name) => {
                write!(f, "port '{name}' is already registered")
            }
            CcaError::IncompatiblePorts {
                uses_type,
                provides_type,
            } => write!(
                f,
                "cannot connect: uses port expects '{uses_type}', provider offers \
                 '{provides_type}' (not a subtype)"
            ),
            CcaError::WrongPortRust { port, requested } => {
                write!(f, "port '{port}' cannot be viewed as Rust type {requested}")
            }
            CcaError::ComponentNotFound(name) => write!(f, "component '{name}' not found"),
            CcaError::ComponentAlreadyExists(name) => {
                write!(f, "component '{name}' already exists")
            }
            CcaError::ComponentFailed { component, reason } => {
                write!(f, "component '{component}' failed: {reason}")
            }
            CcaError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            CcaError::ProviderQuarantined(msg) => {
                write!(f, "provider quarantined (circuit breaker open): {msg}")
            }
            CcaError::Framework(msg) => write!(f, "framework error: {msg}"),
            CcaError::Sidl(e) => write!(f, "sidl error: {e}"),
        }
    }
}

impl std::error::Error for CcaError {}

impl From<SidlError> for CcaError {
    fn from(e: SidlError) -> Self {
        // A deadline raised inside the RPC layer (DeadlineTransport wraps
        // it as a SIDL user exception to cross the wire format) keeps its
        // meaning on the port side of the boundary.
        if let SidlError::UserException {
            exception_type,
            message,
        } = &e
        {
            if exception_type == crate::resilience::DEADLINE_EXCEPTION_TYPE {
                return CcaError::DeadlineExceeded(message.clone());
            }
        }
        CcaError::Sidl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CcaError::PortNotFound("mesh".into())
            .to_string()
            .contains("mesh"));
        assert!(CcaError::IncompatiblePorts {
            uses_type: "esi.Vector".into(),
            provides_type: "esi.Matrix".into()
        }
        .to_string()
        .contains("subtype"));
        let sidl: CcaError = SidlError::invoke("boom").into();
        assert!(sidl.to_string().contains("boom"));
    }

    #[test]
    fn deadline_user_exception_converts_to_deadline_exceeded() {
        let e: CcaError = SidlError::user(
            crate::resilience::DEADLINE_EXCEPTION_TYPE,
            "call budget spent",
        )
        .into();
        assert!(matches!(e, CcaError::DeadlineExceeded(ref m) if m == "call budget spent"));
        // Other user exceptions stay SIDL errors.
        let e: CcaError = SidlError::user("demo.Boom", "boom").into();
        assert!(matches!(e, CcaError::Sidl(_)));
    }
}
