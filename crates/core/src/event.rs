//! Configuration events — the vocabulary of the CCA Configuration API.
//!
//! §4: "The CCA Configuration API supports interaction between components
//! and various builders for functions such as notifying components that
//! they have been added to a scenario and deleted from it, redirecting
//! interactions between components, or notifying a builder of a component
//! failure." The reference framework (`cca-framework`) emits these events;
//! builders and monitoring tools subscribe with a [`ConfigListener`].

use cca_data::TypeMap;
use std::sync::Arc;

/// One configuration event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigEvent {
    /// A component instance joined the scenario.
    ComponentAdded {
        /// Instance name.
        instance: String,
        /// SIDL class name.
        component_type: String,
    },
    /// A component instance was removed from the scenario.
    ComponentRemoved {
        /// Instance name.
        instance: String,
    },
    /// A connection was established.
    Connected {
        /// Using component instance.
        user: String,
        /// Uses port name.
        uses_port: String,
        /// Providing component instance.
        provider: String,
        /// Provides port name.
        provides_port: String,
        /// The port's SIDL interface type.
        port_type: String,
    },
    /// A connection was broken.
    Disconnected {
        /// Using component instance.
        user: String,
        /// Uses port name.
        uses_port: String,
        /// Providing component instance.
        provider: String,
    },
    /// A connection was redirected from one provider to another (the
    /// builder's "redirecting interactions between components").
    Redirected {
        /// Using component instance.
        user: String,
        /// Uses port name.
        uses_port: String,
        /// Old providing instance.
        old_provider: String,
        /// New providing instance.
        new_provider: String,
    },
    /// A component reported failure.
    ComponentFailed {
        /// Instance name.
        instance: String,
        /// Failure description.
        reason: String,
    },
    /// A provider's circuit breaker opened: the connection is quarantined
    /// and fan-out via `get_ports` skips it until recovery.
    ProviderQuarantined {
        /// Using component instance.
        user: String,
        /// Uses port name.
        uses_port: String,
        /// Providing component instance.
        provider: String,
        /// Consecutive-failure streak that tripped the breaker.
        consecutive_failures: u64,
    },
    /// A quarantined provider's half-open probe succeeded: the breaker
    /// closed and the connection rejoins fan-out.
    ProviderRecovered {
        /// Using component instance.
        user: String,
        /// Uses port name.
        uses_port: String,
        /// Providing component instance.
        provider: String,
    },
    /// A fleet rank's child process died (crash, `kill -9`, or connection
    /// death): the rank is quarantined and the group rolled forward to a
    /// new generation.
    RankDied {
        /// The rank that died.
        rank: u64,
        /// Incarnation of the process that died (1 = first launch).
        incarnation: u64,
        /// The generation the group moved to because of this death.
        generation: u64,
    },
    /// A restarted fleet rank rejoined the group: it replayed its rank id
    /// at the new generation and the collectives resumed.
    RankRejoined {
        /// The rank that rejoined.
        rank: u64,
        /// Incarnation of the replacement process.
        incarnation: u64,
        /// The generation it rejoined at.
        generation: u64,
    },
}

impl ConfigEvent {
    /// The topic this event publishes under on a topic-based event service
    /// (`cca.config.<kind>` — subscribe to `cca.config.*` for all of them).
    pub fn topic(&self) -> &'static str {
        match self {
            ConfigEvent::ComponentAdded { .. } => "cca.config.component_added",
            ConfigEvent::ComponentRemoved { .. } => "cca.config.component_removed",
            ConfigEvent::Connected { .. } => "cca.config.connected",
            ConfigEvent::Disconnected { .. } => "cca.config.disconnected",
            ConfigEvent::Redirected { .. } => "cca.config.redirected",
            ConfigEvent::ComponentFailed { .. } => "cca.config.component_failed",
            ConfigEvent::ProviderQuarantined { .. } => "cca.config.provider_quarantined",
            ConfigEvent::ProviderRecovered { .. } => "cca.config.provider_recovered",
            ConfigEvent::RankDied { .. } => "cca.config.rank_died",
            ConfigEvent::RankRejoined { .. } => "cca.config.rank_rejoined",
        }
    }

    /// The event's fields as a [`TypeMap`] payload — the schemaless form a
    /// generic event subscriber (or remote monitor) consumes.
    pub fn to_typemap(&self) -> TypeMap {
        let mut m = TypeMap::new();
        match self {
            ConfigEvent::ComponentAdded {
                instance,
                component_type,
            } => {
                m.put_string("instance", instance.clone());
                m.put_string("component_type", component_type.clone());
            }
            ConfigEvent::ComponentRemoved { instance } => {
                m.put_string("instance", instance.clone());
            }
            ConfigEvent::Connected {
                user,
                uses_port,
                provider,
                provides_port,
                port_type,
            } => {
                m.put_string("user", user.clone());
                m.put_string("uses_port", uses_port.clone());
                m.put_string("provider", provider.clone());
                m.put_string("provides_port", provides_port.clone());
                m.put_string("port_type", port_type.clone());
            }
            ConfigEvent::Disconnected {
                user,
                uses_port,
                provider,
            } => {
                m.put_string("user", user.clone());
                m.put_string("uses_port", uses_port.clone());
                m.put_string("provider", provider.clone());
            }
            ConfigEvent::Redirected {
                user,
                uses_port,
                old_provider,
                new_provider,
            } => {
                m.put_string("user", user.clone());
                m.put_string("uses_port", uses_port.clone());
                m.put_string("old_provider", old_provider.clone());
                m.put_string("new_provider", new_provider.clone());
            }
            ConfigEvent::ComponentFailed { instance, reason } => {
                m.put_string("instance", instance.clone());
                m.put_string("reason", reason.clone());
            }
            ConfigEvent::ProviderQuarantined {
                user,
                uses_port,
                provider,
                consecutive_failures,
            } => {
                m.put_string("user", user.clone());
                m.put_string("uses_port", uses_port.clone());
                m.put_string("provider", provider.clone());
                m.put_string("consecutive_failures", consecutive_failures.to_string());
            }
            ConfigEvent::ProviderRecovered {
                user,
                uses_port,
                provider,
            } => {
                m.put_string("user", user.clone());
                m.put_string("uses_port", uses_port.clone());
                m.put_string("provider", provider.clone());
            }
            ConfigEvent::RankDied {
                rank,
                incarnation,
                generation,
            }
            | ConfigEvent::RankRejoined {
                rank,
                incarnation,
                generation,
            } => {
                m.put_string("rank", rank.to_string());
                m.put_string("incarnation", incarnation.to_string());
                m.put_string("generation", generation.to_string());
            }
        }
        m
    }
}

/// A subscriber to configuration events.
pub trait ConfigListener: Send + Sync {
    /// Delivers one event. Must not block for long; the framework calls
    /// listeners synchronously on the mutating thread.
    fn on_event(&self, event: &ConfigEvent);
}

/// A boxed listener registration.
pub type SharedListener = Arc<dyn ConfigListener>;

/// A simple recording listener, useful for tests and for builders that
/// replay scenario history.
#[derive(Default)]
pub struct RecordingListener {
    events: parking_lot::Mutex<Vec<ConfigEvent>>,
}

impl RecordingListener {
    /// Creates an empty recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A snapshot of all events seen so far.
    pub fn events(&self) -> Vec<ConfigEvent> {
        self.events.lock().clone()
    }

    /// Number of events seen.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events were seen.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl ConfigListener for RecordingListener {
    fn on_event(&self, event: &ConfigEvent) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_listener_captures_in_order() {
        let rec = RecordingListener::new();
        assert!(rec.is_empty());
        rec.on_event(&ConfigEvent::ComponentAdded {
            instance: "mesh0".into(),
            component_type: "chad.Mesh".into(),
        });
        rec.on_event(&ConfigEvent::ComponentFailed {
            instance: "mesh0".into(),
            reason: "allocation".into(),
        });
        assert_eq!(rec.len(), 2);
        let events = rec.events();
        assert!(matches!(events[0], ConfigEvent::ComponentAdded { .. }));
        assert!(matches!(events[1], ConfigEvent::ComponentFailed { .. }));
    }

    #[test]
    fn topics_and_payloads_cover_every_variant() {
        let events = [
            ConfigEvent::ComponentAdded {
                instance: "m0".into(),
                component_type: "chad.Mesh".into(),
            },
            ConfigEvent::ComponentRemoved {
                instance: "m0".into(),
            },
            ConfigEvent::Connected {
                user: "u".into(),
                uses_port: "in".into(),
                provider: "p".into(),
                provides_port: "out".into(),
                port_type: "t".into(),
            },
            ConfigEvent::Disconnected {
                user: "u".into(),
                uses_port: "in".into(),
                provider: "p".into(),
            },
            ConfigEvent::Redirected {
                user: "u".into(),
                uses_port: "in".into(),
                old_provider: "p0".into(),
                new_provider: "p1".into(),
            },
            ConfigEvent::ComponentFailed {
                instance: "m0".into(),
                reason: "oom".into(),
            },
            ConfigEvent::ProviderQuarantined {
                user: "u".into(),
                uses_port: "in".into(),
                provider: "p".into(),
                consecutive_failures: 3,
            },
            ConfigEvent::ProviderRecovered {
                user: "u".into(),
                uses_port: "in".into(),
                provider: "p".into(),
            },
            ConfigEvent::RankDied {
                rank: 2,
                incarnation: 1,
                generation: 1,
            },
            ConfigEvent::RankRejoined {
                rank: 2,
                incarnation: 2,
                generation: 1,
            },
        ];
        for e in &events {
            assert!(e.topic().starts_with("cca.config."), "{}", e.topic());
            assert!(!e.to_typemap().is_empty());
        }
        // A wildcard subscriber can reconstruct the connection graph edge.
        let m = events[2].to_typemap();
        assert_eq!(m.get_string("user", String::new()), "u");
        assert_eq!(m.get_string("provides_port", String::new()), "out");
    }

    #[test]
    fn events_are_comparable() {
        let a = ConfigEvent::Disconnected {
            user: "u".into(),
            uses_port: "p".into(),
            provider: "x".into(),
        };
        assert_eq!(a.clone(), a);
    }
}
