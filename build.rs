//! Build script of the umbrella crate: runs the cca-sidl proxy generator
//! over `sidl/esi.sidl` (Figure 2's "SIDL definitions -> proxy generator ->
//! component stubs" pipeline) and writes the generated Rust bindings into
//! OUT_DIR, where `src/generated.rs` includes them. The crate compiling at
//! all is therefore an end-to-end test of the generator.

use std::env;
use std::fs;
use std::path::PathBuf;

fn main() {
    println!("cargo:rerun-if-changed=sidl/esi.sidl");
    let source = fs::read_to_string("sidl/esi.sidl").expect("sidl/esi.sidl readable");
    let model = cca_sidl::compile(&source).unwrap_or_else(|e| panic!("esi.sidl: {e}"));
    let opts = cca_sidl::codegen_rust::RustCodegenOptions {
        sidl_crate: "::cca_sidl".into(),
        data_crate: "::cca_data".into(),
    };
    let rust = cca_sidl::codegen_rust::generate_rust(&model, &opts);
    let header = cca_sidl::codegen_c::generate_c_header(&model, "CCA_ESI_H");
    let out_dir = PathBuf::from(env::var("OUT_DIR").expect("OUT_DIR set"));
    fs::write(out_dir.join("esi_generated.rs"), rust).expect("write generated rust");
    fs::write(out_dir.join("esi_generated.h"), header).expect("write generated header");
}
