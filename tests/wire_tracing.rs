//! Distributed tracing over the wire, end to end: a Figure-2 pipeline
//! whose providers live behind a real `tcp+mux://` socket produces one
//! causally-linked trace — every server dispatch span parents to the
//! client call span that carried it, walked link by link across both
//! "processes" and merged into a single Perfetto timeline. Then the fault
//! side: a seeded mid-call drop leaves a flight-recorder black box on
//! disk with the quarantine incident and the ring events that led up to
//! it, and the scrape plane answers over the same wire it observes.
//!
//! Client and server frameworks share this test process (the trace
//! registry is process-global), but the wire is real: the server workers
//! only ever learn the client's trace context from the frame extension
//! bytes, so a parented dispatch span proves propagation, not shared
//! memory. Events are split into "processes" by where they were recorded
//! — dispatch spans on the server's worker threads, everything else on
//! the client side.

use cca::core::resilience::{fault_seed_from_env, BreakerPolicy, CallPolicy, MockClock};
use cca::core::{CcaError, CcaServices, Component, ConfigEvent, PortHandle};
use cca::framework::{Framework, RemoteTransportKind, OBSERVABILITY_EXPORT_KEY};
use cca::obs::TraceEvent;
use cca::repository::Repository;
use cca::rpc::{MuxServer, MuxTransport, ObjRef};
use cca::sidl::{DynObject, DynValue, SidlError};
use cca_data::TypeMap;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tracing, the flight recorder, and the event rings are process-global;
/// the tests in this binary take turns.
static SERIAL: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// Fixtures: the Figure-2 cast, dynamic-facade flavour.
// ---------------------------------------------------------------------

struct RampSource {
    state: Mutex<f64>,
}
impl DynObject for RampSource {
    fn sidl_type(&self) -> &str {
        "pipes.Source"
    }
    fn invoke(&self, method: &str, _args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "next" => {
                let mut s = self.state.lock();
                *s += 1.0;
                Ok(DynValue::Double(*s))
            }
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}
impl Component for RampSource {
    fn component_type(&self) -> &str {
        "pipes.RampSource"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let dynamic: Arc<dyn DynObject> = Arc::new(RampSource {
            state: Mutex::new(0.0),
        });
        services.add_provides_port(
            PortHandle::new("out", "pipes.Source", Arc::clone(&dynamic)).with_dynamic(dynamic),
        )
    }
}

struct SummingSink {
    total: Mutex<f64>,
}
impl DynObject for SummingSink {
    fn sidl_type(&self) -> &str {
        "pipes.Sink"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "push" => {
                let mut t = self.total.lock();
                *t += args[0].as_double()?;
                Ok(DynValue::Double(*t))
            }
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}
impl Component for SummingSink {
    fn component_type(&self) -> &str {
        "pipes.SummingSink"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let dynamic: Arc<dyn DynObject> = Arc::new(SummingSink {
            total: Mutex::new(0.0),
        });
        services.add_provides_port(
            PortHandle::new("in", "pipes.Sink", Arc::clone(&dynamic)).with_dynamic(dynamic),
        )
    }
}

/// The pump's shell: two uses slots, driven from the test body.
struct PipelineUser;
impl Component for PipelineUser {
    fn component_type(&self) -> &str {
        "pipes.PipelineUser"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("from", "pipes.Source", TypeMap::new())?;
        services.register_uses_port("to", "pipes.Sink", TypeMap::new())
    }
}

struct Doubler {
    calls: AtomicU64,
}
impl DynObject for Doubler {
    fn sidl_type(&self) -> &str {
        "test.Doubler"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        match method {
            "double" => Ok(DynValue::Long(2 * args[0].as_long()?)),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}
struct DoublerProvider;
impl Component for DoublerProvider {
    fn component_type(&self) -> &str {
        "test.DoublerProvider"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let dynamic: Arc<dyn DynObject> = Arc::new(Doubler {
            calls: AtomicU64::new(0),
        });
        services.add_provides_port(
            PortHandle::new("out", "test.Doubler", Arc::clone(&dynamic)).with_dynamic(dynamic),
        )
    }
}
struct RemoteConsumer;
impl Component for RemoteConsumer {
    fn component_type(&self) -> &str {
        "test.RemoteConsumer"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("in", "test.Doubler", TypeMap::new())
    }
}

/// Server-side framework hosting one exported Doubler behind a
/// `MuxServer`. Returns (framework, server, addr, remote key).
fn serve_doubler_mux() -> (Arc<Framework>, Arc<MuxServer>, String, String) {
    let fw = Framework::new(Repository::new());
    fw.add_instance("provider0", Arc::new(DoublerProvider))
        .unwrap();
    let key = fw.export_port("provider0", "out").unwrap();
    let server = fw.serve_tcp_mux("127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    (fw, server, addr, key)
}

// ---------------------------------------------------------------------
// Causal propagation: Figure 2 over tcp+mux://, one merged timeline.
// ---------------------------------------------------------------------

/// Runs the Figure-2 pipeline with source and sink behind a `MuxServer`,
/// then walks the recorded parent links: every one of the 20 server
/// dispatch spans must parent — through the wire context — back to the
/// client `pump.step` span that caused it, and the per-"process" JSONL
/// files must merge into a single Perfetto document with cross-process
/// flow arrows.
#[test]
fn figure2_dispatch_spans_parent_to_client_calls_across_the_wire() {
    let _serial = SERIAL.lock();

    let server_fw = Framework::new(Repository::new());
    server_fw
        .add_instance(
            "source0",
            Arc::new(RampSource {
                state: Mutex::new(0.0),
            }),
        )
        .unwrap();
    server_fw
        .add_instance(
            "sink0",
            Arc::new(SummingSink {
                total: Mutex::new(0.0),
            }),
        )
        .unwrap();
    let source_key = server_fw.export_port("source0", "out").unwrap();
    let sink_key = server_fw.export_port("sink0", "in").unwrap();
    let server = server_fw.serve_tcp_mux("127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let client_fw = Framework::new(Repository::new());
    client_fw
        .add_instance("pump0", Arc::new(PipelineUser))
        .unwrap();
    client_fw
        .connect_remote_with(
            "pump0",
            "from",
            &addr,
            &source_key,
            RemoteTransportKind::Mux,
        )
        .unwrap();
    client_fw
        .connect_remote_with("pump0", "to", &addr, &sink_key, RemoteTransportKind::Mux)
        .unwrap();
    let services = client_fw.services("pump0").unwrap();
    let source = services
        .get_port("from")
        .unwrap()
        .dynamic()
        .unwrap()
        .clone();
    let sink = services.get_port("to").unwrap().dynamic().unwrap().clone();

    // Trace only the pump loop: one `pump.step` root per iteration.
    cca::obs::drain();
    cca::obs::set_tracing(true);
    let mut total = 0.0;
    for _ in 0..10 {
        let _step = cca::obs::span("pump.step");
        let v = source.invoke("next", vec![]).unwrap().as_double().unwrap();
        total = sink
            .invoke("push", vec![DynValue::Double(v)])
            .unwrap()
            .as_double()
            .unwrap();
    }
    cca::obs::set_tracing(false);
    // Shut down first: workers joined, dispatch spans all committed.
    server.shutdown();
    assert_eq!(total, 55.0);
    assert_eq!(server.dispatched(), 20);

    let events = cca::obs::drain();
    let by_span: HashMap<u64, &TraceEvent> = events
        .iter()
        .filter(|e| e.span_id != 0)
        .map(|e| (e.span_id, e))
        .collect();
    let submit_ids: Vec<u64> = events
        .iter()
        .filter(|e| e.name() == "rpc.mux.submit")
        .map(|e| e.span_id)
        .collect();
    let dispatches: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.name() == "rpc.dispatch")
        .collect();
    assert_eq!(dispatches.len(), 20, "one dispatch span per round trip");

    for dispatch in &dispatches {
        assert_ne!(dispatch.trace_id, 0, "dispatch joined a trace");
        assert!(
            submit_ids.contains(&dispatch.parent_id),
            "dispatch must parent to a client submit span, got parent {:016x}",
            dispatch.parent_id
        );
        // Walk the parent links all the way up: the chain must stay in
        // one trace and end at the pump.step root on the client side.
        let mut cursor = **dispatch;
        let mut chain = vec![cursor.name().to_string()];
        while cursor.parent_id != 0 {
            cursor = **by_span
                .get(&cursor.parent_id)
                .expect("every parent link lands on a recorded span");
            assert_eq!(cursor.trace_id, dispatch.trace_id, "one trace end to end");
            chain.push(cursor.name().to_string());
        }
        assert_eq!(
            chain.last().map(String::as_str),
            Some("pump.step"),
            "chain {chain:?} must root at the client step"
        );
    }

    // The two sides merge into one Perfetto document: dispatch spans were
    // recorded on the server's worker threads, everything else on the
    // client — exactly what two processes would each have drained.
    let (server_events, client_events): (Vec<TraceEvent>, Vec<TraceEvent>) = events
        .iter()
        .copied()
        .partition(|e| e.name() == "rpc.dispatch");
    let client_jsonl = cca::obs::to_jsonl(&client_events);
    let server_jsonl = cca::obs::to_jsonl(&server_events);
    let merged =
        cca::obs::merge_chrome_trace(&[("client", &client_jsonl), ("server", &server_jsonl)]);
    assert!(merged.contains("\"name\":\"process_name\""));
    assert!(merged.contains("\"name\":\"client\""));
    assert!(merged.contains("\"name\":\"server\""));
    assert!(
        merged.contains("\"ph\":\"s\"") && merged.contains("\"ph\":\"f\""),
        "cross-process parent links must become flow arrows: {merged}"
    );

    // Leave the merged timeline behind for the CI fault-matrix job (same
    // forensic convention as the fault_trace_*.jsonl artifacts).
    let dir = std::path::Path::new("target");
    if dir.is_dir() {
        let _ = std::fs::write(dir.join("wire_trace_merged.json"), merged);
    }
}

// ---------------------------------------------------------------------
// The black box: a seeded mid-call drop leaves flight evidence on disk.
// ---------------------------------------------------------------------

/// With the flight recorder armed, a seeded mid-call drop that trips the
/// breaker must leave JSONL incident files holding the quarantine event
/// (from the framework's breaker observer) and the connection failure
/// (from the mux teardown, with transport metrics) — each carrying the
/// ring events that preceded the fault.
#[test]
fn mid_call_drop_leaves_a_flight_recording_with_the_quarantine() {
    let _serial = SERIAL.lock();
    let dir: PathBuf = std::env::temp_dir().join(format!("cca_wire_flight_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    cca::obs::flight::configure(Some(&dir), 16, 64);

    let (_server_fw, server, addr, key) = serve_doubler_mux();
    let seed = fault_seed_from_env();

    let client_fw = Framework::new(Repository::new());
    let rec = cca::core::event::RecordingListener::new();
    client_fw.add_listener(rec.clone());
    client_fw
        .add_instance("u0", Arc::new(RemoteConsumer))
        .unwrap();
    let services = client_fw.services("u0").unwrap();
    let clock = MockClock::new();
    let policy = CallPolicy::with_clock(clock.clone()).with_breaker(BreakerPolicy::new(2, 10_000));
    services.set_call_policy("in", Arc::new(policy)).unwrap();
    client_fw
        .connect_remote_with("u0", "in", &addr, &key, RemoteTransportKind::Mux)
        .unwrap();

    cca::obs::drain();
    cca::obs::set_tracing(true);
    let mut port = services.cached_port::<dyn DynObject>("in");
    fn call(p: &(dyn DynObject + 'static)) -> Result<DynValue, CcaError> {
        p.invoke("double", vec![DynValue::Long(21)])
            .map_err(CcaError::from)
    }

    // A healthy call first, so the ring holds the story leading up to
    // the fault, then a hostile server until the breaker opens.
    assert!(matches!(port.call(call).unwrap(), DynValue::Long(42)));
    server.set_fault_plan(seed, 1000);
    for _ in 0..2 {
        assert!(port.call(call).is_err());
    }
    cca::obs::set_tracing(false);
    cca::obs::drain();
    assert!(rec
        .events()
        .iter()
        .any(|e| matches!(e, ConfigEvent::ProviderQuarantined { .. })));

    // Disarm before shutdown so the teardown of this test's own sockets
    // cannot add incidents after we inventory the directory.
    cca::obs::flight::configure(None, 16, 64);
    server.shutdown();

    let mut quarantine_files = 0;
    let mut connection_files = 0;
    for entry in std::fs::read_dir(&dir).expect("flight dir exists") {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        let header = text.lines().next().unwrap_or("");
        assert!(
            header.contains("\"schema\":\"cca-flight/1\""),
            "every incident starts with the flight header: {header}"
        );
        if header.contains("\"kind\":\"ProviderQuarantined\"") {
            quarantine_files += 1;
            assert!(
                text.lines().count() > 1,
                "the quarantine incident must carry the preceding ring events"
            );
            assert!(
                text.contains("\"name\":\"rpc.mux"),
                "ring events must include the call path that led to the fault: {text}"
            );
        }
        if header.contains("\"kind\":\"ConnectionFailure\"") {
            connection_files += 1;
            assert!(header.contains("tcp+mux://"), "{header}");
            assert!(
                header.contains("\"metrics\":{"),
                "mux teardown attaches its transport metrics: {header}"
            );
        }
    }
    assert!(quarantine_files >= 1, "quarantine incident recorded");
    assert!(connection_files >= 1, "connection failure recorded");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// The scrape plane, over the same wire it observes.
// ---------------------------------------------------------------------

/// A remote collector dials the exported `ObservabilityPort` through a
/// plain `MuxTransport` + `ObjRef` — no framework on the client side at
/// all — scrapes a snapshot and the live trace ring, and flips tracing
/// off across the network.
#[test]
fn observability_port_scrapes_over_mux() {
    let _serial = SERIAL.lock();

    let server_fw = Framework::new(Repository::new());
    server_fw
        .add_instance("provider0", Arc::new(DoublerProvider))
        .unwrap();
    server_fw.install_observability().unwrap();
    let server = server_fw.serve_tcp_mux("127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    cca::obs::drain();
    cca::obs::set_tracing(true);
    cca::obs::trace_instant("scrape-window");

    let transport = Arc::new(MuxTransport::new(addr));
    let objref = ObjRef::new(
        OBSERVABILITY_EXPORT_KEY,
        transport as Arc<dyn cca::rpc::Transport>,
    );

    let snap = objref.invoke("snapshotJson", vec![]).unwrap();
    let snap = snap.as_str().unwrap();
    assert!(snap.contains("\"tracing\":true"), "{snap}");
    assert!(snap.contains("\"provider0\""), "{snap}");
    assert!(snap.contains("\"flight\":{\"enabled\":"), "{snap}");
    assert!(snap.contains("\"resilience\":{"), "{snap}");

    let trace = objref.invoke("traceJsonl", vec![]).unwrap();
    assert!(
        trace.as_str().unwrap().contains("\"scrape-window\""),
        "the scrape sees the live ring"
    );
    // Non-consuming: a second scrape still sees the same event.
    let trace = objref.invoke("traceJsonl", vec![]).unwrap();
    assert!(trace.as_str().unwrap().contains("\"scrape-window\""));

    // Flip the tracer from across the network.
    let r = objref
        .invoke("setTracing", vec![DynValue::Bool(false)])
        .unwrap();
    assert!(matches!(r, DynValue::Void));
    assert!(!cca::obs::tracing_enabled());

    cca::obs::drain();
    server.shutdown();
}
