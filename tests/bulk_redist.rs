//! Hostile-network battery for the bulk data plane (experiment E15's
//! resilience half): M×N redistribution streamed as raw slabs over real
//! loopback mux TCP, under the same seeded fault matrix
//! (`CCA_FAULT_SEED`) as the control-plane suites.
//!
//! Contracts pinned here:
//!
//! * a healthy stream lands bit-identically to the in-process
//!   `CompiledPlan::apply`, with sender memory bounded by one chunk;
//! * seeded mid-stream connection drops surface as typed errors, and a
//!   retry resumes from the acked watermark — the sender never re-sends
//!   a chunk that was already acknowledged;
//! * composed with a circuit breaker, repeated drops quarantine the
//!   destination and a half-open probe (simulated time, no sleeps)
//!   recovers and finishes the stream;
//! * a garbage slab (or a frame of unknown kind) kills exactly the
//!   connection that sent it — concurrent healthy streams are untouched;
//! * every scenario is a pure function of the seed: two runs with the
//!   same seed produce identical attempt/chunk/failure counts.

use cca::core::resilience::{
    fault_seed_from_env, BreakerPolicy, BreakerState, CircuitBreaker, Clock, MockClock,
};
use cca::data::{CompiledPlan, DistArrayDesc, Distribution, RedistPlan};
use cca::framework::{BulkLandingZone, BulkRedistSender};
use cca::rpc::frame::DEFAULT_MAX_PAYLOAD;
use cca::rpc::transport::Dispatcher;
use cca::rpc::{
    encode_frame, BulkChannel, BulkSink, FrameKind, MuxServer, MuxServerConfig, MuxTransport, Orb,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const GENERATION: u64 = 11;
const CHUNK_BYTES: usize = 256;
const ELEMENTS: usize = 1200;

fn compiled_4_to_3() -> Arc<CompiledPlan> {
    let src = DistArrayDesc::new(&[ELEMENTS], Distribution::block_1d(4, 1).unwrap()).unwrap();
    let dst = DistArrayDesc::new(&[ELEMENTS], Distribution::block_1d(3, 1).unwrap()).unwrap();
    Arc::new(RedistPlan::build(&src, &dst).unwrap().compile().unwrap())
}

fn source_buffers(compiled: &CompiledPlan) -> Vec<Vec<f64>> {
    (0..compiled.src_ranks())
        .map(|r| {
            (0..compiled.src_count(r))
                .map(|i| (r * 10_000 + i) as f64)
                .collect()
        })
        .collect()
}

/// Every chunk of every transfer, counted once — the floor for any
/// correct stream, and (because resume is watermark-exact) also the
/// ceiling when drops happen before dispatch.
fn unique_chunks(compiled: &CompiledPlan) -> u64 {
    let layout = compiled.wire_layout(8, CHUNK_BYTES);
    (0..layout.transfer_count())
        .map(|t| layout.chunk_count(t) as u64)
        .sum()
}

struct Rig {
    server: Arc<MuxServer>,
    zone: Arc<BulkLandingZone<f64>>,
    channel: Arc<BulkChannel>,
}

fn rig(compiled: &Arc<CompiledPlan>) -> Rig {
    let zone = BulkLandingZone::<f64>::new(Arc::clone(compiled), GENERATION, CHUNK_BYTES);
    let orb = Orb::new();
    let server = MuxServer::bind_with(
        "127.0.0.1:0",
        orb as Arc<dyn Dispatcher>,
        MuxServerConfig::default(),
    )
    .unwrap();
    server.set_bulk_sink(Arc::clone(&zone) as Arc<dyn BulkSink>);
    let transport = Arc::new(MuxTransport::new(server.local_addr().to_string()));
    let channel = BulkChannel::new(transport);
    Rig {
        server,
        zone,
        channel,
    }
}

#[test]
fn healthy_stream_matches_in_process_apply_with_bounded_memory() {
    let compiled = compiled_4_to_3();
    let r = rig(&compiled);
    let src = source_buffers(&compiled);

    let mut peak = 0usize;
    for (rank, data) in src.iter().enumerate() {
        let mut sender =
            BulkRedistSender::<f64>::new(Arc::clone(&compiled), GENERATION, CHUNK_BYTES, rank);
        sender.send(r.channel.as_ref(), data).unwrap();
        assert!(sender.is_complete());
        peak = peak.max(sender.peak_buffer_bytes());
    }
    assert!(r.zone.is_complete());

    // Peak resident payload memory is one chunk plus the 32-byte slab
    // header — never a function of the array size.
    assert!(
        peak <= CHUNK_BYTES + cca::rpc::BULK_SLAB_HEADER_LEN,
        "sender held {peak} bytes, chunk bound is {}",
        CHUNK_BYTES + cca::rpc::BULK_SLAB_HEADER_LEN
    );

    let expected = compiled.apply(&src).unwrap();
    assert_eq!(r.zone.snapshot_buffers(), expected);
    assert_eq!(r.zone.metrics().chunks_landed(), unique_chunks(&compiled));
    r.server.shutdown();
}

#[test]
fn pipelined_stream_matches_apply_with_window_bounded_memory() {
    let compiled = compiled_4_to_3();
    let r = rig(&compiled);
    let src = source_buffers(&compiled);
    const WINDOW: usize = 4;

    let mut peak = 0usize;
    let mut chunks_sent = 0u64;
    for (rank, data) in src.iter().enumerate() {
        let mut sender =
            BulkRedistSender::<f64>::new(Arc::clone(&compiled), GENERATION, CHUNK_BYTES, rank);
        sender
            .send_pipelined(r.channel.as_ref(), data, WINDOW)
            .unwrap();
        assert!(sender.is_complete());
        peak = peak.max(sender.peak_buffer_bytes());
        chunks_sent += sender.metrics().chunks_sent();
    }
    assert!(r.zone.is_complete());

    // Peak resident payload memory is the window, not the array: at most
    // WINDOW slabs in flight at once.
    assert!(
        peak <= WINDOW * (CHUNK_BYTES + cca::rpc::BULK_SLAB_HEADER_LEN),
        "pipelined sender held {peak} bytes, window bound is {}",
        WINDOW * (CHUNK_BYTES + cca::rpc::BULK_SLAB_HEADER_LEN)
    );
    // A healthy pipelined stream still sends every chunk exactly once.
    assert_eq!(chunks_sent, unique_chunks(&compiled));
    assert_eq!(r.zone.snapshot_buffers(), compiled.apply(&src).unwrap());
    r.server.shutdown();
}

#[test]
fn pipelined_stream_survives_mid_stream_drops_by_resuming() {
    let seed = fault_seed_from_env();
    let compiled = compiled_4_to_3();
    let r = rig(&compiled);
    let src = source_buffers(&compiled);
    r.server.set_fault_plan(seed, 300);

    let (mut attempts, mut failures, mut resumed) = (0u64, 0u64, 0u64);
    for (rank, data) in src.iter().enumerate() {
        let mut sender =
            BulkRedistSender::<f64>::new(Arc::clone(&compiled), GENERATION, CHUNK_BYTES, rank);
        while !sender.is_complete() {
            attempts += 1;
            assert!(attempts < 500, "pipelined stream must converge");
            if let Err(e) = sender.send_pipelined(r.channel.as_ref(), data, 4) {
                failures += 1;
                assert!(!e.to_string().is_empty());
            }
        }
        resumed += sender.metrics().resumed_chunks();
    }
    assert!(failures > 0, "300\u{2030} drops must produce failures");
    assert!(resumed > 0, "failed pipelined streams must resume");
    // A drop can abandon in-flight acks (one ack's watermark may cover
    // several chunks, and replays of landed chunks are idempotent), so
    // the sender-side exactly-once count doesn't hold here — what must
    // hold is that every unique chunk scattered at least once and the
    // data is bit-correct.
    assert!(r.zone.metrics().chunks_landed() >= unique_chunks(&compiled));
    assert_eq!(r.zone.snapshot_buffers(), compiled.apply(&src).unwrap());
    r.server.shutdown();
}

/// One full hostile pass: stream all four source ranks through seeded
/// mid-stream connection drops, retrying (bounded) until complete.
/// Returns `(attempts, failures, chunks_sent, resumed_chunks)`.
fn run_hostile_scenario(seed: u64, drop_permille: u64) -> (u64, u64, u64, u64) {
    let compiled = compiled_4_to_3();
    let r = rig(&compiled);
    let src = source_buffers(&compiled);
    r.server.set_fault_plan(seed, drop_permille);

    let (mut attempts, mut failures, mut chunks_sent, mut resumed) = (0u64, 0u64, 0u64, 0u64);
    for (rank, data) in src.iter().enumerate() {
        let mut sender =
            BulkRedistSender::<f64>::new(Arc::clone(&compiled), GENERATION, CHUNK_BYTES, rank);
        while !sender.is_complete() {
            attempts += 1;
            assert!(
                attempts < 500,
                "stream must converge under {drop_permille}\u{2030} drops"
            );
            if let Err(e) = sender.send(r.channel.as_ref(), data) {
                failures += 1;
                // Always a typed SidlError, never a hang or a panic; the
                // breaker test below feeds these to a CircuitBreaker.
                let text = e.to_string();
                assert!(!text.is_empty());
            }
        }
        chunks_sent += sender.metrics().chunks_sent();
        resumed += sender.metrics().resumed_chunks();
    }

    let expected = compiled.apply(&src).unwrap();
    assert_eq!(
        r.zone.snapshot_buffers(),
        expected,
        "every element lands exactly once despite {failures} drops"
    );
    r.server.shutdown();
    (attempts, failures, chunks_sent, resumed)
}

#[test]
fn mid_stream_drops_resume_from_the_watermark_without_resending() {
    let seed = fault_seed_from_env();
    let compiled = compiled_4_to_3();
    let (attempts, failures, chunks_sent, resumed) = run_hostile_scenario(seed, 300);

    assert!(failures > 0, "30% drops must produce at least one failure");
    assert!(attempts > compiled.src_ranks() as u64);
    assert!(resumed > 0, "failed streams must resume, not restart");
    // The watermark makes resume exact: drops happen before dispatch, so
    // a failed chunk was never landed and every chunk is sent-and-acked
    // exactly once across all attempts.
    assert_eq!(
        chunks_sent,
        unique_chunks(&compiled),
        "resume must never re-send an acked chunk"
    );
}

#[test]
fn fault_scenarios_are_deterministic_per_seed() {
    let seed = fault_seed_from_env();
    let first = run_hostile_scenario(seed, 300);
    let second = run_hostile_scenario(seed, 300);
    assert_eq!(
        first, second,
        "the hostile stream must be a pure function of CCA_FAULT_SEED={seed}"
    );
}

#[test]
fn total_drop_trips_the_breaker_and_half_open_probe_finishes_the_stream() {
    let seed = fault_seed_from_env();
    let compiled = compiled_4_to_3();
    let r = rig(&compiled);
    let src = source_buffers(&compiled);

    // Hostile phase: every slab is dropped after decode, so every send
    // attempt is a typed failure and nothing lands.
    r.server.set_fault_plan(seed, 1000);
    let clock = MockClock::new();
    let breaker = CircuitBreaker::new(
        BreakerPolicy::new(2, 10_000),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    let mut sender =
        BulkRedistSender::<f64>::new(Arc::clone(&compiled), GENERATION, CHUNK_BYTES, 0);

    let mut denied = 0u64;
    while breaker.state() != BreakerState::Open {
        assert!(breaker.admit());
        let err = sender.send(r.channel.as_ref(), &src[0]).unwrap_err();
        assert!(!err.to_string().is_empty());
        breaker.record_failure();
        denied += 1;
        assert!(denied < 10, "threshold 2 must open the breaker quickly");
    }
    assert!(
        !breaker.admit(),
        "open breaker fails fast without touching the network"
    );
    assert_eq!(sender.metrics().chunks_sent(), 0, "nothing was acked");

    // Heal the network, pass the cooldown in simulated time: the next
    // admit is the half-open probe, and the stream finishes from the
    // watermark (zero here — nothing was ever acked).
    r.server.set_fault_plan(seed, 0);
    clock.advance_ns(20_000);
    assert!(
        breaker.admit(),
        "cooldown elapsed: half-open probe admitted"
    );
    sender.send(r.channel.as_ref(), &src[0]).unwrap();
    breaker.record_success();
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert!(sender.is_complete());

    // Rank 0's transfers are fully landed and correct.
    let expected = compiled.apply(&src).unwrap();
    r.zone.with_buffers(|bufs| {
        for t in compiled.sends_from(0) {
            for &d in t.dst_offsets.iter() {
                assert_eq!(bufs[t.dst_rank][d], expected[t.dst_rank][d]);
            }
        }
    });
    r.server.shutdown();
}

#[test]
fn garbage_slabs_and_unknown_kinds_kill_only_their_own_connection() {
    let compiled = compiled_4_to_3();
    let r = rig(&compiled);
    let src = source_buffers(&compiled);
    let addr = r.server.local_addr().to_string();

    // A hostile peer sends a truncated slab as a Bulk frame: the sink
    // rejects it (typed), and the server hangs up on that peer only.
    let mut hostile = TcpStream::connect(&addr).unwrap();
    let framed = encode_frame(FrameKind::Bulk, 1, &[0xee; 8], DEFAULT_MAX_PAYLOAD).unwrap();
    hostile.write_all(&framed).unwrap();
    let mut sink = Vec::new();
    let n = hostile.read_to_end(&mut sink).unwrap();
    assert_eq!(n, 0, "garbage slab costs the hostile peer its connection");

    // Another peer speaks an unknown frame kind entirely.
    let mut unknown = TcpStream::connect(&addr).unwrap();
    let mut bad = encode_frame(FrameKind::Bulk, 2, b"x", DEFAULT_MAX_PAYLOAD).unwrap();
    bad[5] = 0x7f; // kind byte: names no known frame kind
    unknown.write_all(&bad).unwrap();
    let mut sink = Vec::new();
    assert_eq!(unknown.read_to_end(&mut sink).unwrap(), 0);

    // The healthy stream on its own connections is completely unaffected.
    for (rank, data) in src.iter().enumerate() {
        let mut sender =
            BulkRedistSender::<f64>::new(Arc::clone(&compiled), GENERATION, CHUNK_BYTES, rank);
        sender.send(r.channel.as_ref(), data).unwrap();
    }
    assert!(r.zone.is_complete());
    assert_eq!(r.zone.snapshot_buffers(), compiled.apply(&src).unwrap());
    r.server.shutdown();
}

#[test]
fn bulk_frames_without_an_installed_sink_are_protocol_violations() {
    // A server that never installed a bulk sink treats a Bulk frame like
    // any other protocol violation: the connection dies, the caller gets
    // a typed error, the server keeps serving.
    let orb = Orb::new();
    let server = MuxServer::bind_with(
        "127.0.0.1:0",
        orb as Arc<dyn Dispatcher>,
        MuxServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut peer = TcpStream::connect(&addr).unwrap();
    let framed = encode_frame(FrameKind::Bulk, 9, &[0u8; 40], DEFAULT_MAX_PAYLOAD).unwrap();
    peer.write_all(&framed).unwrap();
    let mut sink = Vec::new();
    assert_eq!(
        peer.read_to_end(&mut sink).unwrap(),
        0,
        "no sink installed: the Bulk frame costs the peer its connection"
    );
    server.shutdown();
}
