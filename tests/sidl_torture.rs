//! SIDL toolchain torture test: one large, gnarly source pushed through
//! every stage — parse → check → reflect → pretty-print → re-parse →
//! Rust/C/F77 codegen — asserting cross-stage consistency.

use cca::sidl::codegen_c::generate_c_header;
use cca::sidl::codegen_f77::generate_f77;
use cca::sidl::codegen_rust::{generate_rust, RustCodegenOptions};
use cca::sidl::fmt::print_packages;
use cca::sidl::{QName, Reflection, TypeKind};

const TORTURE: &str = r#"
/** Base numerics vocabulary. */
package num version 0.9 {
    interface Object { string typeName(); }

    enum Norm { One, Two, Infinity = 99, Frobenius }

    /** Every SIDL primitive in one interface. */
    interface Kitchen extends Object {
        bool flag(in bool b);
        char letter(in char c);
        int small(in int i);
        long big(in long l);
        float single(in float f);
        double wide(in double d);
        fcomplex fz(in fcomplex z);
        dcomplex dz(in dcomplex z);
        string text(in string s);
        opaque handle(in opaque h);
        array<double> anyRank(in array<double> a);
        array<dcomplex, 7> maxRank(in array<dcomplex, 7> a);
        void everything(in int a, out double b, inout string c) throws num.Failure;
    }

    class Failure { string message(); }
}

package linalg version 2.0 {
    interface Vector extends num.Object {
        double dot(in Vector other);
    }
    interface Matrix extends num.Object {
        array<double, 1> multiply(in array<double, 1> x);
    }
    /** Diamond: both sides extend num.Object. */
    interface Factorizable extends Matrix, Vector {
        void factor();
    }
    abstract class Base implements-all num.Object { }
    class Dense extends Base implements-all Factorizable {
        static long allocated();
        final void compact();
    }
}
"#;

#[test]
fn full_pipeline_is_consistent() {
    // Parse + check.
    let packages = cca::sidl::parse(TORTURE).unwrap();
    assert_eq!(packages.len(), 2);
    let model = cca::sidl::check(&packages).unwrap();

    // Reflection agrees with the model.
    let reflection = Reflection::from_model(&model);
    assert_eq!(reflection.len(), 9);
    let dense = reflection.type_info("linalg.Dense").unwrap();
    assert_eq!(dense.kind, TypeKind::Class);
    // Dense sees: typeName, dot, multiply, factor, allocated, compact.
    let names: Vec<&str> = dense.methods.iter().map(|m| m.name.as_str()).collect();
    for expect in [
        "typeName",
        "dot",
        "multiply",
        "factor",
        "allocated",
        "compact",
    ] {
        assert!(names.contains(&expect), "missing {expect} in {names:?}");
    }
    // typeName appears exactly once despite three inheritance paths.
    assert_eq!(names.iter().filter(|n| **n == "typeName").count(), 1);

    // Subtyping across packages and the diamond.
    let q = QName::parse;
    assert!(model.is_subtype_of(&q("linalg.Dense"), &q("num.Object")));
    assert!(model.is_subtype_of(&q("linalg.Factorizable"), &q("linalg.Vector")));
    assert!(model.is_subtype_of(&q("linalg.Factorizable"), &q("linalg.Matrix")));
    assert!(!model.is_subtype_of(&q("num.Kitchen"), &q("linalg.Vector")));

    // Pretty-print canonical form re-parses to the same canonical form.
    let printed = print_packages(&packages);
    let reparsed = cca::sidl::parse(&printed).unwrap();
    assert_eq!(printed, print_packages(&reparsed));
    let remodel = cca::sidl::check(&reparsed).unwrap();
    assert_eq!(
        Reflection::from_model(&remodel).len(),
        reflection.len(),
        "canonical round trip must preserve the type catalog"
    );

    // Rust backend output is structurally sane.
    let rust = generate_rust(&model, &RustCodegenOptions::default());
    assert!(rust.contains("pub mod num {"));
    assert!(rust.contains("pub mod linalg {"));
    assert!(rust.contains("pub trait Kitchen: Object + Send + Sync {"));
    assert!(rust.contains("pub trait Factorizable: Matrix + Vector + Send + Sync {"));
    assert!(rust.contains("fn dz(&self, z: Complex64) -> Result<Complex64, SidlError>;"));
    assert!(rust.contains("pub struct DenseSkel<T: Dense>(pub T);"));
    assert_eq!(rust.matches('{').count(), rust.matches('}').count());

    // C backend: IOR shape, balanced braces, complex typedefs used.
    let header = generate_c_header(&model, "TORTURE_H");
    assert!(header.contains("struct linalg_Dense__epv"));
    assert!(header.contains("sidl_fcomplex (*f_fz)"));
    assert!(header.contains("num_Norm_Infinity = 99"));
    assert_eq!(header.matches('{').count(), header.matches('}').count());

    // F77 backend: fixed form, handles, out-params.
    let f77 = generate_f77(&model);
    assert!(f77.contains("EXTERNAL linalg_Dense_dot_f"));
    assert!(f77.contains("b (DOUBLE PRECISION, out)"));
    for line in f77.lines() {
        assert!(
            line.is_empty() || line.starts_with('C') || line.starts_with("      "),
            "bad fixed-form line: {line:?}"
        );
    }
}

#[test]
fn torture_source_survives_repository_deposit() {
    let repo = cca::repository::Repository::new();
    let types = repo.deposit_sidl(TORTURE).unwrap();
    assert_eq!(types.len(), 9);
    assert!(repo.is_subtype_of("linalg.Dense", "num.Object"));
    // Retrieve canonical source of each package and recompile.
    repo.with_catalog(|cat| {
        for pkg in ["num", "linalg"] {
            let _ = pkg;
        }
        let combined = format!(
            "{}\n{}",
            cat.source_of("num").unwrap(),
            cat.source_of("linalg").unwrap()
        );
        assert!(cca::sidl::compile(&combined).is_ok());
    });
}
