//! §2.2 — dynamic reconfiguration of a running application: "a researcher
//! may wish to visualize flow fields on a local workstation by dynamically
//! attaching a visualization tool to an ongoing simulation ... Upon
//! observing that the flow fields are not converging as expected, the
//! researcher may wish to introduce a new scheme."
//!
//! The test runs the hydro simulation for a few steps, attaches a monitor
//! mid-run, keeps stepping, detaches it, swaps the solver's preconditioner
//! by builder redirection, and confirms the simulation never noticed.

use cca::core::event::RecordingListener;
use cca::core::ConfigEvent;
use cca::framework::Framework;
use cca::repository::Repository;
use cca::solvers::esi::{
    expose_precond_ports, expose_solver_ports, LinearSolverPort, MatrixComponent, PrecondComponent,
    PrecondKind, SolverComponent, SolverConfig, ESI_SIDL,
};
use cca::solvers::precond::Identity;
use cca::solvers::{CsrMatrix, HydroConfig, HydroSim};
use cca::viz::monitor::FieldProviderComponent;
use cca::viz::{InMemoryFieldSource, MonitorComponent, SteeringPort, SteeringRegistry};
use cca_data::{DistArrayDesc, Distribution};
use std::sync::Arc;

fn serial_desc(sim: &HydroSim) -> DistArrayDesc {
    DistArrayDesc::new(
        &[sim.mesh.nx, sim.mesh.ny],
        Distribution::serial(2).unwrap(),
    )
    .unwrap()
}

#[test]
fn attach_monitor_mid_run_and_detach() {
    let cfg = HydroConfig {
        nx: 12,
        ny: 12,
        ..Default::default()
    };
    let mut sim = HydroSim::new(cfg, 1, 0);
    let source = InMemoryFieldSource::new();
    let publish = |sim: &HydroSim, src: &InMemoryFieldSource| {
        src.publish("u", serial_desc(sim), vec![sim.u.clone()])
            .unwrap();
    };

    let fw = Framework::new(Repository::new());
    fw.add_instance("sim0", FieldProviderComponent::new(source.clone()))
        .unwrap();
    let rec = RecordingListener::new();
    fw.add_listener(rec.clone());

    // Phase 1: run un-observed.
    for _ in 0..3 {
        sim.step(None, &Identity).unwrap();
        publish(&sim, &source);
    }

    // Phase 2: dynamically attach the visualizer to the ongoing run.
    let monitor = MonitorComponent::new("u");
    fw.add_instance("viz0", monitor.clone()).unwrap();
    fw.connect("viz0", "fields", "sim0", "fields").unwrap();
    for _ in 0..3 {
        sim.step(None, &Identity).unwrap();
        publish(&sim, &source);
        monitor.capture().unwrap();
    }
    assert_eq!(monitor.history().len(), 3);
    // Frames advance and the field is live.
    let h = monitor.history();
    assert!(h[2].frame > h[0].frame);
    assert!(h[0].stats.max > 0.0);
    let img = monitor.render_latest(16, 8).unwrap();
    assert_eq!(img.lines().count(), 8);

    // Phase 3: detach. The simulation keeps stepping unaffected.
    fw.destroy_instance("viz0").unwrap();
    for _ in 0..2 {
        sim.step(None, &Identity).unwrap();
        publish(&sim, &source);
    }
    assert!(sim.u.iter().all(|v| v.is_finite()));

    // The builder observed the whole story.
    let events = rec.events();
    assert!(events
        .iter()
        .any(|e| matches!(e, ConfigEvent::ComponentAdded { instance, .. } if instance == "viz0")));
    assert!(events
        .iter()
        .any(|e| matches!(e, ConfigEvent::Connected { user, .. } if user == "viz0")));
    assert!(events
        .iter()
        .any(|e| matches!(e, ConfigEvent::Disconnected { user, .. } if user == "viz0")));
    assert!(events
        .iter()
        .any(|e| matches!(e, ConfigEvent::ComponentRemoved { instance } if instance == "viz0")));
}

#[test]
fn swap_solver_components_mid_run_via_redirect() {
    // Assemble matrix + two preconditioners + solver; solve, redirect,
    // solve again. "Incremental shifts in parallel algorithms ... during
    // the lifetimes of scientific application codes" (§1).
    let a = CsrMatrix::laplacian_2d(10, 10);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();

    let repo = Repository::new();
    repo.deposit_sidl(ESI_SIDL).unwrap();
    let fw = Framework::new(repo);
    let rec = RecordingListener::new();
    fw.add_listener(rec.clone());

    fw.add_instance("matrix0", MatrixComponent::new(a)).unwrap();
    let weak = PrecondComponent::new(PrecondKind::Identity);
    let strong = PrecondComponent::new(PrecondKind::Ilu0);
    let solver = SolverComponent::new(SolverConfig::default());
    fw.add_instance("weak0", weak.clone()).unwrap();
    fw.add_instance("strong0", strong.clone()).unwrap();
    fw.add_instance("solver0", solver.clone()).unwrap();
    expose_precond_ports(&weak).unwrap();
    expose_precond_ports(&strong).unwrap();
    expose_solver_ports(&solver).unwrap();
    fw.connect("weak0", "A", "matrix0", "A").unwrap();
    fw.connect("strong0", "A", "matrix0", "A").unwrap();
    fw.connect("solver0", "A", "matrix0", "A").unwrap();
    fw.connect("solver0", "M", "weak0", "M").unwrap();

    let port: Arc<dyn LinearSolverPort> = fw
        .services("solver0")
        .unwrap()
        .get_provides_port("solver")
        .unwrap()
        .typed()
        .unwrap();
    let (x1, s1) = port.solve_system(&b).unwrap();

    // Mid-run component swap.
    fw.redirect("solver0", "M", "weak0", "strong0", "M")
        .unwrap();
    let (x2, s2) = port.solve_system(&b).unwrap();

    // Same answer, fewer iterations.
    for (a_, b_) in x1.iter().zip(&x2) {
        assert!((a_ - b_).abs() < 1e-5);
    }
    assert!(s2.iterations < s1.iterations, "{s2:?} vs {s1:?}");
    assert!(rec
        .events()
        .iter()
        .any(|e| matches!(e, ConfigEvent::Redirected { .. })));
}

#[test]
fn steering_changes_take_effect_between_steps() {
    // The CUMULVS-style knob: steer the viscosity mid-run and watch the
    // decay rate change.
    let registry = SteeringRegistry::new();
    registry.register("nu", 0.01, 0.0, 10.0).unwrap();

    let mut cfg = HydroConfig {
        nx: 12,
        ny: 12,
        vx: 0.0,
        vy: 0.0,
        ..Default::default()
    };
    cfg.nu = registry.value("nu");
    let mut sim = HydroSim::new(cfg, 1, 0);
    let m0 = sim.max_abs(None);
    for _ in 0..3 {
        sim.step(None, &Identity).unwrap();
    }
    let m1 = sim.max_abs(None);
    let slow_decay = m0 - m1;

    // Remote tool turns the knob way up. The simulation re-reads it and
    // rebuilds its operator (new HydroSim with same field).
    registry.set("nu", 5.0).unwrap();
    assert_eq!(registry.revision(), 1);
    let mut cfg2 = cfg;
    cfg2.nu = registry.value("nu");
    let mut sim2 = HydroSim::new(cfg2, 1, 0);
    sim2.u = sim.u.clone();
    let m2 = sim2.max_abs(None);
    for _ in 0..3 {
        sim2.step(None, &Identity).unwrap();
    }
    let m3 = sim2.max_abs(None);
    let fast_decay = m2 - m3;
    assert!(
        fast_decay > slow_decay * 2.0,
        "steering must accelerate decay: slow {slow_decay}, fast {fast_decay}"
    );
}
