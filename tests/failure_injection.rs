//! Failure injection across the architecture: failing components notify
//! the builder (Configuration API), incompatible connections are refused,
//! broken transports surface as exceptions rather than hangs, and solver
//! failures travel as SIDL user exceptions.

use cca::core::event::RecordingListener;
use cca::core::{CcaError, CcaServices, Component, ConfigEvent, GoPort, PortHandle};
use cca::framework::{ConnectionPolicy, Framework};
use cca::repository::Repository;
use cca::rpc::{ObjRef, Orb};
use cca::sidl::{DynObject, DynValue, SidlError};
use cca_data::TypeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct FlakyComponent {
    failures_left: AtomicUsize,
}

impl Component for FlakyComponent {
    fn component_type(&self) -> &str {
        "test.Flaky"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let _ = services;
        Ok(())
    }
}

impl GoPort for FlakyComponent {
    fn go(&self) -> Result<(), CcaError> {
        if self.failures_left.load(Ordering::SeqCst) > 0 {
            self.failures_left.fetch_sub(1, Ordering::SeqCst);
            Err(CcaError::ComponentFailed {
                component: "flaky0".into(),
                reason: "injected fault".into(),
            })
        } else {
            Ok(())
        }
    }
}

#[test]
fn builder_sees_failures_then_recovery() {
    let fw = Framework::new(Repository::new());
    let rec = RecordingListener::new();
    fw.add_listener(rec.clone());
    let flaky = Arc::new(FlakyComponent {
        failures_left: AtomicUsize::new(2),
    });
    fw.add_instance("flaky0", flaky.clone()).unwrap();
    let go: Arc<dyn GoPort> = flaky;
    fw.services("flaky0")
        .unwrap()
        .add_provides_port(PortHandle::new(
            "go",
            cca::core::component::GO_PORT_TYPE,
            go,
        ))
        .unwrap();
    assert!(fw.run_go("flaky0", "go").is_err());
    assert!(fw.run_go("flaky0", "go").is_err());
    fw.run_go("flaky0", "go").unwrap(); // recovered
    let failures = rec
        .events()
        .iter()
        .filter(|e| matches!(e, ConfigEvent::ComponentFailed { .. }))
        .count();
    assert_eq!(failures, 2);
}

#[test]
fn incompatible_connection_is_refused_before_any_call() {
    let fw = Framework::new(Repository::new());
    struct P;
    impl Component for P {
        fn component_type(&self) -> &str {
            "test.P"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            s.add_provides_port(PortHandle::new("out", "test.TypeA", Arc::new(1u8)))
        }
    }
    struct U;
    impl Component for U {
        fn component_type(&self) -> &str {
            "test.U"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            s.register_uses_port("in", "test.TypeB", TypeMap::new())
        }
    }
    fw.add_instance("p0", Arc::new(P)).unwrap();
    fw.add_instance("u0", Arc::new(U)).unwrap();
    match fw.connect("u0", "in", "p0", "out") {
        Err(CcaError::IncompatiblePorts {
            uses_type,
            provides_type,
        }) => {
            assert_eq!(uses_type, "test.TypeB");
            assert_eq!(provides_type, "test.TypeA");
        }
        other => panic!("expected incompatibility, got {other:?}"),
    }
    // Nothing was wired.
    assert!(fw.connections().is_empty());
    assert!(fw.services("u0").unwrap().get_port("in").is_err());
}

#[test]
fn orb_failures_surface_as_exceptions_not_hangs() {
    struct Broken;
    impl DynObject for Broken {
        fn sidl_type(&self) -> &str {
            "test.Broken"
        }
        fn invoke(&self, method: &str, _: Vec<DynValue>) -> Result<DynValue, SidlError> {
            match method {
                "user" => Err(SidlError::user("test.AppError", "application-level")),
                "system" => Err(SidlError::invoke("internal corruption")),
                _ => Ok(DynValue::Void),
            }
        }
    }
    let orb = Orb::new();
    orb.register("broken", Arc::new(Broken));
    let objref = ObjRef::loopback("broken", Arc::clone(&orb));

    // User exceptions keep their SIDL type across the wire.
    match objref.invoke("user", vec![]).unwrap_err() {
        SidlError::UserException { exception_type, .. } => {
            assert_eq!(exception_type, "test.AppError")
        }
        other => panic!("{other:?}"),
    }
    // System errors are wrapped but still errors.
    assert!(objref.invoke("system", vec![]).is_err());
    // Unregistering the servant turns calls into ObjectNotFound.
    orb.unregister("broken");
    let e = objref.invoke("fine", vec![]).unwrap_err();
    assert!(e.to_string().contains("ObjectNotFound"));
}

#[test]
fn destroying_a_provider_leaves_users_cleanly_disconnected() {
    // Proxied variant: the servant also disappears from the ORB path.
    let fw = Framework::with_policy(Repository::new(), ConnectionPolicy::Proxied);

    struct Prov;
    struct ProvPort;
    impl DynObject for ProvPort {
        fn sidl_type(&self) -> &str {
            "test.Port"
        }
        fn invoke(&self, _: &str, _: Vec<DynValue>) -> Result<DynValue, SidlError> {
            Ok(DynValue::Long(7))
        }
    }
    impl Component for Prov {
        fn component_type(&self) -> &str {
            "test.Prov"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            let p: Arc<dyn DynObject> = Arc::new(ProvPort);
            s.add_provides_port(PortHandle::new("out", "test.Port", Arc::clone(&p)).with_dynamic(p))
        }
    }
    struct User;
    impl Component for User {
        fn component_type(&self) -> &str {
            "test.User"
        }
        fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
            s.register_uses_port("in", "test.Port", TypeMap::new())
        }
    }
    fw.add_instance("prov0", Arc::new(Prov)).unwrap();
    fw.add_instance("user0", Arc::new(User)).unwrap();
    fw.connect("user0", "in", "prov0", "out").unwrap();

    // Works while alive.
    let handle = fw.services("user0").unwrap().get_port("in").unwrap();
    assert!(handle.dynamic().unwrap().invoke("x", vec![]).is_ok());

    // Destroy the provider: connection is broken, getPort now errors.
    fw.destroy_instance("prov0").unwrap();
    assert!(fw.services("user0").unwrap().get_port("in").is_err());
}

#[test]
fn double_faults_in_teardown_are_idempotent() {
    let fw = Framework::new(Repository::new());
    struct Nop;
    impl Component for Nop {
        fn component_type(&self) -> &str {
            "test.Nop"
        }
        fn set_services(&self, _: Arc<CcaServices>) -> Result<(), CcaError> {
            Ok(())
        }
    }
    fw.add_instance("n0", Arc::new(Nop)).unwrap();
    fw.destroy_instance("n0").unwrap();
    assert!(matches!(
        fw.destroy_instance("n0"),
        Err(CcaError::ComponentNotFound(_))
    ));
}
