//! Repository torture battery: the sharded catalog at scale and on the
//! wire. Deposits tens of thousands of synthetic component types in one
//! batch (a million under `CCA_SCALE_FULL=1` — the committed
//! `BENCH_repo.json` carries the measured numbers at that size), then
//! hammers the discovery surfaces: exact lookups round-trip every
//! sampled entry, fuzzy queries return known-answer rankings across
//! every score tier, paged cursor walks reach exhaustion with no gaps
//! and no duplicates, duplicate deposits and live rebalances keep the
//! catalog consistent, and the `cca.ports.DiscoveryPort` answers over a
//! real `tcp+mux://` socket under the CI fault matrix — a seeded
//! mid-call drop opens the breaker, quarantine is published, and the
//! healed wire recovers on the half-open probe.

use cca::core::event::RecordingListener;
use cca::core::resilience::{fault_seed_from_env, BreakerPolicy, CallPolicy, MockClock};
use cca::core::{CcaError, CcaServices, Component, ConfigEvent};
use cca::framework::{Framework, RemoteTransportKind, DISCOVERY_EXPORT_KEY, DISCOVERY_PORT_TYPE};
use cca::repository::{ComponentEntry, FuzzyQuery, PortSpec, QueryCursor, Repository};
use cca::rpc::{MuxTransport, ObjRef, CONNECTION_EXCEPTION_TYPE};
use cca::sidl::{DynObject, DynValue};
use cca_data::TypeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Synthetic catalog
// ---------------------------------------------------------------------

/// Default entry count: big enough that a linear-scan bug or a lost
/// shard shows up, small enough for the debug-build test suite. The full
/// paper-scale run (1,000,000 types, the E17 population) is one env var
/// away: `CCA_SCALE_FULL=1 cargo test --test repository_scale`.
const DEFAULT_TYPES: usize = 50_000;

fn scale() -> usize {
    if std::env::var("CCA_SCALE_FULL").is_ok_and(|v| v == "1") {
        1_000_000
    } else {
        DEFAULT_TYPES
    }
}

struct Nop;
impl Component for Nop {
    fn component_type(&self) -> &str {
        "t.Nop"
    }
    fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
        Ok(())
    }
}

fn entry(class: &str, desc: &str) -> ComponentEntry {
    ComponentEntry {
        class: class.into(),
        description: desc.into(),
        provides: vec![PortSpec::new("solve", "esi.Solver")],
        uses: vec![PortSpec::new("mesh", "data.Mesh")],
        properties: TypeMap::new(),
        factory: Arc::new(|| Arc::new(Nop) as Arc<dyn Component>),
    }
}

/// Same synthetic naming scheme as the E17 bench: `pkg.Word1Word2NNNNNNN`
/// — every class unique, plenty of shared trigrams so fuzzy queries have
/// real competition.
fn class_of(i: usize) -> String {
    const PKGS: [&str; 8] = [
        "esi", "viz", "data", "mesh", "solver", "opt", "chem", "climate",
    ];
    const WORDS: [&str; 16] = [
        "Krylov",
        "Jacobi",
        "Tensor",
        "Stencil",
        "Fourier",
        "Galerkin",
        "Newton",
        "Euler",
        "Riemann",
        "Poisson",
        "Laplace",
        "Chebyshev",
        "Lanczos",
        "Arnoldi",
        "Hessian",
        "Adjoint",
    ];
    format!(
        "{}.{}{}{:07}",
        PKGS[(i / 256) % 8],
        WORDS[i % 16],
        WORDS[(i / 16) % 16],
        i
    )
}

fn populate(repo: &Repository, n: usize) {
    let batch: Vec<ComponentEntry> = (0..n)
        .map(|i| entry(&class_of(i), "synthetic scale entry"))
        .collect();
    assert_eq!(repo.register_components(batch).unwrap(), n);
}

// ---------------------------------------------------------------------
// 1. Scale round trip: one batch in, every sampled entry back out.
// ---------------------------------------------------------------------

/// Deposits the full synthetic catalog in one all-or-nothing batch and
/// round-trips a stride of exact lookups: every sampled class comes back
/// with its ports intact, misses stay typed errors, and the shard layout
/// reports a published generation on every shard that holds entries.
#[test]
fn scale_deposit_and_exact_lookup_round_trip() {
    let n = scale();
    let repo = Repository::new();
    populate(&repo, n);
    assert_eq!(repo.len(), n);

    // Stride through the catalog coprime to every shard count in play so
    // the sample touches all shards, not a resonant subset.
    let mut hits = 0;
    let mut i = 0;
    while hits < 2_000 {
        let class = class_of(i % n);
        let e = repo.entry(&class).unwrap_or_else(|_| {
            panic!("entry {class} deposited but not found");
        });
        assert_eq!(e.class, class);
        assert_eq!(e.provides[0].port_type, "esi.Solver");
        assert_eq!(e.uses[0].name, "mesh");
        hits += 1;
        i += 7919;
    }
    assert!(repo.entry("esi.NoSuchType9999999").is_err());
    assert!(repo.create("esi.NoSuchType9999999").is_err());

    // Every shard published at least once during the batch deposit.
    let generations = repo.generations();
    assert_eq!(generations.len(), repo.shard_count());
    assert!(
        generations.iter().all(|&g| g >= 1),
        "batch deposit must publish every shard: {generations:?}"
    );
}

// ---------------------------------------------------------------------
// 2. Fuzzy known-answer rankings: every score tier, in order.
// ---------------------------------------------------------------------

/// Plants one curated entry in each score tier for the needle "zephyr" —
/// exact class, class prefix, package-boundary, mid-word substring, and
/// description-only — inside a large noise catalog, and requires the
/// fuzzy ranking to surface them in exactly tier order.
#[test]
fn fuzzy_known_answer_rankings_across_score_tiers() {
    let repo = Repository::new();
    populate(&repo, 10_000);
    // "zephyr" appears nowhere in the synthetic naming scheme, so the
    // expected ranking is exact: tier beats tier, no noise interleaves.
    repo.register_component(entry("app.MegaZephyrPlus", "mid-word hit"))
        .unwrap();
    repo.register_component(entry("esi.Zephyr", "package-boundary hit"))
        .unwrap();
    repo.register_component(entry("Zephyr.Core", "class-prefix hit"))
        .unwrap();
    repo.register_component(entry("Zephyr", "exact-class hit"))
        .unwrap();
    repo.register_component(entry("tools.Breeze", "a gentle zephyr of wind"))
        .unwrap();

    let page = repo.fuzzy(&FuzzyQuery::new("Zephyr").with_limit(10));
    let classes: Vec<&str> = page.hits.iter().map(|h| h.class.as_str()).collect();
    assert_eq!(
        classes,
        vec![
            "Zephyr",             // exact class match
            "Zephyr.Core",        // class prefix
            "esi.Zephyr",         // package-boundary word
            "app.MegaZephyrPlus", // buried substring
            "tools.Breeze",       // description-only hit
        ],
        "score tiers must rank strictly: {:?}",
        page.hits
    );
    assert_eq!(page.matched, 5);
    assert!(page.next.is_none(), "five hits fit one page of ten");
    // Scores strictly descend across tiers.
    assert!(page.hits.windows(2).all(|w| w[0].score > w[1].score));

    // Case-insensitive: the lowered needle finds the same ranking.
    let lower = repo.fuzzy(&FuzzyQuery::new("zephyr").with_limit(10));
    assert_eq!(
        lower
            .hits
            .iter()
            .map(|h| h.class.as_str())
            .collect::<Vec<_>>(),
        classes
    );

    // Short needles (< one trigram) fall back to the scan path and still
    // find boundary hits.
    let short = repo.fuzzy(&FuzzyQuery::new("ze").with_limit(10));
    assert!(short.hits.iter().any(|h| h.class == "Zephyr"));
}

// ---------------------------------------------------------------------
// 3. Cursor walks: paged to exhaustion, no gaps, no duplicates.
// ---------------------------------------------------------------------

/// Walks a broad query ("krylov": thousands of matches in the synthetic
/// catalog) through small pages until the cursor runs dry, then checks
/// the concatenated walk against the one-shot result: same classes, same
/// order, every hit exactly once. Also pins the cursor wire format:
/// encode/parse round-trips and junk is rejected.
#[test]
fn paged_cursor_walk_reaches_exhaustion_without_gaps_or_duplicates() {
    let repo = Repository::new();
    populate(&repo, 10_000);

    let one_shot = repo.fuzzy(&FuzzyQuery::new("krylov").with_limit(100_000));
    assert!(
        one_shot.hits.len() > 500,
        "the synthetic catalog must give the walk real depth, got {}",
        one_shot.hits.len()
    );
    assert!(one_shot.next.is_none());

    let mut walked = Vec::new();
    let mut cursor: Option<QueryCursor> = None;
    let mut pages = 0;
    loop {
        let mut q = FuzzyQuery::new("krylov").with_limit(97);
        if let Some(c) = cursor.take() {
            // The cursor crosses the wire as an opaque string; walk it
            // through its encoding every page, like a remote caller.
            q = q.after(QueryCursor::parse(&c.encode()).unwrap());
        }
        let page = repo.fuzzy(&q);
        // `matched` counts what was still ranked after the incoming
        // cursor, this page included — it must shrink in lockstep with
        // the walk.
        assert_eq!(page.matched, one_shot.hits.len() - walked.len());
        walked.extend(page.hits);
        pages += 1;
        assert!(pages <= 2 + one_shot.hits.len() / 97, "walk must terminate");
        match page.next {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }

    assert_eq!(walked.len(), one_shot.hits.len(), "no gaps, no duplicates");
    for (w, o) in walked.iter().zip(one_shot.hits.iter()) {
        assert_eq!(w.class, o.class, "paged order must equal one-shot order");
        assert_eq!(w.score, o.score);
    }

    assert!(QueryCursor::parse("not-a-cursor").is_none());
    assert!(QueryCursor::parse("v1:junk:junk").is_none());
}

// ---------------------------------------------------------------------
// 4. Deposit edge cases and live rebalance.
// ---------------------------------------------------------------------

/// Duplicate deposits reject without corrupting the catalog, a batch with
/// an internal duplicate is refused whole (all-or-nothing), re-deposit
/// overwrites in place, and a live rebalance to a different shard count
/// preserves every entry, every lookup, and every fuzzy ranking.
#[test]
fn duplicate_redeposit_and_rebalance_keep_the_catalog_consistent() {
    let n = 10_000;
    let repo = Repository::with_shards(8);
    populate(&repo, n);

    // Duplicate single deposit: typed rejection, count unchanged.
    assert!(repo
        .register_component(entry(&class_of(0), "imposter"))
        .is_err());
    assert_eq!(repo.len(), n);
    assert_eq!(
        repo.entry(&class_of(0)).unwrap().description,
        "synthetic scale entry"
    );

    // All-or-nothing batch: one duplicate (against the store) poisons the
    // whole batch — none of the fresh entries land.
    let poisoned = vec![
        entry("fresh.One", "new"),
        entry(&class_of(42), "imposter"),
        entry("fresh.Two", "new"),
    ];
    assert!(repo.register_components(poisoned).is_err());
    assert_eq!(repo.len(), n);
    assert!(repo.entry("fresh.One").is_err());
    assert!(repo.entry("fresh.Two").is_err());

    // Batch-internal duplicate: also refused whole.
    let twins = vec![entry("twin.A", "first"), entry("twin.A", "second")];
    assert!(repo.register_components(twins).is_err());
    assert!(repo.entry("twin.A").is_err());

    // Re-deposit (upsert) replaces in place.
    repo.reregister_component(entry(&class_of(7), "upgraded"));
    assert_eq!(repo.len(), n);
    assert_eq!(repo.entry(&class_of(7)).unwrap().description, "upgraded");

    // Live rebalance: grow 8 -> 32 shards, then shrink to 1. Every entry
    // survives both migrations and fuzzy rankings are byte-identical —
    // scoring is a pure function of the texts, never the layout.
    let before = repo.fuzzy(&FuzzyQuery::new("tensor").with_limit(50));
    for shards in [32usize, 1] {
        repo.rebalance(shards);
        assert_eq!(repo.shard_count(), shards);
        assert_eq!(repo.len(), n, "rebalance to {shards} shards lost entries");
        for i in (0..n).step_by(997) {
            assert!(repo.entry(&class_of(i)).is_ok());
        }
        assert_eq!(repo.entry(&class_of(7)).unwrap().description, "upgraded");
        let after = repo.fuzzy(&FuzzyQuery::new("tensor").with_limit(50));
        assert_eq!(after.matched, before.matched);
        for (a, b) in after.hits.iter().zip(before.hits.iter()) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.score, b.score);
        }
    }
}

// ---------------------------------------------------------------------
// 5. DiscoveryPort on the wire, under the fault matrix.
// ---------------------------------------------------------------------

/// A consumer with one uses slot for the discovery port; calls cross the
/// wire through the dynamic facade.
struct DiscoveryConsumer;
impl Component for DiscoveryConsumer {
    fn component_type(&self) -> &str {
        "test.DiscoveryConsumer"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("repo", DISCOVERY_PORT_TYPE, TypeMap::new())
    }
}

/// The discovery plane scraped over a real `tcp+mux://` socket under the
/// CI fault matrix (`CCA_FAULT_SEED` in {1, 7, 42, 1999}): a frameworkless
/// `ObjRef` scrape answers search/page/stats, then the seeded mid-call
/// drop plan fails a breaker-guarded uses slot twice, the provider is
/// quarantined (fail-fast, no socket traffic), and the healed wire
/// recovers on the half-open probe — `ProviderRecovered` published, the
/// catalog still answering.
#[test]
fn discovery_port_over_mux_survives_the_fault_matrix() {
    let seed = fault_seed_from_env();

    // Server side: a populated catalog behind the discovery port.
    let repo = Repository::new();
    populate(&repo, 10_000);
    repo.register_component(entry("esi.Zephyr", "the needle"))
        .unwrap();
    let server_fw = Framework::new(repo);
    server_fw.install_discovery().unwrap();
    let server = server_fw.serve_tcp_mux("127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Frameworkless scrape first: a plain transport + ObjRef, the way a
    // registry browser would dial in.
    let transport = Arc::new(MuxTransport::new(addr.clone()));
    let objref = ObjRef::new(
        DISCOVERY_EXPORT_KEY,
        transport as Arc<dyn cca::rpc::Transport>,
    );
    assert_eq!(
        objref
            .invoke("componentCount", vec![])
            .unwrap()
            .as_long()
            .unwrap(),
        10_001
    );
    let found = objref
        .invoke("lookupJson", vec![DynValue::Str("esi.Zephyr".into())])
        .unwrap();
    assert!(found.as_str().unwrap().contains("\"found\":true"));
    let page1 = objref
        .invoke(
            "searchJson",
            vec![DynValue::Str("krylov".into()), DynValue::Long(5)],
        )
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(page1.contains("\"hits\":[{"), "{page1}");
    let cursor = page1
        .split("\"cursor\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("a broad query leaves a continuation cursor")
        .to_string();
    let page2 = objref
        .invoke(
            "pageJson",
            vec![
                DynValue::Str("krylov".into()),
                DynValue::Long(5),
                DynValue::Str(cursor),
            ],
        )
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(page2.contains("\"hits\":[{"), "{page2}");
    // Pages are disjoint: the cursor resumed, not restarted.
    let first_class = |p: &str| {
        p.split("\"class\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .map(str::to_string)
    };
    assert_ne!(first_class(&page1), first_class(&page2));
    let stats = objref.invoke("statsJson", vec![]).unwrap();
    let stats = stats.as_str().unwrap();
    assert!(stats.contains("\"components\":10001"), "{stats}");
    assert!(stats.contains("\"shards\":32"), "{stats}");

    // Breaker-guarded framework client: quarantine then recovery, all
    // breaker timing on the mock clock.
    let client_fw = Framework::new(Repository::new());
    let rec = RecordingListener::new();
    client_fw.add_listener(rec.clone());
    client_fw
        .add_instance("browser0", Arc::new(DiscoveryConsumer))
        .unwrap();
    let services = client_fw.services("browser0").unwrap();
    let clock = MockClock::new();
    let policy = CallPolicy::with_clock(clock.clone()).with_breaker(BreakerPolicy::new(2, 10_000));
    services.set_call_policy("repo", Arc::new(policy)).unwrap();
    client_fw
        .connect_remote_with(
            "browser0",
            "repo",
            &addr,
            DISCOVERY_EXPORT_KEY,
            RemoteTransportKind::Mux,
        )
        .unwrap();
    let provider_label = format!("tcp+mux://{addr}/{DISCOVERY_EXPORT_KEY}");

    let mut port = services.cached_port::<dyn DynObject>("repo");
    fn search(p: &(dyn DynObject + 'static)) -> Result<DynValue, CcaError> {
        p.invoke(
            "searchJson",
            vec![DynValue::Str("zephyr".into()), DynValue::Long(3)],
        )
        .map_err(CcaError::from)
    }

    // Healthy: the fuzzy search round-trips through the uses slot.
    let healthy = port.call(search).unwrap();
    assert!(healthy.as_str().unwrap().contains("\"esi.Zephyr\""));

    // Hostile: the seeded plan drops every call mid-flight. Two typed
    // connection failures open the breaker.
    server.set_fault_plan(seed, 1000);
    for _ in 0..2 {
        let err = port.call(search).unwrap_err();
        assert!(
            err.to_string().contains(CONNECTION_EXCEPTION_TYPE),
            "mid-call drop must surface as a connection failure, got: {err}"
        );
    }
    assert!(
        rec.events().iter().any(|e| matches!(
            e,
            ConfigEvent::ProviderQuarantined { provider, .. } if *provider == provider_label
        )),
        "breaker threshold must publish the quarantine"
    );

    // Quarantined: fail-fast, no socket traffic.
    let dropped_before = server.dropped_mid_call();
    assert!(port.call(search).is_err());
    assert_eq!(
        server.dropped_mid_call(),
        dropped_before,
        "quarantined discovery calls must not reach the server"
    );

    // Healed wire + cooldown passed in simulated time: the half-open
    // probe re-dials, the breaker closes, recovery is published, and the
    // catalog answers as before.
    server.set_fault_plan(seed, 0);
    clock.advance_ns(20_000);
    let recovered = port.call(search).unwrap();
    assert!(recovered.as_str().unwrap().contains("\"esi.Zephyr\""));
    assert!(
        rec.events().iter().any(|e| matches!(
            e,
            ConfigEvent::ProviderRecovered { provider, .. } if *provider == provider_label
        )),
        "half-open success must publish the recovery"
    );
    server.shutdown();
}
