//! F2 — Figure 2's element relationships, run end-to-end:
//!
//! SIDL source → repository deposit → repository query → proxy generation
//! → component instantiation → builder wiring through CCA Services →
//! running the assembled application.

use cca::core::{CcaError, CcaServices, Component, GoPort, PortHandle};
use cca::framework::Framework;
use cca::repository::{ComponentEntry, PortSpec, Query, Repository};
use cca::sidl::Reflection;
use cca_data::TypeMap;
use parking_lot::Mutex;
use std::sync::Arc;

const SIDL: &str = r#"
package pipes version 1.0 {
    /** Produces numbers. */
    interface Source { double next(); }
    /** Consumes numbers; returns the running total. */
    interface Sink { double push(in double value); }
    class RampSource implements-all Source { }
    class SummingSink implements-all Sink { }
}
"#;

trait SourcePort: Send + Sync {
    fn next(&self) -> f64;
}
trait SinkPort: Send + Sync {
    fn push(&self, value: f64) -> f64;
}

struct RampSource {
    state: Mutex<f64>,
}
impl SourcePort for RampSource {
    fn next(&self) -> f64 {
        let mut s = self.state.lock();
        *s += 1.0;
        *s
    }
}
impl Component for RampSource {
    fn component_type(&self) -> &str {
        "pipes.RampSource"
    }
    fn set_services(&self, _services: Arc<CcaServices>) -> Result<(), CcaError> {
        Ok(())
    }
}

struct SummingSink {
    total: Mutex<f64>,
}
impl SinkPort for SummingSink {
    fn push(&self, value: f64) -> f64 {
        let mut t = self.total.lock();
        *t += value;
        *t
    }
}
impl Component for SummingSink {
    fn component_type(&self) -> &str {
        "pipes.SummingSink"
    }
    fn set_services(&self, _services: Arc<CcaServices>) -> Result<(), CcaError> {
        Ok(())
    }
}

/// The driver: uses both ports, pumps `n` values on `go`.
struct Pump {
    n: usize,
    services: Mutex<Option<Arc<CcaServices>>>,
    last_total: Mutex<f64>,
}
impl Component for Pump {
    fn component_type(&self) -> &str {
        "pipes.Pump"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("from", "pipes.Source", TypeMap::new())?;
        services.register_uses_port("to", "pipes.Sink", TypeMap::new())?;
        *self.services.lock() = Some(services);
        Ok(())
    }
}
impl GoPort for Pump {
    fn go(&self) -> Result<(), CcaError> {
        let services = self.services.lock().clone().expect("wired");
        let source: Arc<dyn SourcePort> = services.get_port_as("from")?;
        let sink: Arc<dyn SinkPort> = services.get_port_as("to")?;
        let mut total = 0.0;
        for _ in 0..self.n {
            total = sink.push(source.next());
        }
        *self.last_total.lock() = total;
        Ok(())
    }
}

fn build_repository() -> Arc<Repository> {
    let repo = Repository::new();
    // (a) deposit the SIDL definitions.
    repo.deposit_sidl(SIDL).unwrap();
    // (b) register instantiable components whose advertised ports match.
    repo.register_component(ComponentEntry {
        class: "pipes.RampSource".into(),
        description: "counts upward from zero".into(),
        provides: vec![PortSpec::new("out", "pipes.Source")],
        uses: vec![],
        properties: TypeMap::new(),
        factory: Arc::new(|| {
            Arc::new(RampSource {
                state: Mutex::new(0.0),
            }) as Arc<dyn Component>
        }),
    })
    .unwrap();
    repo.register_component(ComponentEntry {
        class: "pipes.SummingSink".into(),
        description: "accumulates everything pushed into it".into(),
        provides: vec![PortSpec::new("in", "pipes.Sink")],
        uses: vec![],
        properties: TypeMap::new(),
        factory: Arc::new(|| {
            Arc::new(SummingSink {
                total: Mutex::new(0.0),
            }) as Arc<dyn Component>
        }),
    })
    .unwrap();
    repo
}

#[test]
fn full_figure2_pipeline() {
    let repo = build_repository();

    // Repository query: find a provider of pipes.Source (the builder's
    // "what can I connect here?" question).
    let sources = repo.search(&Query::any().providing("pipes.Source"));
    assert_eq!(sources.len(), 1);
    assert_eq!(sources[0].class, "pipes.RampSource");

    // Proxy generation from the deposited SIDL (Figure 2's proxy
    // generator consuming repository definitions).
    let generated = repo.with_catalog(|cat| {
        let source = cat.source_of("pipes").unwrap();
        let model = cca::sidl::compile(source).unwrap();
        cca::sidl::codegen_rust::generate_rust(&model, &Default::default())
    });
    assert!(generated.contains("pub trait Source"));
    assert!(generated.contains("pub struct SinkStub"));

    // Reflection is queryable without compile-time knowledge.
    let reflection = repo.with_catalog(|cat| {
        Reflection::from_model(&cca::sidl::compile(cat.source_of("pipes").unwrap()).unwrap())
    });
    assert!(reflection
        .type_info("pipes.Sink")
        .unwrap()
        .method("push")
        .is_some());

    // Builder: instantiate from the repository, add provides ports the
    // components expose, wire, run.
    let fw = Framework::new(repo);
    fw.create_instance("source0", "pipes.RampSource").unwrap();
    fw.create_instance("sink0", "pipes.SummingSink").unwrap();
    let pump = Arc::new(Pump {
        n: 10,
        services: Mutex::new(None),
        last_total: Mutex::new(0.0),
    });
    fw.add_instance("pump0", pump.clone()).unwrap();

    // The repository-created instances register their ports here (ad-hoc
    // registration since the factories return type-erased components).
    let source_impl: Arc<dyn SourcePort> = Arc::new(RampSource {
        state: Mutex::new(0.0),
    });
    fw.services("source0")
        .unwrap()
        .add_provides_port(PortHandle::new("out", "pipes.Source", source_impl))
        .unwrap();
    let sink_impl: Arc<dyn SinkPort> = Arc::new(SummingSink {
        total: Mutex::new(0.0),
    });
    fw.services("sink0")
        .unwrap()
        .add_provides_port(PortHandle::new("in", "pipes.Sink", sink_impl))
        .unwrap();
    let go: Arc<dyn GoPort> = pump.clone();
    fw.services("pump0")
        .unwrap()
        .add_provides_port(PortHandle::new(
            "go",
            cca::core::component::GO_PORT_TYPE,
            go,
        ))
        .unwrap();

    fw.connect("pump0", "from", "source0", "out").unwrap();
    fw.connect("pump0", "to", "sink0", "in").unwrap();
    fw.run_go("pump0", "go").unwrap();

    // 1+2+...+10 = 55.
    assert_eq!(*pump.last_total.lock(), 55.0);
}

#[test]
fn repository_query_with_subtyping_across_the_pipeline() {
    let repo = build_repository();
    // pipes.RampSource is-a pipes.Source by the deposited SIDL.
    assert!(repo.is_subtype_of("pipes.RampSource", "pipes.Source"));
    assert!(!repo.is_subtype_of("pipes.Source", "pipes.RampSource"));
    // Free-text search.
    let found = repo.search(&Query::any().with_text("accumulates"));
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].class, "pipes.SummingSink");
}
