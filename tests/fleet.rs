//! Fleet kill-matrix integration test (PR 9, `harness = false`).
//!
//! Re-execs itself as the rank children: when `CCA_FLEET_RANK` is set
//! this binary runs one supervised rank (see `run_child`); otherwise it
//! is the supervisor driving three scenarios:
//!
//! 1. **kill-matrix** — the Figure-2 hydro pipeline on 4 child-process
//!    ranks. A seed-chosen victim rank is `kill -9`'d after a
//!    seed-chosen committed step; survivors roll back to the committed
//!    checkpoint, the supervisor restarts the victim under backoff, the
//!    group resynchronizes, and the run must converge to the same mass
//!    as an unkilled in-process `spmd` baseline. Seed comes from
//!    `CCA_FAULT_SEED` (the CI fleet-matrix lane crosses 1/7/42/1999).
//! 2. **shutdown-no-zombies** — mid-run shutdown kills and reaps every
//!    child, collecting a waitpid status for each.
//! 3. **zero-leak** — after everything, no process on the box still
//!    carries `CCA_FLEET_RANK` in its environment.

use cca::core::resilience::{fault_seed_from_env, SplitMix64, SystemClock};
use cca::framework::fleet::{
    fleet_rank_env, ExecLauncher, FleetConfig, FleetEvent, FleetRankEnv, FleetSupervisor, HubLink,
    RankLauncher,
};
use cca::solvers::precond::Identity;
use cca::solvers::{HydroConfig, HydroSim, KrylovKind};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SCENARIO_ENV: &str = "CCA_FLEET_SCENARIO";
const STEPS_ENV: &str = "CCA_FLEET_STEPS";
const FLEET_SIZE: usize = 4;
const TOTAL_STEPS: u64 = 6;

fn hydro_cfg() -> HydroConfig {
    HydroConfig {
        nx: 12,
        ny: 12,
        dt: 2e-3,
        nu: 0.2,
        vx: 0.7,
        vy: -0.4,
        tol: 1e-10,
        max_iter: 400,
        kind: KrylovKind::Cg,
    }
}

fn bytes_of_f64s(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn f64s_of_bytes(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "checkpoint blob must be whole f64s");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn wait_until<T>(what: &str, deadline: Duration, mut probe: impl FnMut() -> Option<T>) -> T {
    let start = Instant::now();
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

fn run_child(env: FleetRankEnv) -> ! {
    match std::env::var(SCENARIO_ENV).as_deref() {
        Ok("sleep") => run_child_sleep(env),
        _ => run_child_hydro(env),
    }
}

/// Joins the hub and idles until killed (the shutdown scenario).
fn run_child_sleep(env: FleetRankEnv) -> ! {
    let link = HubLink::connect(
        &env.addr,
        env.rank,
        env.incarnation,
        &[],
        Duration::from_secs(30),
    )
    .expect("sleep child joins hub");
    loop {
        std::thread::sleep(Duration::from_millis(25));
        let _ = link.generation();
    }
}

/// One hydro rank: timestep loop with per-step checkpoints, rolling back
/// to the last committed checkpoint whenever the group generation bumps
/// (a peer died). Exits 0 after depositing the final mass.
fn run_child_hydro(env: FleetRankEnv) -> ! {
    let total_steps: u64 = std::env::var(STEPS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(TOTAL_STEPS);
    let label = format!("tcp+mux://{}/hydro.rank{}", env.addr, env.rank);
    let link = HubLink::connect(
        &env.addr,
        env.rank,
        env.incarnation,
        &[label],
        Duration::from_secs(30),
    )
    .expect("hydro child joins hub");
    let cfg = hydro_cfg();
    let mut sim = HydroSim::new(cfg, env.size as usize, env.rank as usize);
    let mut step: u64;

    loop {
        // Settle the whole group on the current generation, then roll
        // back to the committed checkpoint (or a fresh start).
        link.resync().expect("resync with fleet");
        match link.restore().expect("restore checkpoint") {
            Some((cstep, blob)) => {
                sim.u = f64s_of_bytes(&blob);
                step = cstep;
            }
            None => {
                sim = HydroSim::new(cfg, env.size as usize, env.rank as usize);
                step = 0;
            }
        }

        // A fresh Comm per epoch: collective sequence numbers restart
        // from zero on every rank, and the hub purged pre-death mail.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let comm = link.comm();
            while step < total_steps {
                sim.step(Some(&comm), &Identity).expect("hydro step");
                step += 1;
                link.checkpoint(step, &bytes_of_f64s(&sim.u))
                    .expect("stage checkpoint");
            }
            sim.mass(Some(&comm))
        }));
        match outcome {
            Ok(mass) => {
                link.deposit_result(&mass.to_le_bytes())
                    .expect("deposit final mass");
                link.leave().expect("clean departure");
                std::process::exit(0);
            }
            Err(payload) => {
                // Only a fleet interruption (generation bump) is
                // recoverable; anything else is a genuine defect.
                if !link.interrupted() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

fn fleet_config(seed: u64, size: usize) -> FleetConfig {
    let mut config = FleetConfig::new(size);
    config.seed = seed;
    config.base_backoff_ns = 20_000_000; // 20ms: fast restarts for CI
    config.max_backoff_ns = 200_000_000;
    config.healthy_after_ns = 50_000_000;
    config
}

fn hydro_launcher() -> Arc<dyn RankLauncher> {
    Arc::new(
        ExecLauncher::current_exe()
            .expect("resolve current test binary")
            .with_env(SCENARIO_ENV, "hydro")
            .with_env(STEPS_ENV, TOTAL_STEPS.to_string()),
    )
}

/// The unkilled reference: the same decomposition on in-process thread
/// ranks over the crossbeam substrate.
fn baseline_mass() -> f64 {
    let masses = cca::parallel::spmd(FLEET_SIZE, |comm| {
        let cfg = hydro_cfg();
        let mut sim = HydroSim::new(cfg, comm.size(), comm.rank());
        for _ in 0..TOTAL_STEPS {
            sim.step(Some(comm), &Identity).expect("baseline step");
        }
        sim.mass(Some(comm))
    });
    for m in &masses {
        assert!((m - masses[0]).abs() < 1e-15, "baseline ranks disagree");
    }
    masses[0]
}

fn scenario_kill_matrix(seed: u64) {
    let reference = baseline_mass();

    let mut rng = SplitMix64::new(seed);
    let victim = rng.next_below(FLEET_SIZE as u64) as usize;
    let kill_after_step = 1 + rng.next_below(2); // kill once step 1 or 2 committed
    eprintln!(
        "fleet kill-matrix: seed {seed} -> victim rank {victim} after committed step {kill_after_step}"
    );

    let sup = FleetSupervisor::new(
        fleet_config(seed, FLEET_SIZE),
        hydro_launcher(),
        SystemClock::new(),
    )
    .expect("bind fleet hub");
    sup.start();
    sup.start_monitor(Duration::from_millis(5));

    // Let the pipeline make real progress, then kill -9 mid-run.
    wait_until(
        "committed checkpoint before kill",
        Duration::from_secs(120),
        || sup.hub().committed_step().filter(|s| *s >= kill_after_step),
    );
    let dead_inc = sup.hub().latest_join(victim).expect("victim joined").0;
    assert!(sup.kill_rank(victim), "victim must be running when killed");

    // The run must still converge: every rank deposits a final mass.
    let results = wait_until(
        "all ranks' results after rejoin",
        Duration::from_secs(120),
        || sup.hub().all_results(),
    );
    assert_eq!(results.len(), FLEET_SIZE);
    for blob in &results {
        let mass = f64::from_le_bytes(blob.as_slice().try_into().expect("8-byte mass"));
        assert!(
            (mass - reference).abs() < 1e-12,
            "post-rejoin mass {mass} diverged from unkilled baseline {reference}"
        );
    }

    // The death was real and the recovery complete.
    assert!(sup.hub().generation() >= 1, "kill must bump the generation");
    let events = sup.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, FleetEvent::Died { rank, .. } if *rank == victim as u32)),
        "supervisor must record the victim's death"
    );
    assert!(
        events.iter().any(
            |e| matches!(e, FleetEvent::Rejoined { rank, incarnation, .. }
                if *rank == victim as u32 && *incarnation > dead_inc)
        ),
        "victim must rejoin with a newer incarnation"
    );
    // Stale-label guard at the process level: the victim's provider
    // label resolves only to the post-restart incarnation.
    let label = format!("tcp+mux://{}/hydro.rank{victim}", sup.addr());
    if let Some((rank, inc)) = sup.hub().resolve_provider(&label) {
        assert_eq!(rank, victim as u32);
        assert!(
            inc > dead_inc,
            "label must never resolve to the dead incarnation"
        );
    }

    sup.shutdown();
}

fn scenario_shutdown_no_zombies() {
    let launcher: Arc<dyn RankLauncher> = Arc::new(
        ExecLauncher::current_exe()
            .expect("resolve current test binary")
            .with_env(SCENARIO_ENV, "sleep"),
    );
    let sup = FleetSupervisor::new(fleet_config(7, 3), launcher, SystemClock::new())
        .expect("bind fleet hub");
    sup.start();
    sup.start_monitor(Duration::from_millis(5));
    wait_until("all sleep children joined", Duration::from_secs(60), || {
        (0..3).all(|r| sup.hub().present(r)).then_some(())
    });

    let statuses = sup.shutdown();
    assert_eq!(statuses.len(), 3);
    for (rank, status) in statuses {
        let status = status.expect("every mid-run child is killed and reaped");
        assert_eq!(
            status, -9,
            "rank {rank}: sleep children die by SIGKILL only"
        );
    }
}

/// Scans /proc for any process (other than us) still carrying
/// `CCA_FLEET_RANK` in its environment.
fn leaked_fleet_children() -> Vec<u32> {
    let me = std::process::id();
    let mut leaked = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return leaked;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        if pid == me {
            continue;
        }
        let Ok(environ) = std::fs::read(entry.path().join("environ")) else {
            continue;
        };
        if environ
            .split(|&b| b == 0)
            .any(|kv| kv.starts_with(b"CCA_FLEET_RANK="))
        {
            leaked.push(pid);
        }
    }
    leaked
}

fn main() {
    if let Some(env) = fleet_rank_env() {
        run_child(env);
    }
    // `cargo test` passes harness flags (--nocapture etc.); ignore them.
    let seed = fault_seed_from_env();

    scenario_kill_matrix(seed);
    eprintln!("fleet: kill-matrix converged (seed {seed})");

    scenario_shutdown_no_zombies();
    eprintln!("fleet: shutdown reaped every child");

    let leaked = leaked_fleet_children();
    assert!(leaked.is_empty(), "leaked fleet children: {leaked:?}");
    println!("fleet: all scenarios passed (seed {seed})");
}
