//! Remote components over TCP, end to end: the Figure-2 pipeline with its
//! provider on the far side of a real socket, a hostile-network battery
//! (mid-call hangups, quarantine, half-open recovery — no wall-clock
//! sleeps for any breaker timing), a 16-thread stress run through one
//! pooled transport, and the seed-deterministic remote fault matrix the
//! CI `fault-matrix` job replays across seeds {1, 7, 42, 1999}.
//!
//! The same battery then runs against the *multiplexed* stack
//! (`MuxServer`/`MuxTransport`): same `Dispatcher`, same servants, same
//! breaker timing on the mock clock — plus mux-specific coverage
//! (out-of-order completions through one socket, a killed connection
//! fanning its error to every in-flight call).

use cca::core::event::RecordingListener;
use cca::core::resilience::{
    fault_seed_from_env, BreakerPolicy, CallPolicy, MockClock, RetryPolicy,
};
use cca::core::{CcaError, CcaServices, Component, ConfigEvent, GoPort, PortHandle};
use cca::framework::{Framework, RemoteTransportKind};
use cca::repository::Repository;
use cca::rpc::transport::Dispatcher;
use cca::rpc::{
    MuxServer, MuxTransport, ObjRef, Orb, TcpServer, TcpTransport, CONNECTION_EXCEPTION_TYPE,
};
use cca::sidl::{DynObject, DynValue, SidlError};
use cca_data::TypeMap;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

/// A servant that echoes `2 * x` — arg-dependent replies make crossed or
/// duplicated responses visible as value mismatches, not just id checks.
struct Doubler {
    calls: AtomicU64,
}

impl DynObject for Doubler {
    fn sidl_type(&self) -> &str {
        "test.Doubler"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "double" => Ok(DynValue::Long(2 * args[0].as_long()?)),
            "count" => Ok(DynValue::Long(
                self.calls.fetch_add(1, Ordering::SeqCst) as i64
            )),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

/// A provider component exposing the Doubler with the dynamic facade that
/// `export_port` requires.
struct DoublerProvider;
impl Component for DoublerProvider {
    fn component_type(&self) -> &str {
        "test.DoublerProvider"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let dynamic: Arc<dyn DynObject> = Arc::new(Doubler {
            calls: AtomicU64::new(0),
        });
        services.add_provides_port(
            PortHandle::new("out", "test.Doubler", Arc::clone(&dynamic)).with_dynamic(dynamic),
        )
    }
}

/// A consumer with one uses slot; calls go through the dynamic facade
/// because typed ports cannot cross the wire.
struct RemoteConsumer;
impl Component for RemoteConsumer {
    fn component_type(&self) -> &str {
        "test.RemoteConsumer"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("in", "test.Doubler", TypeMap::new())
    }
}

/// Server-side framework hosting one exported Doubler, already on the
/// network. Returns (framework, server, addr, remote key).
fn serve_doubler() -> (Arc<Framework>, Arc<TcpServer>, String, String) {
    let fw = Framework::new(Repository::new());
    fw.add_instance("provider0", Arc::new(DoublerProvider))
        .unwrap();
    let key = fw.export_port("provider0", "out").unwrap();
    let server = fw.serve_tcp("127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    (fw, server, addr, key)
}

// ---------------------------------------------------------------------
// Figure 2 over TCP: the acceptance pipeline, provider remote.
// ---------------------------------------------------------------------

struct RampSource {
    state: Mutex<f64>,
}
impl DynObject for RampSource {
    fn sidl_type(&self) -> &str {
        "pipes.Source"
    }
    fn invoke(&self, method: &str, _args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "next" => {
                let mut s = self.state.lock();
                *s += 1.0;
                Ok(DynValue::Double(*s))
            }
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}
impl Component for RampSource {
    fn component_type(&self) -> &str {
        "pipes.RampSource"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let dynamic: Arc<dyn DynObject> = Arc::new(RampSource {
            state: Mutex::new(0.0),
        });
        services.add_provides_port(
            PortHandle::new("out", "pipes.Source", Arc::clone(&dynamic)).with_dynamic(dynamic),
        )
    }
}

struct SummingSink {
    total: Mutex<f64>,
}
impl DynObject for SummingSink {
    fn sidl_type(&self) -> &str {
        "pipes.Sink"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "push" => {
                let mut t = self.total.lock();
                *t += args[0].as_double()?;
                Ok(DynValue::Double(*t))
            }
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}
impl Component for SummingSink {
    fn component_type(&self) -> &str {
        "pipes.SummingSink"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let dynamic: Arc<dyn DynObject> = Arc::new(SummingSink {
            total: Mutex::new(0.0),
        });
        services.add_provides_port(
            PortHandle::new("in", "pipes.Sink", Arc::clone(&dynamic)).with_dynamic(dynamic),
        )
    }
}

/// The Figure-2 driver, dynamic-facade flavour: same pump loop, but each
/// step is a marshaled invocation because the peers are remote.
struct Pump {
    n: usize,
    services: Mutex<Option<Arc<CcaServices>>>,
    last_total: Mutex<f64>,
}
impl Component for Pump {
    fn component_type(&self) -> &str {
        "pipes.Pump"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("from", "pipes.Source", TypeMap::new())?;
        services.register_uses_port("to", "pipes.Sink", TypeMap::new())?;
        *self.services.lock() = Some(services);
        Ok(())
    }
}
impl GoPort for Pump {
    fn go(&self) -> Result<(), CcaError> {
        let services = self.services.lock().clone().expect("wired");
        let from = services.get_port("from")?;
        let source = from
            .dynamic()
            .expect("remote handles carry a dynamic facade");
        let to = services.get_port("to")?;
        let sink = to.dynamic().expect("remote handles carry a dynamic facade");
        let mut total = 0.0;
        for _ in 0..self.n {
            let v = source.invoke("next", vec![])?.as_double()?;
            total = sink
                .invoke("push", vec![DynValue::Double(v)])?
                .as_double()?;
        }
        *self.last_total.lock() = total;
        Ok(())
    }
}

/// The Figure-2 pipeline with source and sink living in a *different*
/// framework reached over real sockets. The pump and the assertion are
/// unchanged from `tests/figure2_pipeline.rs`; only the connect calls
/// differ (`connect_remote` instead of `connect`).
#[test]
fn figure2_pipeline_runs_over_tcp() {
    // Server side: a framework hosting the two providers, on the network.
    let server_fw = Framework::new(Repository::new());
    server_fw
        .add_instance(
            "source0",
            Arc::new(RampSource {
                state: Mutex::new(0.0),
            }),
        )
        .unwrap();
    server_fw
        .add_instance(
            "sink0",
            Arc::new(SummingSink {
                total: Mutex::new(0.0),
            }),
        )
        .unwrap();
    let source_key = server_fw.export_port("source0", "out").unwrap();
    let sink_key = server_fw.export_port("sink0", "in").unwrap();
    let server = server_fw.serve_tcp("127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Client side: the pump, wired to the remote ports.
    let client_fw = Framework::new(Repository::new());
    let pump = Arc::new(Pump {
        n: 10,
        services: Mutex::new(None),
        last_total: Mutex::new(0.0),
    });
    client_fw.add_instance("pump0", pump.clone()).unwrap();
    let go: Arc<dyn GoPort> = pump.clone();
    client_fw
        .services("pump0")
        .unwrap()
        .add_provides_port(PortHandle::new(
            "go",
            cca::core::component::GO_PORT_TYPE,
            go,
        ))
        .unwrap();

    client_fw
        .connect_remote("pump0", "from", &addr, &source_key)
        .unwrap();
    client_fw
        .connect_remote("pump0", "to", &addr, &sink_key)
        .unwrap();
    client_fw.run_go("pump0", "go").unwrap();

    // 1+2+...+10 = 55, computed across 20 real round trips. Shut down
    // first: that joins the handler threads, so the dispatch counter is
    // final when read.
    assert_eq!(*pump.last_total.lock(), 55.0);
    server.shutdown();
    assert_eq!(server.dispatched(), 20);
}

// ---------------------------------------------------------------------
// Hostile network: hangups → typed errors → quarantine → half-open heal.
// ---------------------------------------------------------------------

/// The server drops the socket mid-call; the client observes a typed
/// `CcaError` (never a hang), the breaker quarantines the remote provider
/// (published as a configuration event, labelled `tcp://{addr}/{key}`),
/// and once the network heals and the cooldown passes — on a mock clock,
/// no wall-clock sleeps — the half-open probe re-dials and recovers.
#[test]
fn mid_call_hangups_quarantine_the_remote_provider_until_the_probe_heals() {
    let (_server_fw, server, addr, key) = serve_doubler();
    let seed = fault_seed_from_env();

    let client_fw = Framework::new(Repository::new());
    let rec = RecordingListener::new();
    client_fw.add_listener(rec.clone());
    client_fw
        .add_instance("u0", Arc::new(RemoteConsumer))
        .unwrap();
    let services = client_fw.services("u0").unwrap();

    // Breaker on a mock clock: threshold 2, cooldown 10 µs of simulated
    // time. Installed on the slot *before* connecting, as a builder would.
    let clock = MockClock::new();
    let policy = CallPolicy::with_clock(clock.clone()).with_breaker(BreakerPolicy::new(2, 10_000));
    services.set_call_policy("in", Arc::new(policy)).unwrap();
    client_fw.connect_remote("u0", "in", &addr, &key).unwrap();

    let provider_label = format!("tcp://{addr}/{key}");
    assert!(
        rec.events().iter().any(|e| matches!(
            e,
            ConfigEvent::Connected { provider, .. } if *provider == provider_label
        )),
        "remote connection published with its tcp:// provider label"
    );

    let mut port = services.cached_port::<dyn DynObject>("in");
    fn call(p: &(dyn DynObject + 'static)) -> Result<DynValue, CcaError> {
        p.invoke("double", vec![DynValue::Long(21)])
            .map_err(CcaError::from)
    }

    // Sanity: the healthy path round-trips.
    assert!(matches!(port.call(call).unwrap(), DynValue::Long(42)));

    // Hostile phase: every request is read, then the socket is shut down
    // before any reply. Each call must come back as a typed error — the
    // blocking read sees EOF, not a hang.
    server.set_fault_plan(seed, 1000);
    for _ in 0..2 {
        let err = port.call(call).unwrap_err();
        assert!(
            err.to_string().contains(CONNECTION_EXCEPTION_TYPE),
            "mid-call hangup must surface as a connection failure, got: {err}"
        );
    }
    assert_eq!(server.dropped_mid_call(), 2);

    // Threshold 2 reached: the breaker opened and the quarantine was
    // published against the tcp:// provider label.
    assert!(rec.events().iter().any(|e| matches!(
        e,
        ConfigEvent::ProviderQuarantined { provider, .. } if *provider == provider_label
    )));
    let breaker = services.connection_breaker("in", 0).unwrap().unwrap();
    assert!(
        !breaker.admit(),
        "open breaker denies admission in cooldown"
    );

    // While quarantined, calls fail fast without touching the network.
    let dropped_before = server.dropped_mid_call();
    assert!(port.call(call).is_err());
    assert_eq!(
        server.dropped_mid_call(),
        dropped_before,
        "quarantined calls must not reach the server"
    );

    // Heal the network and pass the cooldown in simulated time: the next
    // call is the half-open probe — it re-dials (the pool discarded every
    // errored connection) and closes the breaker on success.
    server.set_fault_plan(seed, 0);
    clock.advance_ns(20_000);
    let accepted_before = server.connections_accepted();
    assert!(matches!(port.call(call).unwrap(), DynValue::Long(42)));
    assert!(
        server.connections_accepted() > accepted_before,
        "recovery must re-dial: every errored connection was discarded"
    );
    assert!(rec.events().iter().any(|e| matches!(
        e,
        ConfigEvent::ProviderRecovered { provider, .. } if *provider == provider_label
    )));
    server.shutdown();
}

// ---------------------------------------------------------------------
// Concurrency: 16 threads through one pooled transport.
// ---------------------------------------------------------------------

/// 16 client threads share one pooled `TcpTransport` (4 connections) into
/// one server. Replies are arg-dependent, so a lost, duplicated, or
/// crossed request id shows up as a wrong value or a correlation error.
/// Shutdown joins every handler thread the server ever spawned.
#[test]
fn sixteen_threads_share_one_pooled_connection_without_crossing_replies() {
    const THREADS: u64 = 16;
    const CALLS_PER_THREAD: u64 = 200;

    let orb = Orb::new();
    orb.register(
        "doubler",
        Arc::new(Doubler {
            calls: AtomicU64::new(0),
        }),
    );
    let server = TcpServer::bind("127.0.0.1:0", orb as Arc<dyn Dispatcher>).unwrap();
    let transport = Arc::new(TcpTransport::new(server.local_addr().to_string()));
    assert_eq!(transport.pool_size(), 4);
    let objref = ObjRef::new(
        "doubler",
        Arc::clone(&transport) as Arc<dyn cca::rpc::Transport>,
    );

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let objref = Arc::clone(&objref);
            std::thread::spawn(move || {
                for k in 0..CALLS_PER_THREAD {
                    // Unique argument per (thread, call): a reply delivered
                    // to the wrong caller cannot produce the right value.
                    let x = (t * 1_000_000 + k) as i64;
                    let reply = objref.invoke("double", vec![DynValue::Long(x)]).unwrap();
                    assert!(matches!(reply, DynValue::Long(v) if v == 2 * x));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    assert!(transport.live_connections() <= 4);
    assert!(
        transport.metrics().dials() <= 4,
        "healthy traffic must reuse pooled connections, dials = {}",
        transport.metrics().dials()
    );

    // Clean shutdown: every handler thread the server spawned is joined —
    // one per accepted connection — and a second shutdown is a no-op.
    let joined = server.shutdown();
    assert_eq!(joined as u64, server.connections_accepted());
    assert_eq!(server.shutdown(), 0);

    // With the handlers joined the dispatch counter is final: the server
    // replied exactly once per call — nothing lost, nothing duplicated.
    assert_eq!(server.dispatched(), THREADS * CALLS_PER_THREAD);
}

// ---------------------------------------------------------------------
// The CI fault matrix, remote edition.
// ---------------------------------------------------------------------

/// The remote fault scenario is a pure function of `CCA_FAULT_SEED`: a
/// server dropping ~30% of requests mid-call, a client retrying through a
/// seeded policy on a mock clock. Two fresh runs must produce identical
/// per-call outcome vectors.
#[test]
fn remote_fault_scenario_is_deterministic_per_seed() {
    let seed = fault_seed_from_env();

    let run_scenario = || -> Vec<bool> {
        let orb = Orb::new();
        orb.register(
            "doubler",
            Arc::new(Doubler {
                calls: AtomicU64::new(0),
            }),
        );
        let server = TcpServer::bind("127.0.0.1:0", orb as Arc<dyn Dispatcher>).unwrap();
        server.set_fault_plan(seed, 300);
        // Pool of 1: a single-threaded client serializes requests, so the
        // server consumes its fault draws in a deterministic order.
        let transport =
            Arc::new(TcpTransport::new(server.local_addr().to_string()).with_pool_size(1));
        let objref = ObjRef::new("doubler", transport as Arc<dyn cca::rpc::Transport>);
        let clock = MockClock::new();
        let policy = CallPolicy::with_clock(clock)
            .with_retry(RetryPolicy::new(3, 100, 1_000).with_jitter_seed(seed));
        let outcomes: Vec<bool> = (0..60)
            .map(|i| {
                policy
                    .execute("doubler.double", None, |_| {
                        objref
                            .invoke("double", vec![DynValue::Long(i)])
                            .map_err(CcaError::from)
                    })
                    .is_ok()
            })
            .collect();
        server.shutdown();
        outcomes
    };

    let first = run_scenario();
    let second = run_scenario();
    assert_eq!(
        first, second,
        "the remote fault schedule must be a pure function of seed {seed}"
    );
    // Three attempts against a 30% drop rate: the vast majority of calls
    // survive retry for every matrix seed.
    let successes = first.iter().filter(|ok| **ok).count();
    assert!(
        successes >= 48,
        "seed {seed}: only {successes}/60 calls survived retry"
    );
}

// ---------------------------------------------------------------------
// Robustness: garbage on the wire never takes the server down.
// ---------------------------------------------------------------------

/// Raw garbage and oversized frames get the offending connection closed
/// (framing has no resync point), while well-formed clients keep working.
#[test]
fn garbage_and_oversized_frames_only_kill_their_own_connection() {
    let orb = Orb::new();
    orb.register(
        "doubler",
        Arc::new(Doubler {
            calls: AtomicU64::new(0),
        }),
    );
    let server = TcpServer::bind("127.0.0.1:0", orb as Arc<dyn Dispatcher>).unwrap();
    let addr = server.local_addr();

    // A peer speaking nonsense (at least one full header's worth, so the
    // server's header read completes): hangup (EOF), no reply.
    let mut garbage = TcpStream::connect(addr).unwrap();
    garbage
        .write_all(b"GET /frames HTTP/1.1\r\nHost: nope\r\n\r\n")
        .unwrap();
    let mut buf = [0u8; 64];
    assert_eq!(garbage.read(&mut buf).unwrap(), 0, "bad magic => hangup");

    // A peer declaring an absurd payload length: rejected from the header
    // alone, before any payload is buffered.
    let mut oversized = TcpStream::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(b"CCAR"); // magic
    header.push(1); // version
    header.push(0); // kind = Request
    header.extend_from_slice(&[0, 0]); // reserved
    header.extend_from_slice(&7u64.to_le_bytes()); // request id
    header.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB payload
    oversized.write_all(&header).unwrap();
    assert_eq!(oversized.read(&mut buf).unwrap(), 0, "oversized => hangup");

    // Meanwhile a well-formed client is unaffected.
    let objref = ObjRef::tcp("doubler", addr.to_string());
    let reply = objref.invoke("double", vec![DynValue::Long(5)]).unwrap();
    assert!(matches!(reply, DynValue::Long(10)));
    server.shutdown();
    assert_eq!(server.dispatched(), 1);
}

// ---------------------------------------------------------------------
// The same battery against the multiplexed stack.
// ---------------------------------------------------------------------

/// Server-side framework hosting one exported Doubler behind a
/// `MuxServer`. Returns (framework, server, addr, remote key).
fn serve_doubler_mux() -> (Arc<Framework>, Arc<MuxServer>, String, String) {
    let fw = Framework::new(Repository::new());
    fw.add_instance("provider0", Arc::new(DoublerProvider))
        .unwrap();
    let key = fw.export_port("provider0", "out").unwrap();
    let server = fw.serve_tcp_mux("127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    (fw, server, addr, key)
}

/// Figure 2 with the remote providers served by the event-driven
/// `MuxServer` and reached through `RemoteTransportKind::Mux`: the pump,
/// the servants, and the arithmetic are identical to the pooled run —
/// the Dispatcher seam means nothing above the transport can tell.
#[test]
fn figure2_pipeline_runs_over_mux() {
    let server_fw = Framework::new(Repository::new());
    server_fw
        .add_instance(
            "source0",
            Arc::new(RampSource {
                state: Mutex::new(0.0),
            }),
        )
        .unwrap();
    server_fw
        .add_instance(
            "sink0",
            Arc::new(SummingSink {
                total: Mutex::new(0.0),
            }),
        )
        .unwrap();
    let source_key = server_fw.export_port("source0", "out").unwrap();
    let sink_key = server_fw.export_port("sink0", "in").unwrap();
    let server = server_fw.serve_tcp_mux("127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let client_fw = Framework::new(Repository::new());
    let pump = Arc::new(Pump {
        n: 10,
        services: Mutex::new(None),
        last_total: Mutex::new(0.0),
    });
    client_fw.add_instance("pump0", pump.clone()).unwrap();
    let go: Arc<dyn GoPort> = pump.clone();
    client_fw
        .services("pump0")
        .unwrap()
        .add_provides_port(PortHandle::new(
            "go",
            cca::core::component::GO_PORT_TYPE,
            go,
        ))
        .unwrap();

    client_fw
        .connect_remote_with(
            "pump0",
            "from",
            &addr,
            &source_key,
            RemoteTransportKind::Mux,
        )
        .unwrap();
    client_fw
        .connect_remote_with("pump0", "to", &addr, &sink_key, RemoteTransportKind::Mux)
        .unwrap();
    client_fw.run_go("pump0", "go").unwrap();

    assert_eq!(*pump.last_total.lock(), 55.0);
    server.shutdown();
    assert_eq!(server.dispatched(), 20);
}

/// The hostile-network scenario, mux edition: mid-call hangups surface as
/// typed `ConnectionFailure`, the breaker quarantines the provider under
/// its `tcp+mux://` label, fail-fast calls never touch the network, and
/// the half-open probe re-dials and recovers — all breaker timing on the
/// mock clock.
#[test]
fn mid_call_hangups_quarantine_the_mux_provider_until_the_probe_heals() {
    let (_server_fw, server, addr, key) = serve_doubler_mux();
    let seed = fault_seed_from_env();

    let client_fw = Framework::new(Repository::new());
    let rec = RecordingListener::new();
    client_fw.add_listener(rec.clone());
    client_fw
        .add_instance("u0", Arc::new(RemoteConsumer))
        .unwrap();
    let services = client_fw.services("u0").unwrap();

    let clock = MockClock::new();
    let policy = CallPolicy::with_clock(clock.clone()).with_breaker(BreakerPolicy::new(2, 10_000));
    services.set_call_policy("in", Arc::new(policy)).unwrap();
    client_fw
        .connect_remote_with("u0", "in", &addr, &key, RemoteTransportKind::Mux)
        .unwrap();

    let provider_label = format!("tcp+mux://{addr}/{key}");
    assert!(
        rec.events().iter().any(|e| matches!(
            e,
            ConfigEvent::Connected { provider, .. } if *provider == provider_label
        )),
        "mux connection published with its tcp+mux:// provider label"
    );

    let mut port = services.cached_port::<dyn DynObject>("in");
    fn call(p: &(dyn DynObject + 'static)) -> Result<DynValue, CcaError> {
        p.invoke("double", vec![DynValue::Long(21)])
            .map_err(CcaError::from)
    }

    assert!(matches!(port.call(call).unwrap(), DynValue::Long(42)));

    // Hostile phase: the event loop hangs up on every decoded request.
    server.set_fault_plan(seed, 1000);
    for _ in 0..2 {
        let err = port.call(call).unwrap_err();
        assert!(
            err.to_string().contains(CONNECTION_EXCEPTION_TYPE),
            "mid-call hangup must surface as a connection failure, got: {err}"
        );
    }
    assert_eq!(server.dropped_mid_call(), 2);

    assert!(rec.events().iter().any(|e| matches!(
        e,
        ConfigEvent::ProviderQuarantined { provider, .. } if *provider == provider_label
    )));
    let breaker = services.connection_breaker("in", 0).unwrap().unwrap();
    assert!(
        !breaker.admit(),
        "open breaker denies admission in cooldown"
    );

    // Fail-fast while quarantined: no new fault draws consumed.
    let dropped_before = server.dropped_mid_call();
    assert!(port.call(call).is_err());
    assert_eq!(
        server.dropped_mid_call(),
        dropped_before,
        "quarantined calls must not reach the server"
    );

    // Heal + cooldown in simulated time: the half-open probe re-dials a
    // fresh mux connection (the dead one was torn down) and recovers.
    server.set_fault_plan(seed, 0);
    clock.advance_ns(20_000);
    let accepted_before = server.connections_accepted();
    assert!(matches!(port.call(call).unwrap(), DynValue::Long(42)));
    assert!(
        server.connections_accepted() > accepted_before,
        "recovery must re-dial: the errored mux connection was torn down"
    );
    assert!(rec.events().iter().any(|e| matches!(
        e,
        ConfigEvent::ProviderRecovered { provider, .. } if *provider == provider_label
    )));
    server.shutdown();
}

/// A servant whose reply time depends on its argument: early requests
/// finish *last*, so replies come back out of submission order and only
/// id-routing (not FIFO order) can deliver them correctly.
struct StaggeredDoubler;
impl DynObject for StaggeredDoubler {
    fn sidl_type(&self) -> &str {
        "test.Doubler"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "double" => {
                let x = args[0].as_long()?;
                // x = 0 sleeps longest; x = 7 replies almost immediately.
                std::thread::sleep(Duration::from_millis(5 * (8 - (x % 8)) as u64));
                Ok(DynValue::Long(2 * x))
            }
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

/// Out-of-order completion: 8 threads issue staggered calls through ONE
/// mux connection. The server dispatches them in parallel, so replies
/// arrive in roughly *reverse* submission order — and every caller still
/// gets its own answer, pipelined on a single socket.
#[test]
fn out_of_order_completions_route_to_their_own_callers_over_one_socket() {
    const THREADS: i64 = 8;
    const ROUNDS: i64 = 5;

    let orb = Orb::new();
    orb.register("doubler", Arc::new(StaggeredDoubler));
    let server = MuxServer::bind("127.0.0.1:0", orb as Arc<dyn Dispatcher>).unwrap();
    let transport =
        Arc::new(MuxTransport::new(server.local_addr().to_string()).with_connections(1));
    let objref = ObjRef::new(
        "doubler",
        Arc::clone(&transport) as Arc<dyn cca::rpc::Transport>,
    );

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let objref = Arc::clone(&objref);
            std::thread::spawn(move || {
                for k in 0..ROUNDS {
                    // Unique argument per (thread, round): a reply routed to
                    // the wrong waiter cannot produce the right value.
                    let x = t + THREADS * k;
                    let reply = objref.invoke("double", vec![DynValue::Long(x)]).unwrap();
                    assert!(matches!(reply, DynValue::Long(v) if v == 2 * x));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // One socket carried all of it, concurrently.
    assert_eq!(server.connections_accepted(), 1, "single mux connection");
    assert_eq!(transport.metrics().dials(), 1);
    assert!(
        transport.mux_metrics().peak_in_flight() >= 2,
        "staggered calls overlapped in flight (peak = {})",
        transport.mux_metrics().peak_in_flight()
    );
    assert_eq!(transport.mux_metrics().protocol_violations(), 0);
    server.shutdown();
    assert_eq!(server.dispatched(), (THREADS * ROUNDS) as u64);
}

/// A killed mux connection fails *every* call in flight on it with the
/// typed `ConnectionFailure` — the error the breaker counts. Five calls
/// are parked server-side (staggered sleeps), then a sixth request trips
/// the armed fault plan and the event loop hangs up the connection.
#[test]
fn killed_mux_connection_fails_all_in_flight_calls_with_typed_errors() {
    let orb = Orb::new();
    orb.register("doubler", Arc::new(StaggeredDoubler));
    let server = MuxServer::bind("127.0.0.1:0", orb as Arc<dyn Dispatcher>).unwrap();
    let transport =
        Arc::new(MuxTransport::new(server.local_addr().to_string()).with_connections(1));

    // Five slow calls in flight (x = 0 sleeps 40 ms server-side).
    let request = |request_id: u64, x: i64| {
        cca::rpc::encode_request(&cca::rpc::Request {
            request_id,
            object_key: "doubler".into(),
            operation: "double".into(),
            args: vec![DynValue::Long(x)],
        })
        .unwrap()
    };
    let in_flight: Vec<_> = (0..5)
        .map(|i| transport.submit(request(i, 0)).unwrap())
        .collect();

    // The sixth request consumes the armed fault draw: hangup mid-call.
    server.set_fault_plan(1, 1000);
    let trigger = transport.submit(request(6, 7));

    // Every one of the six surfaces the typed connection failure; none
    // hang waiting for replies that will never come.
    let mut failures = 0;
    for pending in in_flight {
        match pending.wait() {
            Err(SidlError::UserException { exception_type, .. }) => {
                assert_eq!(exception_type, CONNECTION_EXCEPTION_TYPE);
                failures += 1;
            }
            Err(other) => panic!("expected a connection failure, got {other:?}"),
            Ok(_) => panic!("no reply can precede the hangup"),
        }
    }
    assert_eq!(failures, 5, "the fan-out reached every in-flight call");
    match trigger {
        Ok(pending) => match pending.wait() {
            Err(SidlError::UserException { exception_type, .. }) => {
                assert_eq!(exception_type, CONNECTION_EXCEPTION_TYPE)
            }
            other => panic!("expected a connection failure, got {other:?}"),
        },
        // The teardown may win the race against the submit itself.
        Err(SidlError::UserException { exception_type, .. }) => {
            assert_eq!(exception_type, CONNECTION_EXCEPTION_TYPE)
        }
        Err(other) => panic!("expected a connection failure, got {other:?}"),
    }
    assert_eq!(server.dropped_mid_call(), 1);
    server.shutdown();
}

/// The CI fault matrix against the mux stack: with one connection and a
/// serialized caller, the event loop consumes fault draws in request
/// order, so the outcome vector is a pure function of the seed — same
/// contract as the pooled transport.
#[test]
fn mux_fault_scenario_is_deterministic_per_seed() {
    let seed = fault_seed_from_env();

    let run_scenario = || -> Vec<bool> {
        let orb = Orb::new();
        orb.register(
            "doubler",
            Arc::new(Doubler {
                calls: AtomicU64::new(0),
            }),
        );
        let server = MuxServer::bind("127.0.0.1:0", orb as Arc<dyn Dispatcher>).unwrap();
        server.set_fault_plan(seed, 300);
        let transport =
            Arc::new(MuxTransport::new(server.local_addr().to_string()).with_connections(1));
        let objref = ObjRef::new("doubler", transport as Arc<dyn cca::rpc::Transport>);
        let clock = MockClock::new();
        let policy = CallPolicy::with_clock(clock)
            .with_retry(RetryPolicy::new(3, 100, 1_000).with_jitter_seed(seed));
        let outcomes: Vec<bool> = (0..60)
            .map(|i| {
                policy
                    .execute("doubler.double", None, |_| {
                        objref
                            .invoke("double", vec![DynValue::Long(i)])
                            .map_err(CcaError::from)
                    })
                    .is_ok()
            })
            .collect();
        server.shutdown();
        outcomes
    };

    let first = run_scenario();
    let second = run_scenario();
    assert_eq!(
        first, second,
        "the mux fault schedule must be a pure function of seed {seed}"
    );
    let successes = first.iter().filter(|ok| **ok).count();
    assert!(
        successes >= 48,
        "seed {seed}: only {successes}/60 calls survived retry"
    );
}

/// Garbage and oversized frames against the event-driven server: the
/// offending connection is closed from the header alone, and a
/// well-formed client on another connection never notices.
#[test]
fn garbage_and_oversized_frames_only_kill_their_own_mux_connection() {
    let orb = Orb::new();
    orb.register(
        "doubler",
        Arc::new(Doubler {
            calls: AtomicU64::new(0),
        }),
    );
    let server = MuxServer::bind("127.0.0.1:0", orb as Arc<dyn Dispatcher>).unwrap();
    let addr = server.local_addr();

    let mut garbage = TcpStream::connect(addr).unwrap();
    garbage
        .write_all(b"GET /frames HTTP/1.1\r\nHost: nope\r\n\r\n")
        .unwrap();
    let mut buf = [0u8; 64];
    assert_eq!(garbage.read(&mut buf).unwrap(), 0, "bad magic => hangup");

    let mut oversized = TcpStream::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(b"CCAR"); // magic
    header.push(1); // version
    header.push(0); // kind = Request
    header.extend_from_slice(&[0, 0]); // reserved
    header.extend_from_slice(&7u64.to_le_bytes()); // request id
    header.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB payload
    oversized.write_all(&header).unwrap();
    assert_eq!(oversized.read(&mut buf).unwrap(), 0, "oversized => hangup");

    // Meanwhile a well-formed mux client is unaffected.
    let transport = Arc::new(MuxTransport::new(addr.to_string()));
    let objref = ObjRef::new("doubler", transport as Arc<dyn cca::rpc::Transport>);
    let reply = objref.invoke("double", vec![DynValue::Long(5)]).unwrap();
    assert!(matches!(reply, DynValue::Long(10)));
    server.shutdown();
    assert_eq!(server.dispatched(), 1);
}
