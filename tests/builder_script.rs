//! Builder scripts (Ccaffeine-style) driving the full ESI solver assembly:
//! the reproducible-scenario workflow a CCA user would actually run.

use cca::framework::Framework;
use cca::repository::{ComponentEntry, PortSpec, Repository};
use cca::solvers::esi::{
    expose_precond_ports, expose_solver_ports, LinearSolverPort, MatrixComponent, PrecondComponent,
    PrecondKind, SolverComponent, SolverConfig, ESI_SIDL,
};
use cca::solvers::CsrMatrix;
use cca_data::TypeMap;
use std::sync::Arc;

fn esi_repo(a: CsrMatrix) -> Arc<Repository> {
    let repo = Repository::new();
    repo.deposit_sidl(ESI_SIDL).unwrap();
    let a = Arc::new(a);
    repo.register_component(ComponentEntry {
        class: "esi.MatrixComponent".into(),
        description: "CSR matrix provider".into(),
        provides: vec![PortSpec::new("A", "esi.MatrixOperator")],
        uses: vec![],
        properties: TypeMap::new(),
        factory: Arc::new(move || {
            MatrixComponent::new((*a).clone()) as Arc<dyn cca::core::Component>
        }),
    })
    .unwrap();
    repo
}

#[test]
fn script_assembles_the_solver_chain() {
    let a = CsrMatrix::laplacian_2d(8, 8);
    let n = a.nrows();
    let fw = Framework::new(esi_repo(a));

    // Instantiate the matrix from the repository *by script*; the solver
    // and preconditioner need two-phase port exposure, so they are added
    // programmatically, then wired by script.
    fw.run_script("instantiate esi.MatrixComponent matrix0")
        .unwrap();
    let precond = PrecondComponent::new(PrecondKind::Jacobi);
    let solver = SolverComponent::new(SolverConfig::default());
    fw.add_instance("precond0", precond.clone()).unwrap();
    fw.add_instance("solver0", solver.clone()).unwrap();
    expose_precond_ports(&precond).unwrap();
    expose_solver_ports(&solver).unwrap();

    fw.run_script(
        "
        # Figure 1 wiring
        connect precond0 A matrix0 A
        connect solver0  A matrix0 A
        connect solver0  M precond0 M
        ",
    )
    .unwrap();

    let port: Arc<dyn LinearSolverPort> = fw
        .services("solver0")
        .unwrap()
        .get_provides_port("solver")
        .unwrap()
        .typed()
        .unwrap();
    let b: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
    let (x, stats) = port.solve_system(&b).unwrap();
    assert!(stats.converged);
    assert_eq!(x.len(), n);

    // Scripted teardown breaks the connections cleanly.
    fw.run_script("disconnect solver0 M precond0\nremove precond0")
        .unwrap();
    assert!(fw.instance_names().iter().all(|name| name != "precond0"));
    // The solver degrades to unpreconditioned but still works.
    let (_, stats2) = port.solve_system(&b).unwrap();
    assert!(stats2.converged);
    assert!(stats2.iterations >= stats.iterations);
}

#[test]
fn scripted_proxied_connection() {
    let a = CsrMatrix::laplacian_2d(6, 6);
    let fw = Framework::new(esi_repo(a));
    fw.run_script("instantiate esi.MatrixComponent matrix0")
        .unwrap();
    let solver = SolverComponent::new(SolverConfig::default());
    fw.add_instance("solver0", solver.clone()).unwrap();
    expose_solver_ports(&solver).unwrap();
    // Explicit per-connection policy in the script.
    fw.run_script("connect solver0 A matrix0 A proxied")
        .unwrap();
    assert_eq!(fw.orb().keys(), vec!["matrix0/A".to_string()]);
    // The typed solve path cannot run over a proxy (its operator port is
    // dynamic-only now) — the solver reports the failure as an error, not
    // a crash.
    let port: Arc<dyn LinearSolverPort> = fw
        .services("solver0")
        .unwrap()
        .get_provides_port("solver")
        .unwrap()
        .typed()
        .unwrap();
    let b = vec![1.0; 36];
    assert!(port.solve_system(&b).is_err());
}
