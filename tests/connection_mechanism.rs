//! F3 — Figure 3's connection mechanism, reproduced step by step:
//!
//! 1. Component 1 passes its provided interface to its `CCAServices` via
//!    `addProvidesPort()`.
//! 2. At the framework's option, either the interface **or a proxy for
//!    it** is given to Component 2.
//! 3. …through Component 2's `CCAServices` handle.
//! 4. Component 2 retrieves the interface using `getPort()`.
//!
//! The test asserts the two framework options are observationally
//! identical to the components.

use cca::core::{CcaError, CcaServices, Component, PortHandle};
use cca::framework::{ConnectionPolicy, Framework};
use cca::repository::Repository;
use cca::sidl::{DynObject, DynValue, SidlError};
use cca_data::TypeMap;
use parking_lot::Mutex;
use std::sync::Arc;

/// The port Component 1 provides.
trait TemperaturePort: Send + Sync {
    fn reading(&self) -> f64;
}

struct Thermometer {
    value: Mutex<f64>,
}

impl TemperaturePort for Thermometer {
    fn reading(&self) -> f64 {
        *self.value.lock()
    }
}

impl DynObject for Thermometer {
    fn sidl_type(&self) -> &str {
        "lab.TemperaturePort"
    }
    fn invoke(&self, method: &str, _args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "reading" => Ok(DynValue::Double(self.reading())),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

struct Component1 {
    sensor: Arc<Thermometer>,
}

impl Component for Component1 {
    fn component_type(&self) -> &str {
        "lab.Sensor"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        // Step (1): addProvidesPort.
        let typed: Arc<dyn TemperaturePort> = self.sensor.clone();
        let dynamic: Arc<dyn DynObject> = self.sensor.clone();
        services.add_provides_port(
            PortHandle::new("temperature", "lab.TemperaturePort", typed).with_dynamic(dynamic),
        )
    }
}

struct Component2;

impl Component for Component2 {
    fn component_type(&self) -> &str {
        "lab.Display"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("input", "lab.TemperaturePort", TypeMap::new())
    }
}

fn assemble(policy: ConnectionPolicy) -> (Arc<Framework>, Arc<Thermometer>) {
    let fw = Framework::with_policy(Repository::new(), policy);
    let sensor = Arc::new(Thermometer {
        value: Mutex::new(21.5),
    });
    fw.add_instance(
        "sensor0",
        Arc::new(Component1 {
            sensor: sensor.clone(),
        }),
    )
    .unwrap();
    fw.add_instance("display0", Arc::new(Component2)).unwrap();
    // Steps (2)+(3): the framework moves the interface (or a proxy).
    fw.connect("display0", "input", "sensor0", "temperature")
        .unwrap();
    (fw, sensor)
}

/// What Component 2 observes through its services handle — written once,
/// executed under both framework options.
fn observe_through_get_port(fw: &Framework) -> f64 {
    // Step (4): getPort.
    let handle = fw.services("display0").unwrap().get_port("input").unwrap();
    // Components written against the dynamic facade cannot tell direct
    // from proxied connections apart.
    let port = handle.dynamic().expect("dynamic facade present");
    match port.invoke("reading", vec![]).unwrap() {
        DynValue::Double(v) => v,
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn direct_and_proxied_options_are_observationally_identical() {
    let (fw_direct, sensor_d) = assemble(ConnectionPolicy::Direct);
    let (fw_proxied, sensor_p) = assemble(ConnectionPolicy::Proxied);

    assert_eq!(observe_through_get_port(&fw_direct), 21.5);
    assert_eq!(observe_through_get_port(&fw_proxied), 21.5);

    // Live connection: provider-side updates are visible through both.
    *sensor_d.value.lock() = -3.25;
    *sensor_p.value.lock() = -3.25;
    assert_eq!(observe_through_get_port(&fw_direct), -3.25);
    assert_eq!(observe_through_get_port(&fw_proxied), -3.25);
}

#[test]
fn direct_option_hands_over_the_very_object() {
    let (fw, sensor) = assemble(ConnectionPolicy::Direct);
    let port: Arc<dyn TemperaturePort> = fw
        .services("display0")
        .unwrap()
        .get_port_as("input")
        .unwrap();
    // §6.2: "the framework gets a Provides interface from one component
    // and gives that same interface directly to a connecting component".
    let provider: Arc<dyn TemperaturePort> = sensor;
    assert_eq!(port.reading(), provider.reading());
    assert_eq!(
        fw.connections().first().map(|c| c.policy),
        Some(cca::framework::ConnectionPolicy::Direct)
    );
}

#[test]
fn proxied_option_interposes_the_orb() {
    let (fw, _sensor) = assemble(ConnectionPolicy::Proxied);
    // Behind the scenes: the framework registered the servant in its ORB.
    assert_eq!(fw.orb().keys(), vec!["sensor0/temperature".to_string()]);
    // And the typed fast path is genuinely absent through the proxy.
    let handle = fw.services("display0").unwrap().get_port("input").unwrap();
    assert!(handle.typed::<dyn TemperaturePort>().is_err());
}

#[test]
fn get_port_before_connect_fails_with_not_connected() {
    let fw = Framework::new(Repository::new());
    fw.add_instance("display0", Arc::new(Component2)).unwrap();
    let err = fw
        .services("display0")
        .unwrap()
        .get_port("input")
        .unwrap_err();
    assert!(matches!(err, CcaError::PortNotConnected(_)));
}
