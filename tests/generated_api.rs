//! End-to-end test of the SIDL proxy generator: `build.rs` compiled
//! `sidl/esi.sidl` into `cca::generated`, and this test implements and
//! exercises the generated traits, stubs, and skeletons — the full
//! "SIDL → proxy generator → component stubs" pipeline of Figure 2.

use cca::generated::{demo, esi};
use cca::sidl::{DynObject, DynValue, SidlError};
use cca_data::{Complex64, NdArray};
use parking_lot::Mutex;
use std::sync::Arc;

struct CounterImpl {
    value: Mutex<i64>,
}

impl demo::Counter for CounterImpl {
    fn add(&self, delta: i64) -> Result<i64, SidlError> {
        let mut v = self.value.lock();
        *v += delta;
        Ok(*v)
    }

    fn current(&self) -> Result<i64, SidlError> {
        Ok(*self.value.lock())
    }

    fn reset(&self) -> Result<(), SidlError> {
        *self.value.lock() = 0;
        Ok(())
    }

    fn describe(&self, prefix: &str) -> Result<String, SidlError> {
        Ok(format!("{prefix}{}", self.current()?))
    }
}

#[test]
fn generated_trait_and_stub_work() {
    let counter: Arc<dyn demo::Counter> = Arc::new(CounterImpl {
        value: Mutex::new(0),
    });
    // The stub is the Babel-style binding layer: caller -> stub ->
    // vtable -> impl.
    let stub = demo::CounterStub(counter);
    assert_eq!(stub.add(5).unwrap(), 5);
    assert_eq!(stub.add(2).unwrap(), 7);
    assert_eq!(stub.current().unwrap(), 7);
    assert_eq!(stub.describe("value=").unwrap(), "value=7");
    stub.reset().unwrap();
    assert_eq!(stub.current().unwrap(), 0);
}

#[test]
fn generated_skeleton_speaks_the_dynamic_protocol() {
    let skel = demo::CounterSkel(CounterImpl {
        value: Mutex::new(10),
    });
    assert_eq!(skel.sidl_type(), "demo.Counter");
    let r = skel.invoke("add", vec![DynValue::Long(32)]).unwrap();
    assert!(matches!(r, DynValue::Long(42)));
    let r = skel
        .invoke("describe", vec![DynValue::Str("n=".into())])
        .unwrap();
    assert!(matches!(r, DynValue::Str(s) if s == "n=42"));
    let r = skel.invoke("reset", vec![]).unwrap();
    assert!(matches!(r, DynValue::Void));
    // Arity and unknown-method errors come from the generated dispatcher.
    assert!(skel.invoke("add", vec![]).is_err());
    assert!(skel.invoke("nonsense", vec![]).is_err());
}

#[test]
fn generated_skeleton_composes_with_the_orb() {
    // Generated skeleton as an ORB servant: the CCA-over-CORBA story.
    let orb = cca::rpc::Orb::new();
    orb.register(
        "counter",
        Arc::new(demo::CounterSkel(CounterImpl {
            value: Mutex::new(0),
        })),
    );
    let objref = cca::rpc::ObjRef::loopback("counter", orb);
    let r = objref.invoke("add", vec![DynValue::Long(4)]).unwrap();
    assert!(matches!(r, DynValue::Long(4)));
}

// ---- the esi package: inheritance, arrays, complex numbers ---------------

struct DenseVector {
    data: Mutex<Vec<f64>>,
}

impl esi::Object for DenseVector {
    fn typeName(&self) -> Result<String, SidlError> {
        Ok("esi.Vector/dense".into())
    }
}

impl esi::Vector for DenseVector {
    fn length(&self) -> Result<i32, SidlError> {
        Ok(self.data.lock().len() as i32)
    }

    fn dot(&self, other: &Arc<dyn DynObject>) -> Result<f64, SidlError> {
        // Cross-object argument: fetch the other vector's values through
        // its dynamic facade, as a generated binding would.
        let theirs = other.invoke("values", vec![])?;
        let theirs = theirs.as_double_array()?.clone();
        let mine = self.data.lock();
        Ok(mine.iter().zip(theirs.as_slice()).map(|(a, b)| a * b).sum())
    }

    fn scaleBy(&self, alpha: f64) -> Result<(), SidlError> {
        for v in self.data.lock().iter_mut() {
            *v *= alpha;
        }
        Ok(())
    }

    fn characteristic(&self) -> Result<Complex64, SidlError> {
        let d = self.data.lock();
        Ok(Complex64::new(
            d.first().copied().unwrap_or(0.0),
            d.len() as f64,
        ))
    }

    fn values(&self) -> Result<NdArray<f64>, SidlError> {
        let d = self.data.lock().clone();
        let n = d.len();
        Ok(NdArray::from_vec(&[n], d).expect("valid 1-d array"))
    }
}

#[test]
fn inheritance_supertraits_flow_through() {
    let v: Arc<dyn esi::Vector> = Arc::new(DenseVector {
        data: Mutex::new(vec![1.0, 2.0, 3.0]),
    });
    // esi.Vector extends esi.Object: the supertrait method is callable.
    fn object_name(o: &dyn esi::Object) -> String {
        o.typeName().unwrap()
    }
    assert_eq!(object_name(v.as_ref()), "esi.Vector/dense");
    let stub = esi::VectorStub(v);
    assert_eq!(stub.length().unwrap(), 3);
    stub.scaleBy(2.0).unwrap();
    let z = stub.characteristic().unwrap();
    assert_eq!(z, Complex64::new(2.0, 3.0));
}

#[test]
fn generated_dcomplex_and_arrays_cross_the_dynamic_boundary() {
    let skel = Arc::new(esi::VectorSkel(DenseVector {
        data: Mutex::new(vec![1.0, 2.0, 3.0]),
    }));
    // Array-returning method.
    let r = skel.invoke("values", vec![]).unwrap();
    let DynValue::DoubleArray(a) = r else {
        panic!("expected array")
    };
    assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
    // dcomplex-returning method.
    let r = skel.invoke("characteristic", vec![]).unwrap();
    assert!(matches!(r, DynValue::Dcomplex(z) if z == Complex64::new(1.0, 3.0)));
    // Object-argument method: dot of the vector with itself via the
    // dynamic protocol.
    let other: Arc<dyn DynObject> = skel.clone();
    let r = skel.invoke("dot", vec![DynValue::Object(other)]).unwrap();
    assert!(matches!(r, DynValue::Double(d) if d == 14.0));
    // Inherited method dispatches through the same skeleton.
    let r = skel.invoke("typeName", vec![]).unwrap();
    assert!(matches!(r, DynValue::Str(s) if s.contains("dense")));
}

#[test]
fn generated_enum_round_trips() {
    assert_eq!(esi::Status::Converged as i64, 0);
    assert_eq!(esi::Status::MaxIterations as i64, 10);
    assert_eq!(esi::Status::Breakdown as i64, 11);
    assert_eq!(
        esi::Status::from_value(10),
        Some(esi::Status::MaxIterations)
    );
    assert_eq!(esi::Status::from_value(99), None);
}

#[test]
fn generated_c_header_exists_and_is_ior_shaped() {
    let header = std::fs::read_to_string(cca::generated::GENERATED_C_HEADER).unwrap();
    assert!(header.contains("struct esi_Vector__epv"));
    assert!(header.contains("sidl_dcomplex"));
    assert!(header.contains("demo_Counter"));
}
