//! End-to-end resilience: retry/backoff on a mock clock, circuit-breaker
//! quarantine and recovery published as configuration events and visible
//! through the MonitorPort, deadlines turning wedged transports into
//! errors, and the deterministic fault matrix (`CCA_FAULT_SEED`) the CI
//! `fault-matrix` job replays across seeds {1, 7, 42, 1999}.
//!
//! No test here sleeps on the wall clock: all time is simulated through
//! `MockClock`, so the suite is exactly as fast and exactly as
//! deterministic on a loaded CI runner as on a quiet laptop.

use cca::core::event::RecordingListener;
use cca::core::resilience::{
    fault_seed_from_env, BreakerPolicy, CallPolicy, Clock, MockClock, RetryPolicy,
};
use cca::core::{CcaError, CcaServices, Component, ConfigEvent, PortHandle};
use cca::framework::{ConnectionPolicy, Framework};
use cca::repository::Repository;
use cca::rpc::{FaultTransport, LoopbackTransport, ObjRef, Orb};
use cca::sidl::{DynObject, DynValue, SidlError};
use cca_data::TypeMap;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Test fixture: a provider whose port fails its first N calls.
// ---------------------------------------------------------------------

trait WorkPort: Send + Sync {
    fn work(&self) -> Result<u64, CcaError>;
}

struct Flaky {
    label: u64,
    fail_first: AtomicU64,
    calls: AtomicU64,
}

impl Flaky {
    fn new(label: u64, fail_first: u64) -> Arc<Self> {
        Arc::new(Flaky {
            label,
            fail_first: AtomicU64::new(fail_first),
            calls: AtomicU64::new(0),
        })
    }
}

impl WorkPort for Flaky {
    fn work(&self) -> Result<u64, CcaError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if self.fail_first.load(Ordering::SeqCst) > 0 {
            self.fail_first.fetch_sub(1, Ordering::SeqCst);
            Err(CcaError::Framework("injected provider fault".into()))
        } else {
            Ok(self.label)
        }
    }
}

struct FlakyProvider {
    port: Arc<Flaky>,
}

impl Component for FlakyProvider {
    fn component_type(&self) -> &str {
        "test.FlakyProvider"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let typed: Arc<dyn WorkPort> = self.port.clone();
        services.add_provides_port(PortHandle::new("out", "test.WorkPort", typed))
    }
}

struct Consumer;
impl Component for Consumer {
    fn component_type(&self) -> &str {
        "test.Consumer"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("in", "test.WorkPort", TypeMap::new())
    }
}

// ---------------------------------------------------------------------
// Retry + backoff timing, fully simulated.
// ---------------------------------------------------------------------

#[test]
fn backoff_timing_is_exact_on_the_mock_clock() {
    let clock = MockClock::new();
    let policy = CallPolicy::with_clock(clock.clone())
        .with_retry(RetryPolicy::new(4, 1_000, 50_000).with_jitter_seed(7));
    // The waits the schedule will produce, computed up front: the policy
    // must sleep exactly these amounts, in order, on the injected clock.
    let expected: Vec<u64> = RetryPolicy::new(4, 1_000, 50_000)
        .with_jitter_seed(7)
        .schedule()
        .take(3)
        .collect();

    let attempts = AtomicU64::new(0);
    let timeline = parking_lot::Mutex::new(Vec::new());
    let result: Result<(), CcaError> = policy.execute("op", None, |_| {
        timeline.lock().push(clock.now_ns());
        attempts.fetch_add(1, Ordering::SeqCst);
        Err(CcaError::Framework("always fails".into()))
    });
    assert!(result.is_err());
    assert_eq!(attempts.load(Ordering::SeqCst), 4, "all attempts used");

    let timeline = timeline.lock();
    assert_eq!(timeline[0], 0);
    for (i, w) in expected.iter().enumerate() {
        assert_eq!(
            timeline[i + 1] - timeline[i],
            *w,
            "attempt {} started exactly one backoff wait after attempt {}",
            i + 1,
            i
        );
    }
}

// ---------------------------------------------------------------------
// Quarantine → events → monitor → recovery, through the framework.
// ---------------------------------------------------------------------

#[test]
fn quarantine_recovery_round_trip_with_events_and_monitor() {
    let fw = Framework::new(Repository::new());
    let rec = RecordingListener::new();
    fw.add_listener(rec.clone());

    let p0 = Flaky::new(0, u64::MAX); // provider 0 fails forever...
    let p1 = Flaky::new(1, 0); // ...provider 1 is healthy.
    fw.add_instance("p0", Arc::new(FlakyProvider { port: p0.clone() }))
        .unwrap();
    fw.add_instance("p1", Arc::new(FlakyProvider { port: p1 }))
        .unwrap();
    fw.add_instance("u0", Arc::new(Consumer)).unwrap();

    let clock = MockClock::new();
    let policy = CallPolicy::with_clock(clock.clone())
        .with_retry(RetryPolicy::new(6, 100, 1_000).with_jitter_seed(1))
        .with_breaker(BreakerPolicy::new(2, 10_000));
    fw.connect_with_call_policy("u0", "in", "p0", "out", policy)
        .unwrap();
    fw.connect("u0", "in", "p1", "out").unwrap();

    let services = fw.services("u0").unwrap();
    let monitor = fw.install_monitor().unwrap();
    let mut port = services.cached_port::<dyn WorkPort>("in");

    // The call retries p0 until its breaker opens (threshold 2), then
    // fails over to p1 and succeeds — one call() from the caller's view.
    let got = port.call(|p| p.work()).unwrap();
    assert_eq!(got, 1, "failover landed on the healthy provider");
    assert_eq!(p0.calls.load(Ordering::SeqCst), 2, "p0 tried until tripped");

    // The trip was published as a configuration event...
    assert!(rec.events().iter().any(|e| matches!(
        e,
        ConfigEvent::ProviderQuarantined { provider, .. } if provider == "p0"
    )));
    // ...fan-out now skips the quarantined provider (§6.1 keeps this
    // legal: a uses port sees "zero or more" providers)...
    assert_eq!(services.get_ports("in").unwrap().len(), 1);
    // ...and the monitor shows the open breaker live.
    let json = monitor.resilience_json().unwrap();
    assert!(json.contains("\"state\":\"open\""), "{json}");

    // Heal the provider and pass the cooldown: the next resolution
    // half-opens the breaker, the probe succeeds, recovery is published.
    p0.fail_first.store(0, Ordering::SeqCst);
    clock.advance_ns(20_000);
    let breaker = services.connection_breaker("in", 0).unwrap().unwrap();
    assert!(
        breaker.admit(),
        "cooldown elapsed: half-open grants a probe"
    );
    breaker.record_success();
    assert!(rec.events().iter().any(|e| matches!(
        e,
        ConfigEvent::ProviderRecovered { provider, .. } if provider == "p0"
    )));
    assert_eq!(services.get_ports("in").unwrap().len(), 2);
    let json = monitor.resilience_json().unwrap();
    assert!(!json.contains("\"state\":\"open\""), "{json}");
}

// ---------------------------------------------------------------------
// Deadlines: a wedged proxied connection errors instead of hanging.
// ---------------------------------------------------------------------

#[test]
fn wedged_proxied_call_is_bounded_by_the_policy_deadline() {
    struct WedgedServant {
        clock: Arc<MockClock>,
    }
    impl DynObject for WedgedServant {
        fn sidl_type(&self) -> &str {
            "test.WorkPort"
        }
        fn invoke(&self, _m: &str, _a: Vec<DynValue>) -> Result<DynValue, SidlError> {
            // Models a wedge by charging simulated time.
            self.clock.advance_ns(1_000_000);
            Ok(DynValue::Long(0))
        }
    }
    struct WedgedProvider {
        clock: Arc<MockClock>,
    }
    impl Component for WedgedProvider {
        fn component_type(&self) -> &str {
            "test.WedgedProvider"
        }
        fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
            let servant = Arc::new(WedgedServant {
                clock: self.clock.clone(),
            });
            let dynamic: Arc<dyn DynObject> = servant;
            services.add_provides_port(
                PortHandle::new("out", "test.WorkPort", Arc::clone(&dynamic)).with_dynamic(dynamic),
            )
        }
    }

    let fw = Framework::with_policy(Repository::new(), ConnectionPolicy::Proxied);
    let clock = MockClock::new();
    fw.add_instance(
        "wedged",
        Arc::new(WedgedProvider {
            clock: clock.clone(),
        }),
    )
    .unwrap();
    fw.add_instance("u0", Arc::new(Consumer)).unwrap();
    let policy = CallPolicy::with_clock(clock.clone()).with_deadline_ns(10_000);
    fw.connect_with_call_policy("u0", "in", "wedged", "out", policy)
        .unwrap();

    let handle = fw.services("u0").unwrap().get_port("in").unwrap();
    let err = handle
        .dynamic()
        .unwrap()
        .invoke("work", vec![])
        .unwrap_err();
    let cca: CcaError = err.into();
    assert!(
        matches!(cca, CcaError::DeadlineExceeded(_)),
        "wedged transport must surface as DeadlineExceeded, got {cca:?}"
    );
}

// ---------------------------------------------------------------------
// The CI fault matrix: a seed-parameterized scenario whose outcome is a
// pure function of CCA_FAULT_SEED, with a trace artifact for forensics.
// ---------------------------------------------------------------------

#[test]
fn fault_matrix_scenario_is_deterministic_per_seed() {
    let seed = fault_seed_from_env();

    // One scenario run: an ORB servant behind a fault-injecting transport,
    // driven through a retry policy. Returns the per-call outcome vector.
    let run_scenario = || -> Vec<bool> {
        struct Answer;
        impl DynObject for Answer {
            fn sidl_type(&self) -> &str {
                "test.Answer"
            }
            fn invoke(&self, _m: &str, _a: Vec<DynValue>) -> Result<DynValue, SidlError> {
                Ok(DynValue::Long(42))
            }
        }
        let orb = Orb::new();
        orb.register("answer", Arc::new(Answer));
        let clock = MockClock::new();
        // 30% failures, 10% stalls of 5 µs simulated time.
        let transport = FaultTransport::new(
            LoopbackTransport::new(orb),
            clock.clone(),
            seed,
            300,
            100,
            5_000,
        );
        let objref = ObjRef::new("answer", transport);
        let policy = CallPolicy::with_clock(clock)
            .with_retry(RetryPolicy::new(3, 100, 1_000).with_jitter_seed(seed));
        (0..100)
            .map(|_| {
                policy
                    .execute("answer.value", None, |_| {
                        objref.invoke("value", vec![]).map_err(CcaError::from)
                    })
                    .is_ok()
            })
            .collect()
    };

    let first = run_scenario();
    let second = run_scenario();
    assert_eq!(
        first, second,
        "the fault schedule must be a pure function of seed {seed}"
    );
    // Three attempts against a 30% failure rate: the vast majority of
    // calls succeed for every matrix seed.
    let successes = first.iter().filter(|ok| **ok).count();
    assert!(
        successes >= 90,
        "seed {seed}: only {successes}/100 calls survived retry"
    );

    // Leave a forensic artifact for the CI fault-matrix job: the drained
    // trace of one more traced run, as JSON Lines.
    cca::obs::set_tracing(true);
    let _ = run_scenario();
    cca::obs::set_tracing(false);
    let events = cca::obs::drain();
    let jsonl = cca::obs::to_jsonl(&events);
    let dir = std::path::Path::new("target");
    if dir.is_dir() {
        let _ = std::fs::write(dir.join(format!("fault_trace_{seed}.jsonl")), jsonl);
    }
}

// ---------------------------------------------------------------------
// Property: quarantine never permanently loses the last healthy provider.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For ANY failure schedule applied to a fan-out slot — including ones
    /// that trip every breaker — once providers heal and the cooldown
    /// passes, the slot resolves again. The half-open re-arm guarantees a
    /// probe is always eventually granted; an abandoned or failed probe
    /// only delays recovery by another cooldown, never forecloses it.
    #[test]
    fn the_last_healthy_provider_is_always_recoverable(
        schedule in proptest::collection::vec((0usize..2, any::<bool>()), 0..64),
        heal_rounds in 1u32..4,
    ) {
        let provider = CcaServices::new("p");
        let flaky = [Flaky::new(0, 0), Flaky::new(1, 0)];
        for (i, f) in flaky.iter().enumerate() {
            let typed: Arc<dyn WorkPort> = f.clone();
            provider
                .add_provides_port(PortHandle::new(
                    format!("out{i}"),
                    "test.WorkPort",
                    typed,
                ))
                .unwrap();
        }
        let user = CcaServices::new("u");
        user.register_uses_port("in", "test.WorkPort", TypeMap::new()).unwrap();
        let clock = MockClock::new();
        let policy = CallPolicy::with_clock(clock.clone())
            .with_breaker(BreakerPolicy::new(2, 1_000));
        user.set_call_policy("in", Arc::new(policy)).unwrap();
        for i in 0..2 {
            user.connect_uses("in", provider.get_provides_port(&format!("out{i}")).unwrap())
                .unwrap();
        }

        // Apply the arbitrary schedule directly to the breakers.
        for (slot, fail) in &schedule {
            let breaker = user.connection_breaker("in", *slot).unwrap().unwrap();
            // Admission mirrors real callers: a denied slot records nothing.
            if breaker.admit() {
                if *fail {
                    breaker.record_failure();
                } else {
                    breaker.record_success();
                }
            }
        }

        // Providers heal; time passes. Within a bounded number of
        // cooldown periods the slot must resolve a provider again: each
        // round grants at least one half-open probe, and a successful
        // probe closes the breaker.
        let mut recovered = false;
        for _ in 0..heal_rounds.max(2) {
            clock.advance_ns(2_000);
            let mut port = user.cached_port::<dyn WorkPort>("in");
            if port.call(|p| p.work()).is_ok() {
                recovered = true;
                break;
            }
        }
        prop_assert!(recovered, "slot never recovered after healing + cooldowns");
    }
}
