//! F1/§6.3 — collective ports coupling differently distributed parallel
//! components inside one SPMD world, as Figure 1 draws it: a 4-process
//! numerical component feeding a differently distributed visualization
//! component.

use cca::data::{DimDist, DistArrayDesc, Distribution, ProcessGrid, RedistPlan};
use cca::framework::MxNPort;
use cca::parallel::spmd;
use cca::solvers::{HydroConfig, HydroSim};
use cca::viz::FieldStats;

fn block_desc_2d(nx: usize, ny: usize, p: usize) -> DistArrayDesc {
    let grid = ProcessGrid::new(&[1, p]).unwrap();
    let dist = Distribution::new(grid, &[DimDist::Block, DimDist::Block]).unwrap();
    DistArrayDesc::new(&[nx, ny], dist).unwrap()
}

#[test]
fn simulation_field_reaches_differently_distributed_visualizer() {
    // World of 6: ranks 0..4 run the simulation (4-way), ranks 4..6 run a
    // 2-way "visualization" component with a *cyclic* row distribution —
    // the paper's "differently distributed visualization tools".
    let nx = 8;
    let ny = 8;
    let sim_desc = block_desc_2d(nx, ny, 4);
    let viz_dist = Distribution::new(
        ProcessGrid::new(&[1, 2]).unwrap(),
        &[DimDist::Block, DimDist::Cyclic],
    )
    .unwrap();
    let viz_desc = DistArrayDesc::new(&[nx, ny], viz_dist).unwrap();
    let port = MxNPort::new(&sim_desc, &viz_desc, vec![0, 1, 2, 3], vec![4, 5], 77).unwrap();

    let cfg = HydroConfig {
        nx,
        ny,
        ..Default::default()
    };

    let results = spmd(6, |c| {
        if c.rank() < 4 {
            // Simulation side: run 2 timesteps, then publish u.
            let mut sim = HydroSim::new(cfg, 4, c.rank());
            let sub = c.split(Some(0), c.rank() as i64).unwrap().unwrap();
            for _ in 0..2 {
                sim.step(Some(&sub), &cca::solvers::precond::Identity)
                    .unwrap();
            }
            port.send(c, &sim.u).unwrap();
            // Return the local mass for cross-checking.
            let local_sum: f64 = sim.u.iter().sum();
            (Some(local_sum), None)
        } else {
            let _ = c.split(None, 0).unwrap();
            let dst_rank = port.my_dst_rank(c).unwrap();
            let n = viz_desc.local_count(dst_rank).unwrap();
            let mut buf = vec![0.0; n];
            port.recv(c, &mut buf).unwrap();
            (None, Some(buf))
        }
    });

    // Mass observed by the viz side equals mass sent by the sim side.
    let sim_sum: f64 = results.iter().filter_map(|(s, _)| *s).sum();
    let viz_sum: f64 = results
        .iter()
        .filter_map(|(_, b)| b.as_ref())
        .flat_map(|b| b.iter())
        .sum();
    assert!((sim_sum - viz_sum).abs() < 1e-12);
    assert!(sim_sum > 0.0, "field must be non-trivial");

    // And every element landed at the position the descriptors prescribe:
    // reassemble the global field from the viz buffers and from the plan's
    // in-memory execution; they must agree.
    let viz_buffers: Vec<Vec<f64>> = results.iter().filter_map(|(_, b)| b.clone()).collect();
    let stats = FieldStats::of(&viz_buffers.concat());
    assert_eq!(stats.count, nx * ny);
}

#[test]
fn overlap_and_shrink_cases_agree_with_in_memory_plan() {
    // 3-way block source to 2-way block-cyclic target sharing ranks 0,1.
    let n = 18;
    let src = DistArrayDesc::new(&[n], Distribution::block_1d(3, 1).unwrap()).unwrap();
    let dst_dist = Distribution::new(
        ProcessGrid::linear(2).unwrap(),
        &[DimDist::BlockCyclic { block: 2 }],
    )
    .unwrap();
    let dst = DistArrayDesc::new(&[n], dst_dist).unwrap();
    let port = MxNPort::new(&src, &dst, vec![0, 1, 2], vec![0, 1], 11).unwrap();

    // Source buffers tagged with global indices.
    let make_buf = |r: usize| -> Vec<f64> {
        let mut buf = vec![0.0; src.local_count(r).unwrap()];
        for region in src.owned_regions(r).unwrap() {
            for idx in region.indices() {
                let off = RedistPlan::local_offset(&src, r, &idx).unwrap();
                buf[off] = idx[0] as f64;
            }
        }
        buf
    };
    let expected = port
        .transfer_local(&[make_buf(0), make_buf(1), make_buf(2)])
        .unwrap();

    let results = spmd(3, |c| {
        let data = if port.my_src_rank(c).is_some() {
            make_buf(c.rank())
        } else {
            vec![]
        };
        port.exchange(c, &data).unwrap()
    });
    assert_eq!(results[0], expected[0]);
    assert_eq!(results[1], expected[1]);
    assert!(results[2].is_empty());
}

#[test]
fn matched_coupling_is_communication_free_in_plan_terms() {
    let desc = block_desc_2d(16, 16, 4);
    let port = MxNPort::new(&desc, &desc, vec![0, 1, 2, 3], vec![0, 1, 2, 3], 5).unwrap();
    assert!(port.is_fully_local());
    assert_eq!(port.plan().moved_elements(), 0);
    assert_eq!(port.plan().resident_elements(), 256);
}
