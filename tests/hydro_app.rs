//! F1 — the complete Figure 1 application, assembled two ways:
//!
//! * **monolithic** — `HydroSim::step` calling its own kernels directly
//!   (the pre-CCA CHAD style);
//! * **componentized** — the identical numerics with the implicit solve
//!   routed through CCA ports: matrix component, preconditioner component,
//!   Krylov solver component, wired by the reference framework.
//!
//! The claim under test is §6.2's "no penalty" in *semantics*: the two
//! assemblies must produce identical fields and identical Krylov
//! trajectories. (The cost side is experiment E6 in the bench suite.)

use cca::framework::Framework;
use cca::repository::Repository;
use cca::solvers::esi::{
    expose_precond_ports, expose_solver_ports, LinearSolverPort, MatrixComponent, PrecondComponent,
    PrecondKind, SolverComponent, SolverConfig, ESI_SIDL,
};
use cca::solvers::precond::Jacobi;
use cca::solvers::{HydroConfig, HydroSim, KrylovKind};
use std::sync::Arc;

fn cfg() -> HydroConfig {
    HydroConfig {
        nx: 16,
        ny: 16,
        dt: 2e-3,
        nu: 0.2,
        vx: 0.7,
        vy: -0.4,
        tol: 1e-10,
        max_iter: 600,
        kind: KrylovKind::Cg,
    }
}

#[test]
fn componentized_assembly_reproduces_monolithic_run() {
    let steps = 4;

    // ---- monolithic reference -------------------------------------
    let mut mono = HydroSim::new(cfg(), 1, 0);
    let a_mono = mono.local_matrix();
    let jac = Jacobi::new(&a_mono);
    let mut mono_iters = Vec::new();
    for _ in 0..steps {
        mono_iters.push(mono.step(None, &jac).unwrap().iterations);
    }

    // ---- componentized assembly ------------------------------------
    let mut comp = HydroSim::new(cfg(), 1, 0);
    let a = comp.local_matrix();
    let repo = Repository::new();
    repo.deposit_sidl(ESI_SIDL).unwrap();
    let fw = Framework::new(repo);
    let matrix = MatrixComponent::new(a);
    let precond = PrecondComponent::new(PrecondKind::Jacobi);
    let solver = SolverComponent::new(SolverConfig {
        kind: cfg().kind,
        tol: cfg().tol,
        max_iter: cfg().max_iter,
    });
    fw.add_instance("matrix0", matrix).unwrap();
    fw.add_instance("precond0", precond.clone()).unwrap();
    fw.add_instance("solver0", solver.clone()).unwrap();
    expose_precond_ports(&precond).unwrap();
    expose_solver_ports(&solver).unwrap();
    fw.connect("precond0", "A", "matrix0", "A").unwrap();
    fw.connect("solver0", "A", "matrix0", "A").unwrap();
    fw.connect("solver0", "M", "precond0", "M").unwrap();

    let solver_port: Arc<dyn LinearSolverPort> = fw
        .services("solver0")
        .unwrap()
        .get_provides_port("solver")
        .unwrap()
        .typed()
        .unwrap();

    let mut comp_iters = Vec::new();
    for _ in 0..steps {
        let stats = comp
            .step_with_solver(None, &|_op, b, x| {
                // Route the implicit solve through the CCA port. The
                // operator the component sees is the explicit matrix,
                // which equals the matrix-free operator serially (see
                // `local_matrix_matches_matrix_free_operator_serially`).
                let (solution, stats) = solver_port.solve_system(b)?;
                x.copy_from_slice(&solution);
                Ok(stats)
            })
            .unwrap();
        comp_iters.push(stats.iterations);
    }

    // Nearly identical Krylov trajectories — the port path starts from a
    // zero initial guess while the monolithic path warm-starts from u*,
    // which is worth at most a couple of CG iterations...
    for (m, c) in mono_iters.iter().zip(&comp_iters) {
        assert!(
            (*m as i64 - *c as i64).abs() <= 2,
            "mono {mono_iters:?} vs comp {comp_iters:?}"
        );
    }
    // ...and identical fields. A warm-start difference exists (the
    // component starts from zero, the monolithic path from u*), so allow
    // solver-tolerance-level discrepancy only.
    for (m, c) in mono.u.iter().zip(&comp.u) {
        assert!((m - c).abs() < 1e-7, "{m} vs {c}");
    }
}

#[test]
fn solver_kind_is_swappable_behind_the_same_port() {
    // §2.2: "to experiment more easily with multiple solution strategies".
    // Same assembly, three Krylov kinds, same answer.
    let base_cfg = cfg();
    let mut reference: Option<Vec<f64>> = None;
    for kind in [
        KrylovKind::Cg,
        KrylovKind::BiCgStab,
        KrylovKind::Gmres { restart: 25 },
    ] {
        let mut sim = HydroSim::new(base_cfg, 1, 0);
        let a = sim.local_matrix();
        let repo = Repository::new();
        repo.deposit_sidl(ESI_SIDL).unwrap();
        let fw = Framework::new(repo);
        fw.add_instance("matrix0", MatrixComponent::new(a)).unwrap();
        let solver = SolverComponent::new(SolverConfig {
            kind,
            tol: 1e-11,
            max_iter: 2000,
        });
        fw.add_instance("solver0", solver.clone()).unwrap();
        expose_solver_ports(&solver).unwrap();
        fw.connect("solver0", "A", "matrix0", "A").unwrap();
        let port: Arc<dyn LinearSolverPort> = fw
            .services("solver0")
            .unwrap()
            .get_provides_port("solver")
            .unwrap()
            .typed()
            .unwrap();
        for _ in 0..2 {
            sim.step_with_solver(None, &|_op, b, x| {
                let (solution, stats) = port.solve_system(b)?;
                x.copy_from_slice(&solution);
                Ok(stats)
            })
            .unwrap();
        }
        match &reference {
            None => reference = Some(sim.u.clone()),
            Some(r) => {
                for (a_, b_) in r.iter().zip(&sim.u) {
                    assert!((a_ - b_).abs() < 1e-6, "{kind:?}: {a_} vs {b_}");
                }
            }
        }
    }
}

#[test]
fn parallel_figure1_pipeline_runs_under_spmd() {
    use cca::parallel::spmd;
    use cca::solvers::precond::Identity;
    // The tightly-coupled half of Figure 1 on 4 ranks: mesh +
    // discretization + solver all SPMD, collective dots inside CG.
    let cfg = HydroConfig {
        nx: 20,
        ny: 20,
        ..Default::default()
    };
    let masses = spmd(4, |c| {
        let mut sim = HydroSim::new(cfg, 4, c.rank());
        for _ in 0..3 {
            let stats = sim.step(Some(c), &Identity).unwrap();
            assert!(stats.converged);
        }
        sim.mass(Some(c))
    });
    // Every rank agrees on the global mass (allreduce semantics).
    for m in &masses {
        assert!((m - masses[0]).abs() < 1e-14);
    }
    // And it matches the serial run.
    let mut serial = HydroSim::new(cfg, 1, 0);
    for _ in 0..3 {
        serial.step(None, &Identity).unwrap();
    }
    assert!((serial.mass(None) - masses[0]).abs() < 1e-10);
}
